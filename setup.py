"""Setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so
that environments with an older setuptools/no ``wheel`` package (where
PEP 660 editable installs are unavailable) can still do
``python setup.py develop`` / legacy ``pip install -e .``.
"""

from setuptools import setup

setup()

"""T4 - Lemma 5: rank collision statistics of Phase 1.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``phase1``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_phase1.py``
* ``python benchmarks/bench_phase1.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas phase1``
or ``python -m repro.bench run --areas phase1``.
"""

import _bench_utils


def test_phase1_area():
    """The registered ``phase1`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("phase1")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("phase1"))

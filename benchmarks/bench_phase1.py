"""T4 — Lemma 5: rank collision statistics of Phase 1."""

import numpy as np
import pytest

from _bench_utils import save_table
from repro.analysis import run_phase1_statistics
from repro.core import (
    draw_ranks,
    exact_distinct_rank_probability,
    lemma5_bound,
)


def test_rank_drawing_throughput(benchmark):
    """Time the per-node rank draw for a degree-64 node."""
    rng = np.random.default_rng(0)
    neighbors = tuple(range(1, 65))

    draws = benchmark(lambda: draw_ranks(0, neighbors, m=2048, rng=rng))
    assert len(draws) == 64


def test_phase1_statistics_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_phase1_statistics(ms=(4, 16, 64, 256), trials=2000, seed=0),
        rounds=1,
        iterations=1,
    )
    save_table("T4_phase1_collisions", result.render())
    for row in result.rows:
        # Lemma 5: both the exact value and the empirical estimate clear
        # the 1/e² bound comfortably.
        assert row["exact"] >= lemma5_bound()
        assert row["empirical"] >= lemma5_bound()
        # Empirical tracks exact within a loose binomial tolerance.
        assert abs(row["empirical"] - row["exact"]) < 0.05


def test_exact_probability_converges(benchmark):
    vals = benchmark(
        lambda: [exact_distinct_rank_probability(m) for m in (2, 8, 32, 128, 512)]
    )
    # (1 - 1/m)^m style product converges to exp(-1/2) from either side.
    assert abs(vals[-1] - np.exp(-0.5)) < 1e-2

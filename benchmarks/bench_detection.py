"""T3 — detection guarantees: 1-sided acceptance and >= 2/3 rejection."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_detection_rates
from repro.core import CkFreenessTester
from repro.graphs import ck_free_graph, planted_epsilon_far_graph


def test_full_tester_on_far_instance(benchmark):
    """Time a complete tester run (paper repetition count) on an ε-far
    instance; it must reject."""
    g, _ = planted_epsilon_far_graph(120, 5, 0.1, seed=0)
    tester = CkFreenessTester(5, 0.1)

    result = benchmark.pedantic(
        lambda: tester.run(g, seed=2), rounds=3, iterations=1
    )
    assert result.rejected


def test_full_tester_on_free_instance(benchmark):
    """Time a complete (never-stopping-early) run on a Ck-free instance;
    it must accept — 1-sidedness."""
    g = ck_free_graph(120, 5, seed=1)
    tester = CkFreenessTester(5, 0.1)

    result = benchmark.pedantic(
        lambda: tester.run(g, seed=3), rounds=1, iterations=1
    )
    assert result.accepted


def test_detection_rate_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_detection_rates(k=5, eps=0.1, n=80, trials=15, seed=1),
        rounds=1,
        iterations=1,
    )
    save_table("T3_detection_rates", result.render())
    rows = {r["cls"]: r for r in result.rows}
    assert rows["free"]["rate"] == 1.0, "1-sidedness violated"
    assert rows["far"]["rate"] >= 2 / 3, "paper's 2/3 bound not met"

"""T3 - detection guarantees: 1-sided acceptance and >= 2/3 rejection.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``tester``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_detection.py``
* ``python benchmarks/bench_detection.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas tester``
or ``python -m repro.bench run --areas tester``.
"""

import _bench_utils


def test_tester_area():
    """The registered ``tester`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("tester")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("tester"))

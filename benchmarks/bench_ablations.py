"""A1/A2 - design-choice ablations: pruner implementations, batching.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``ablations``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_ablations.py``
* ``python benchmarks/bench_ablations.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas ablations``
or ``python -m repro.bench run --areas ablations``.
"""

import _bench_utils


def test_ablations_area():
    """The registered ``ablations`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("ablations")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("ablations"))

"""Ablations A1–A4: design choices and extensions quantified.

* A1 — pruner implementation: literal Instruction-15 enumeration vs the
  lazy hitting-set pruner (identical outputs, very different cost).
* A2 — batched vs sequential repetitions: rounds against bandwidth.
* A3 — the §4 obstruction: oblivious chord certification failure rate.
* A4 — completeness under message loss: detection rate vs drop rate
  (soundness stays perfect; completeness decays).
"""

import numpy as np
import pytest

from _bench_utils import save_table
from repro.analysis.tables import Table
from repro.congest import DropFaults, FaultyScheduler, Network
from repro.core import (
    CkFreenessTester,
    DetectCkProgram,
    DetectionOutcome,
    ExplicitPruner,
    HittingSetPruner,
    phase2_rounds,
    protocol_rounds,
)
from repro.extensions import (
    BatchedCkTester,
    build_obstruction_instance,
    has_chorded_cycle_through_edge,
    oblivious_chorded_detect,
)
from repro.graphs import blowup_graph, cycle_graph, planted_epsilon_far_graph


# ---------------------------------------------------------------------------
# A1 — pruner choice
# ---------------------------------------------------------------------------
PRUNE_SEQS = [(100 + i, 200 + (i * 3) % 7) for i in range(7)]


def test_a1_explicit_pruner(benchmark):
    out = benchmark(lambda: ExplicitPruner().select(PRUNE_SEQS, 8, 3))
    assert out == HittingSetPruner().select(PRUNE_SEQS, 8, 3)


def test_a1_hitting_pruner(benchmark):
    out = benchmark(lambda: HittingSetPruner().select(PRUNE_SEQS, 8, 3))
    assert len(out) >= 1


def test_a1_table(benchmark):
    def build():
        import time

        table = Table(
            ["k", "t", "num seqs", "explicit ms", "hitting ms", "same output"],
            title="A1 - pruner implementations (identical semantics)",
        )
        rows = []
        rng = np.random.default_rng(0)
        for k, t, n_seq in [(6, 3, 6), (8, 3, 8), (8, 4, 8), (10, 4, 10)]:
            seqs = []
            while len(seqs) < n_seq:
                cand = tuple(
                    int(x) for x in rng.choice(30, size=t - 1, replace=False)
                )
                if cand not in seqs:
                    seqs.append(cand)
            t0 = time.perf_counter()
            slow = ExplicitPruner(max_subsets=5_000_000).select(seqs, k, t)
            t_slow = (time.perf_counter() - t0) * 1e3
            t0 = time.perf_counter()
            fast = HittingSetPruner().select(seqs, k, t)
            t_fast = (time.perf_counter() - t0) * 1e3
            same = slow == fast
            table.add_row(k, t, n_seq, t_slow, t_fast, same)
            rows.append(same)
        return table, rows

    table, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("A1_pruner_choice", table.render())
    assert all(rows)


# ---------------------------------------------------------------------------
# A2 — batched vs sequential repetitions
# ---------------------------------------------------------------------------
def test_a2_batched_tester(benchmark):
    g, _ = planted_epsilon_far_graph(100, 5, 0.1, seed=0)
    res = benchmark.pedantic(
        lambda: BatchedCkTester(5, 0.1).run(g, seed=1), rounds=2, iterations=1
    )
    assert res.rejected


def test_a2_table(benchmark):
    def build():
        g, _ = planted_epsilon_far_graph(100, 5, 0.1, seed=0)
        table = Table(
            ["variant", "reps", "rounds", "max bits/msg", "verdict"],
            title="A2 - sequential vs batched repetitions (k=5, eps=0.1)",
        )
        seq = CkFreenessTester(5, 0.1)
        r_seq = seq.run(g, seed=1, stop_on_reject=False, keep_traces=True)
        bits_seq = max(t.max_message_bits for t in r_seq.traces)
        table.add_row("sequential", r_seq.repetitions_run, r_seq.total_rounds,
                      bits_seq, "reject" if r_seq.rejected else "accept")
        bat = BatchedCkTester(5, 0.1)
        r_bat = bat.run(g, seed=1)
        table.add_row("batched", r_bat.repetitions, r_bat.rounds,
                      r_bat.trace.max_message_bits,
                      "reject" if r_bat.rejected else "accept")
        return table, (r_seq, bits_seq, r_bat)

    table, (r_seq, bits_seq, r_bat) = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("A2_batched_vs_sequential", table.render())
    # The tradeoff, as claimed: far fewer rounds, far more bits.
    assert r_bat.rounds < r_seq.total_rounds
    assert r_bat.trace.max_message_bits > bits_seq


# ---------------------------------------------------------------------------
# A3 — the §4 obstruction
# ---------------------------------------------------------------------------
def test_a3_obstruction_table(benchmark):
    def build():
        table = Table(
            ["k", "chorded Ck exists", "cycle detected", "chord certified"],
            title="A3 - section 4 obstruction: oblivious chord detection fails",
        )
        rows = []
        for k in (6, 7, 8, 9):
            g, e = build_obstruction_instance(k)
            oracle = has_chorded_cycle_through_edge(g, e, k)
            res = oblivious_chorded_detect(g, e, k)
            table.add_row(k, oracle, res.cycle_detected, res.chord_certified)
            rows.append((oracle, res.cycle_detected, res.chord_certified))
        return table, rows

    table, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("A3_chorded_obstruction", table.render())
    for oracle, detected, certified in rows:
        assert oracle and detected and not certified


# ---------------------------------------------------------------------------
# A4 — completeness under message loss
# ---------------------------------------------------------------------------
def test_a4_fault_table(benchmark):
    def build():
        k = 6
        g = cycle_graph(k)
        trials = 60
        table = Table(
            ["drop prob", "trials", "detection rate", "false alarms"],
            title=f"A4 - detection vs message loss (C{k}, probe on the cycle)",
        )
        rows = []
        for p in (0.0, 0.1, 0.3, 0.6):
            hits = 0
            for s in range(trials):
                net = Network(g)
                sched = FaultyScheduler(net, DropFaults(p, seed=s))
                run = sched.run(
                    lambda ctx: DetectCkProgram(ctx, k, net.edge_ids(0, 1)),
                    num_rounds=phase2_rounds(k),
                )
                if any(
                    o.rejects for o in run.outputs.values()
                    if isinstance(o, DetectionOutcome)
                ):
                    hits += 1
            rate = hits / trials
            table.add_row(p, trials, rate, 0)
            rows.append((p, rate))
        return table, rows

    table, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("A4_fault_injection", table.render())
    rates = dict(rows)
    assert rates[0.0] == 1.0            # reliable links: deterministic
    assert rates[0.6] < rates[0.0]      # loss erodes completeness
    assert rates[0.6] <= rates[0.1] + 0.05  # roughly monotone decay

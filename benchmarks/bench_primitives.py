"""Substrate benchmarks: the classic CONGEST primitives.

Not a paper experiment — these validate and time the simulator's building
blocks (and give a feel for the simulator's per-round overhead on
non-cycle workloads).
"""

import pytest

from repro.congest import Network, aggregate, build_bfs_tree, elect_leader
from repro.graphs import grid_graph, random_tree, torus_graph
from repro.graphs.properties import diameter


def test_leader_election(benchmark):
    net = Network(torus_graph(12, 12))
    leader, run = benchmark.pedantic(
        lambda: elect_leader(net), rounds=3, iterations=1
    )
    assert leader == 0


def test_bfs_tree(benchmark):
    g = grid_graph(12, 12)
    net = Network(g)
    bfs = benchmark.pedantic(lambda: build_bfs_tree(net, 0), rounds=3, iterations=1)
    assert bfs[g.n - 1].distance == diameter(g)


def test_convergecast_sum(benchmark):
    g = random_tree(150, seed=3)
    net = Network(g)
    total = benchmark.pedantic(
        lambda: aggregate(net, 0, {v: v for v in range(150)}, lambda a, b: a + b),
        rounds=3,
        iterations=1,
    )
    assert total == sum(range(150))

"""Substrate benchmarks: the classic CONGEST primitives.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``primitives``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_primitives.py``
* ``python benchmarks/bench_primitives.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas primitives``
or ``python -m repro.bench run --areas primitives``.
"""

import _bench_utils


def test_primitives_area():
    """The registered ``primitives`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("primitives")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("primitives"))

"""Dynamic-graph monitoring: incremental CkMonitor vs naive re-detection.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions live in ``repro.bench.specs`` (area
``dynamic``); see docs/benchmarks.md and docs/dynamic.md.  Both entry
points work from a plain checkout —

* ``pytest benchmarks/bench_dynamic.py``
* ``python benchmarks/bench_dynamic.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas dynamic``
or ``python -m repro.bench run --areas dynamic``.
"""

import _bench_utils


def test_dynamic_area():
    """The registered ``dynamic`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("dynamic")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("dynamic"))

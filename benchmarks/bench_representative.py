"""T6 - representative families and the sequential Monien comparator.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``combinatorics``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_representative.py``
* ``python benchmarks/bench_representative.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas combinatorics``
or ``python -m repro.bench run --areas combinatorics``.
"""

import _bench_utils


def test_combinatorics_area():
    """The registered ``combinatorics`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("combinatorics")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("combinatorics"))

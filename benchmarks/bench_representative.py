"""T6 — the EHM machinery: representative families and the sequential
Monien comparator built on them."""

from itertools import combinations

import pytest

from _bench_utils import save_table
from repro.analysis.tables import Table
from repro.combinatorics import (
    greedy_bound,
    greedy_representative_family,
)
from repro.graphs import erdos_renyi_gnp, has_k_cycle
from repro.sequential import monien_has_k_cycle


def test_greedy_family_reduction(benchmark):
    """Time the greedy reduction of all 2-subsets of a 16-element ground
    set down to a 3-representative subfamily."""
    family = [frozenset(c) for c in combinations(range(16), 2)]

    kept = benchmark(lambda: greedy_representative_family(family, 3))
    assert len(kept) <= greedy_bound(2, 3)
    assert len(kept) < len(family)


@pytest.mark.parametrize("k", [5, 7])
def test_monien_vs_bruteforce(benchmark, k):
    """Time the representative-family k-cycle decision; cross-check the
    answer against the exhaustive oracle."""
    g = erdos_renyi_gnp(24, 0.12, seed=4)

    got = benchmark.pedantic(lambda: monien_has_k_cycle(g, k), rounds=2, iterations=1)
    assert got == has_k_cycle(g, k)


def test_family_size_table(benchmark):
    """Tabulate greedy family sizes against the (q+1)^p bound."""
    def build():
        table = Table(
            ["p", "q", "input family", "greedy kept", "(q+1)^p bound"],
            title="T6 - greedy representative family sizes",
        )
        rows = []
        for p in (1, 2, 3):
            for q in (1, 2, 3):
                family = [frozenset(c) for c in combinations(range(10), p)]
                kept = greedy_representative_family(family, q)
                table.add_row(p, q, len(family), len(kept), greedy_bound(p, q))
                rows.append((p, q, len(kept), greedy_bound(p, q)))
        return table, rows

    table, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("T6_representative_families", table.render())
    assert all(kept <= bound for (_, _, kept, bound) in rows)

"""F3 — simulator scalability: wall-clock per round vs network size."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_scalability
from repro.core import CkFreenessTester
from repro.graphs import erdos_renyi_gnm


@pytest.mark.parametrize("n", [200, 800])
def test_repetition_wallclock(benchmark, n):
    g = erdos_renyi_gnm(n, 2 * n, seed=1)
    tester = CkFreenessTester(5, 0.1, repetitions=1)

    res = benchmark.pedantic(lambda: tester.run(g, seed=1), rounds=3, iterations=1)
    assert res.repetitions_run == 1


def test_scalability_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_scalability(k=5, ns=(100, 200, 400, 800), seed=0),
        rounds=1,
        iterations=1,
    )
    save_table("F3_scalability", result.render())
    rows = result.rows
    # Sub-quadratic growth in m: per-round time should scale roughly
    # linearly with the edge count (generous 4x slack for constants).
    t_small = rows[0]["per_round"] / max(rows[0]["m"], 1)
    t_large = rows[-1]["per_round"] / max(rows[-1]["m"], 1)
    assert t_large < 6 * t_small

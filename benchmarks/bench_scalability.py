"""F3 - simulator scalability: wall-clock per round vs network size.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``scalability``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_scalability.py``
* ``python benchmarks/bench_scalability.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas scalability``
or ``python -m repro.bench run --areas scalability``.
"""

import _bench_utils


def test_scalability_area():
    """The registered ``scalability`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("scalability")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("scalability"))

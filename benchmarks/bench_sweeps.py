"""A5-A7 - sweep experiments: boosting curve, eps scaling, k scaling.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``sweeps``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_sweeps.py``
* ``python benchmarks/bench_sweeps.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas sweeps``
or ``python -m repro.bench run --areas sweeps``.
"""

import _bench_utils


def test_sweeps_area():
    """The registered ``sweeps`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("sweeps")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("sweeps"))

"""A5–A7 — sweep experiments: boosting curve, ε scaling, k scaling."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_boosting_curve, run_epsilon_sweep, run_k_sweep


def test_a5_boosting_curve(benchmark):
    result = benchmark.pedantic(
        lambda: run_boosting_curve(
            k=5, eps=0.1, n=60, rep_counts=(1, 2, 4, 8, 16), trials=20, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    save_table("A5_boosting_curve", result.render())
    # Empirical rejection rate must dominate the theoretical lower bound
    # (within the Wilson interval) and reach ~1 quickly.
    for row in result.rows:
        assert row["hi"] >= row["bound"]
    assert result.rows[-1]["rate"] >= 0.9


def test_a6_epsilon_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_epsilon_sweep(k=5, epsilons=(0.4, 0.2, 0.1, 0.05, 0.025)),
        rounds=1,
        iterations=1,
    )
    save_table("A6_epsilon_scaling", result.render())
    # The O(1/eps) law: total rounds double (within ceil slack) when eps
    # halves.
    rows = result.rows
    for a, b in zip(rows, rows[1:]):
        assert b["total"] <= 2 * a["total"] + 3


def test_a7_k_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_k_sweep(ks=(3, 4, 5, 6, 7, 8, 9, 10), width=6),
        rounds=1,
        iterations=1,
    )
    save_table("A7_k_scaling", result.render())
    for row in result.rows:
        assert row["measured"] <= row["ceiling"]

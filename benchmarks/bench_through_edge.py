"""F2 - deterministic through-edge detection (SS1.2's exactness remark).

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``through_edge``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_through_edge.py``
* ``python benchmarks/bench_through_edge.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas through_edge``
or ``python -m repro.bench run --areas through_edge``.
"""

import _bench_utils


def test_through_edge_area():
    """The registered ``through_edge`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("through_edge")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("through_edge"))

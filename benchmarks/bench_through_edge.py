"""F2 — deterministic through-edge detection (§1.2's exactness remark)."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_through_edge_exactness
from repro.core import detect_cycle_through_edge
from repro.graphs import planted_cycle_graph


@pytest.mark.parametrize("k", [4, 7, 10])
def test_single_planted_cycle(benchmark, k):
    g, cyc = planted_cycle_graph(80, k, seed=3, extra_edge_prob=0.01)
    edge = (cyc[0], cyc[1])

    det = benchmark.pedantic(
        lambda: detect_cycle_through_edge(g, edge, k), rounds=3, iterations=1
    )
    assert det.detected


def test_through_edge_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_through_edge_exactness(
            ks=(3, 4, 5, 6, 7, 8), n=50, trials_per_k=6, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    save_table("F2_through_edge", result.render())
    for row in result.rows:
        assert row["detected"] == row["trials"], (
            f"k={row['k']}: missed a planted cycle — determinism broken"
        )
        assert row["false_pos"] == 0, f"k={row['k']}: false positive!"

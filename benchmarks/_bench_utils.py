"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md §4 and writes
its rendered table to ``benchmarks/results/<id>.txt`` so EXPERIMENTS.md
can quote the exact artefacts.  The pytest-benchmark timing machinery
measures the core operation of each experiment.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

"""Shared glue for the thin ``bench_<area>.py`` shims.

Since the registry-driven harness landed (``repro.bench``, see
docs/benchmarks.md), every file in this directory is a compatibility
shim: the benchmark bodies, size grids and correctness assertions live
in ``src/repro/bench/specs.py``, and the shims just route the historical
entry points there —

* ``pytest benchmarks/bench_<area>.py`` runs the area's smoke grid as
  one test (green iff every registered check passes);
* ``python benchmarks/bench_<area>.py`` runs the same grid and prints
  the measured table.

:func:`bootstrap` makes both work from a plain checkout with no
``PYTHONPATH`` and no install: if ``repro`` is not importable, the
checkout's ``src/`` is prepended to ``sys.path``.
"""

from __future__ import annotations

import sys
from pathlib import Path


def bootstrap() -> None:
    """Make ``repro`` importable from a plain (uninstalled) checkout."""
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


bootstrap()

from repro.bench import run_suite  # noqa: E402  (needs bootstrap first)
from repro.bench.cli import format_record_line  # noqa: E402


def assert_area_ok(area: str, suite: str = "smoke"):
    """Run one area's suite without writing artifacts; fail on any error.

    Returns the :class:`repro.bench.BenchRunReport` so callers can make
    additional assertions on the measured records.
    """
    report = run_suite(suite, areas=[area], out_dir="-")
    assert report.results, f"area {area!r} registered no benchmarks"
    assert report.ok, report.render()
    return report


def main(area: str) -> int:
    """Direct-execution entry point for a shim: run + print the area."""
    suite = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    report = run_suite(suite, areas=[area], out_dir="-")
    for record in report.results:
        print(format_record_line(record))
    print(report.render())
    return 0 if report.ok else 1

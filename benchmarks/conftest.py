"""Benchmark suite conftest (helpers live in _bench_utils.py)."""

"""Benchmark-suite conftest.

Importing :mod:`_bench_utils` bootstraps ``sys.path`` for a plain
checkout (no install, no ``PYTHONPATH``), so collecting any shim in this
directory works standalone — e.g. ``pytest benchmarks/ -q`` from the
repo root, or with this directory as the pytest rootdir.
"""

import _bench_utils  # noqa: F401  (side effect: sys.path bootstrap)

"""T5 - Lemma 4: edge-disjoint cycle packings in eps-far graphs.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``farness``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_farness.py``
* ``python benchmarks/bench_farness.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas farness``
or ``python -m repro.bench run --areas farness``.
"""

import _bench_utils


def test_farness_area():
    """The registered ``farness`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("farness")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("farness"))

"""T5 — Lemma 4: edge-disjoint cycle packings in ε-far graphs."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_farness_packing
from repro.graphs import greedy_cycle_packing, lemma4_bound, planted_epsilon_far_graph


def test_greedy_packing(benchmark):
    g, certified = planted_epsilon_far_graph(200, 5, 0.1, seed=0)

    packing = benchmark.pedantic(
        lambda: greedy_cycle_packing(g, 5), rounds=3, iterations=1
    )
    assert len(packing) >= lemma4_bound(g.m, 5, certified) - 1e-9


def test_farness_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_farness_packing(k=5, eps=0.1, ns=(50, 100, 200), seed=0),
        rounds=1,
        iterations=1,
    )
    save_table("T5_farness_packing", result.render())
    assert all(row["ok"] for row in result.rows), "Lemma 4 bound violated!"

"""T1 - Theorem 1: round complexity is O(1/eps) and constant in n.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``rounds``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_round_complexity.py``
* ``python benchmarks/bench_round_complexity.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas rounds``
or ``python -m repro.bench run --areas rounds``.
"""

import _bench_utils


def test_rounds_area():
    """The registered ``rounds`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("rounds")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("rounds"))

"""T1 — Theorem 1: round complexity is O(1/ε) and constant in n."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_round_complexity
from repro.core import CkFreenessTester, repetitions_needed, rounds_per_repetition
from repro.graphs import planted_epsilon_far_graph


@pytest.mark.parametrize("n", [64, 256, 1024])
def test_one_repetition_run(benchmark, n):
    """Time one full protocol repetition (k=5) at growing n; the *round
    count* must not change (the wall-clock does — that's F3's subject)."""
    g, _ = planted_epsilon_far_graph(n, 5, 0.1, seed=0)
    tester = CkFreenessTester(5, 0.1, repetitions=1)

    result = benchmark.pedantic(
        lambda: tester.run(g, seed=1, keep_traces=True), rounds=3, iterations=1
    )
    assert result.traces[0].num_rounds == rounds_per_repetition(5)


def test_round_table_regenerates(benchmark):
    """Regenerate the T1 table (reduced grid for bench runtime)."""
    result = benchmark.pedantic(
        lambda: run_round_complexity(
            ns=(64, 256), ks=(3, 5, 8), epsilons=(0.1, 0.4)
        ),
        rounds=1,
        iterations=1,
    )
    save_table("T1_round_complexity", result.render())
    # Constant in n: same (k, eps) rows must show identical round counts.
    by_keps = {}
    for row in result.rows:
        key = (row["k"], row["eps"])
        by_keps.setdefault(key, set()).add((row["total"], row["simulated"]))
    for key, vals in by_keps.items():
        assert len(vals) == 1, f"rounds vary with n for {key}: {vals}"
    # O(1/eps): quadrupling eps divides repetitions by ~4.
    assert repetitions_needed(0.1) >= 3 * repetitions_needed(0.4)

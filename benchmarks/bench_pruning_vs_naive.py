"""F1 - pruned vs naive message load (the Figure-1 discussion).

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``pruning``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_pruning_vs_naive.py``
* ``python benchmarks/bench_pruning_vs_naive.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas pruning``
or ``python -m repro.bench run --areas pruning``.
"""

import _bench_utils


def test_pruning_area():
    """The registered ``pruning`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("pruning")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("pruning"))

"""F1 — pruned vs naive message load (the Figure-1 discussion)."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_pruning_vs_naive
from repro.baselines import naive_detect_cycle_through_edge
from repro.core import detect_cycle_through_edge, max_sequences_any_round
from repro.graphs import blowup_graph

K = 9
WIDTH = 8


def test_naive_forwarding(benchmark):
    g = blowup_graph(WIDTH, K)
    res = benchmark.pedantic(
        lambda: naive_detect_cycle_through_edge(g, (0, 1), K, max_sequences_cap=10_000),
        rounds=2,
        iterations=1,
    )
    assert res.detected
    # naive load grows ~width^(t-1): at least width^2 on this instance
    assert res.max_sequences_per_message >= WIDTH * WIDTH


def test_pruned_forwarding(benchmark):
    g = blowup_graph(WIDTH, K)
    res = benchmark.pedantic(
        lambda: detect_cycle_through_edge(g, (0, 1), K), rounds=2, iterations=1
    )
    assert res.detected
    assert res.run.trace.max_sequences_per_message <= max_sequences_any_round(K)


def test_pruning_vs_naive_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_pruning_vs_naive(k=K, widths=(2, 4, 6, 8), cap=10_000),
        rounds=1,
        iterations=1,
    )
    save_table("F1_pruning_vs_naive", result.render())
    rows = result.rows
    # Shape: naive grows with width, pruned stays within the k-bound and
    # both remain correct.
    assert rows[-1]["naive"] > rows[0]["naive"]
    assert all(r["pruned"] <= r["bound"] for r in rows)
    assert all(r["naive_ok"] and r["pruned_ok"] for r in rows)
    # Crossover: by the largest width the naive load strictly exceeds the
    # pruned load (the paper's qualitative claim).
    assert rows[-1]["naive"] > rows[-1]["pruned"]

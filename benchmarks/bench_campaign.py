"""Campaign runner throughput through the process-parallel executor.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``campaign``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_campaign.py``
* ``python benchmarks/bench_campaign.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas campaign``
or ``python -m repro.bench run --areas campaign``.
"""

import _bench_utils


def test_campaign_area():
    """The registered ``campaign`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("campaign")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("campaign"))

"""Campaign runner throughput: serial vs process-parallel execution.

Measures a fixed >= 24-row factor grid executed by the campaign runner
with 1 worker (serial) and with a worker pool, verifies the two runs
produce byte-identical JSONL, and reports the speedup.  On hosts with
>= 4 cores the parallel run must beat serial by a clear margin; on
smaller/CI containers the speedup is reported but not asserted
(process-pool overhead cannot be amortised without real parallel
hardware).
"""

import os
import tempfile
import time
from pathlib import Path

import pytest

from _bench_utils import save_table
from repro.analysis.tables import Table
from repro.runner import CampaignSpec, CampaignStore, run_campaign

PARALLEL_WORKERS = 4


def _grid_spec() -> CampaignSpec:
    # 4 generator cells x 2 ks x 2 algorithms x 2 reps = 32 rows, with
    # tester rows heavy enough for parallelism to matter.
    return CampaignSpec(
        name="bench",
        generators=[
            {"family": "gnp", "params": {"n": [72, 96], "p": 0.06}},
            {"family": "ba", "params": {"n": 72, "attach": 3}},
            {"family": "eps-far", "params": {"n": 80}},
        ],
        ks=[4, 5],
        epsilons=[0.12],
        algorithms=["tester", "detect"],
        repetitions=2,
        seed=0,
    )


def _run(table, path: Path, workers: int) -> float:
    t0 = time.perf_counter()
    report = run_campaign(table, CampaignStore(path), workers=workers,
                          chunksize=2)
    wall = time.perf_counter() - t0
    assert report.executed == len(table)
    assert report.errors == 0
    return wall


def test_campaign_parallel_throughput(benchmark):
    table = _grid_spec().expand()
    assert len(table) >= 24

    with tempfile.TemporaryDirectory() as tmp:
        serial_path = Path(tmp) / "serial.jsonl"
        parallel_path = Path(tmp) / "parallel.jsonl"

        serial_s = _run(table, serial_path, workers=1)
        parallel_s = benchmark.pedantic(
            lambda: _run(table, parallel_path, workers=PARALLEL_WORKERS),
            setup=lambda: parallel_path.unlink(missing_ok=True),
            rounds=1,
            iterations=1,
        )

        # Parallelism must never change the results.
        assert serial_path.read_bytes() == parallel_path.read_bytes()

        # Resume: a second invocation re-executes nothing.
        resume = run_campaign(table, CampaignStore(serial_path),
                              workers=PARALLEL_WORKERS)
        assert resume.executed == 0 and resume.skipped == len(table)

        speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
        cores = os.cpu_count() or 1
        t = Table(
            ["rows", "workers", "serial s", "parallel s", "speedup",
             "rows/s parallel", "host cores"],
            title="CAMPAIGN - serial vs parallel campaign throughput",
        )
        t.add_row(len(table), PARALLEL_WORKERS, serial_s, parallel_s,
                  speedup, len(table) / parallel_s, cores)
        save_table("CAMPAIGN_throughput", t.render())

        # Pool startup cannot be amortised over a 32-row grid without
        # real parallel hardware; gate the hard assertion accordingly.
        if cores >= 4:
            assert speedup > 1.5, (
                f"expected >1.5x parallel speedup on {cores} cores, "
                f"got {speedup:.2f}x"
            )


@pytest.mark.slow
def test_campaign_large_grid_scaling(benchmark):
    """Opt-in (--runslow): a bigger grid to exercise chunking and scaling."""
    spec = CampaignSpec(
        name="bench-large",
        generators=[
            {"family": "gnp", "params": {"n": [64, 96, 128], "p": 0.05}},
            {"family": "ba", "params": {"n": [64, 96], "attach": 3}},
            {"family": "ws", "params": {"n": [64, 96], "d": 4, "beta": 0.1}},
            {"family": "eps-far", "params": {"n": 96}},
        ],
        ks=[4, 5, 6],
        epsilons=[0.1],
        algorithms=["tester", "detect", "naive"],
        repetitions=2,
        seed=1,
    )
    table = spec.expand()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "large.jsonl"
        wall = benchmark.pedantic(
            lambda: _run(table, path, workers=PARALLEL_WORKERS),
            setup=lambda: path.unlink(missing_ok=True),
            rounds=1,
            iterations=1,
        )
        t = Table(
            ["rows", "workers", "wall s", "rows/s"],
            title="CAMPAIGN - large grid scaling",
        )
        t.add_row(len(table), PARALLEL_WORKERS, wall, len(table) / wall)
        save_table("CAMPAIGN_large_grid", t.render())

"""T2 — Lemma 3: per-message sequence counts stay within (k-t+1)^(t-1)."""

import pytest

from _bench_utils import save_table
from repro.analysis import run_message_bound
from repro.core import detect_cycle_through_edge, lemma3_bound, phase2_rounds
from repro.graphs import blowup_graph


@pytest.mark.parametrize("k", [6, 8])
def test_detect_on_blowup(benchmark, k):
    """Time Algorithm 1 on the hardest (high-multiplicity) instance."""
    g = blowup_graph(8, k)

    det = benchmark.pedantic(
        lambda: detect_cycle_through_edge(g, (0, 1), k), rounds=3, iterations=1
    )
    assert det.detected
    for t, measured in enumerate(det.run.trace.max_sequences_by_round(), start=1):
        assert measured <= lemma3_bound(k, t)


def test_message_bound_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_message_bound(ks=(4, 5, 6, 7, 8), scale=10),
        rounds=1,
        iterations=1,
    )
    save_table("T2_message_bound", result.render())
    assert all(row["ok"] for row in result.rows), "Lemma 3 bound violated!"

"""T2 - Lemma 3: per-message sequence counts stay within (k-t+1)^(t-1).

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``algorithm1``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_message_bound.py``
* ``python benchmarks/bench_message_bound.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas algorithm1``
or ``python -m repro.bench run --areas algorithm1``.
"""

import _bench_utils


def test_algorithm1_area():
    """The registered ``algorithm1`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("algorithm1")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("algorithm1"))

"""Detection-as-a-service: loadgen throughput and session lifecycle.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions live in ``repro.bench.specs`` (area
``service``); see docs/benchmarks.md and docs/service.md.  The bodies
boot a real in-process server on an ephemeral port, so the throughput
gate (>= 500 req/s on the smoke profile) and the service-vs-offline
parity assertion both exercise the actual wire protocol.  Both entry
points work from a plain checkout —

* ``pytest benchmarks/bench_service.py``
* ``python benchmarks/bench_service.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas service``
or ``python -m repro.bench run --areas service``.
"""

import _bench_utils


def test_service_area():
    """The registered ``service`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("service")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("service"))

"""Engine speedup: batched ``fast`` backend vs the ``reference`` scheduler.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions now live in ``repro.bench.specs``
(area ``engines``); see docs/benchmarks.md.  Both historical entry
points keep working from a plain checkout —

* ``pytest benchmarks/bench_engines.py``
* ``python benchmarks/bench_engines.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas engines``
or ``python -m repro.bench run --areas engines``.
"""

import _bench_utils


def test_engines_area():
    """The registered ``engines`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("engines")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("engines"))

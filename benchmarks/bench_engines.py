"""Engine speedup: batched ``fast`` backend vs the ``reference`` scheduler.

Runs full tester repetitions (Phase-1 rank round + selection + the
multiplexed Phase 2) on G(n, p) instances up to n = 2000 through both
engines, asserts the verdicts agree seed by seed, and reports the
wall-clock speedup.  The acceptance bar for the fast engine is a >= 5x
speedup on the ``gnp n=2000`` Phase-1 workload; CI containers are noisy,
so the assertion keeps headroom (>= 3x) while the committed table in
``benchmarks/results/ENGINES_speedup.txt`` records the measured figures
on an idle host.
"""

import time

import pytest

from _bench_utils import save_table
from repro.analysis.tables import Table
from repro.congest.engine import create_engine
from repro.congest.network import Network
from repro.graphs.generators import erdos_renyi_gnp

#: (n, p, k): average degree 4 at every size, the paper's k = 5.
CASES = [
    (500, 0.008, 5),
    (1000, 0.004, 5),
    (2000, 0.002, 5),
]

MIN_SPEEDUP_AT_2000 = 3.0  # CI floor; idle-host figures are ~7x.


def _time_repetitions(engine, k: int, *, min_seconds: float = 0.8,
                      min_reps: int = 3) -> float:
    """Mean seconds per repetition (fresh seeds, >= min_seconds total)."""
    t0 = time.perf_counter()
    reps = 0
    while reps < min_reps or time.perf_counter() - t0 < min_seconds:
        engine.run_tester_repetition(k, reps)
        reps += 1
    return (time.perf_counter() - t0) / reps


def test_engine_speedup(benchmark):
    table = Table(
        ["n", "m", "k", "reference ms/rep", "fast ms/rep", "speedup"],
        title="ENGINES - reference vs fast tester repetitions (gnp, avg deg 4)",
    )
    speedup_at_2000 = None
    for n, p, k in CASES:
        g = erdos_renyi_gnp(n, p, seed=1)
        net = Network(g)
        ref = create_engine("reference", net)
        fast = create_engine("fast", net)
        # Verdict equivalence on this exact instance before timing it.
        for seed in (0, 1):
            a = ref.run_tester_repetition(k, seed)
            b = fast.run_tester_repetition(k, seed)
            assert {v for v, o in a.outputs.items() if o.rejects} == {
                v for v, o in b.outputs.items() if o.rejects
            }
        ref_s = _time_repetitions(ref, k)
        fast_s = _time_repetitions(fast, k)
        speedup = ref_s / fast_s
        if n == 2000:
            speedup_at_2000 = speedup
        table.add_row(n, g.m, k, 1000 * ref_s, 1000 * fast_s, speedup)

    text = table.render()
    print()
    print(text)
    save_table("ENGINES_speedup", text)
    assert speedup_at_2000 is not None
    assert speedup_at_2000 >= MIN_SPEEDUP_AT_2000, (
        f"fast engine speedup at n=2000 was {speedup_at_2000:.2f}x, "
        f"expected >= {MIN_SPEEDUP_AT_2000}x"
    )

    # pytest-benchmark timing of the headline case.
    g = erdos_renyi_gnp(2000, 0.002, seed=1)
    fast = create_engine("fast", Network(g))
    counter = iter(range(10 ** 9))

    benchmark(lambda: fast.run_tester_repetition(5, next(counter)))

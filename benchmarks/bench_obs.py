"""Observability overhead: telemetry on vs off, exposition round-trip.

Thin shim over the registry-driven harness: the benchmark bodies, size
grids and correctness assertions live in ``repro.bench.specs`` (area
``obs``); see docs/benchmarks.md and docs/observability.md.  The
overhead benchmark enforces the documented <5% budget in-body, so a
green run *is* the overhead gate.  Both entry points work from a plain
checkout —

* ``pytest benchmarks/bench_obs.py``
* ``python benchmarks/bench_obs.py [smoke|default|full]``

and the canonical invocations are ``repro bench run --areas obs`` or
``python -m repro.bench run --areas obs``.
"""

import _bench_utils


def test_obs_area():
    """The registered ``obs`` smoke grid runs clean (checks included)."""
    _bench_utils.assert_area_ok("obs")


if __name__ == "__main__":
    raise SystemExit(_bench_utils.main("obs"))

"""Roll-up of persisted campaign results into analysis tables.

Groups the JSONL records of a :class:`~repro.runner.store.CampaignStore`
by factor coordinates and reports, per group, the rejection/detection
rate with its Wilson 95% interval (reusing
:func:`repro.analysis.experiments.wilson_interval`) plus mean congestion
telemetry, rendered through :class:`repro.analysis.tables.Table` so
campaign reports look exactly like the DESIGN.md experiment tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..analysis.experiments import wilson_interval
from ..analysis.tables import Table
from .runtable import canonical_json
from .store import CampaignStore

__all__ = [
    "CampaignSummary",
    "DEFAULT_GROUP_BY",
    "aggregate_records",
    "summarize_store",
]

DEFAULT_GROUP_BY: Tuple[str, ...] = (
    "generator", "params", "k", "eps", "algorithm", "engine", "stream",
    "faults",
)


@dataclass
class CampaignSummary:
    """Grouped campaign statistics plus a rendered table."""

    group_by: Tuple[str, ...]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    table: Table = None  # type: ignore[assignment]

    def render(self) -> str:
        """The summary as a fixed-width table string."""
        return self.table.render() if self.table is not None else ""


def _group_key(record: Dict[str, Any], group_by: Sequence[str]) -> Tuple[str, ...]:
    out = []
    for col in group_by:
        value = record.get(col)
        # params is a dict; canonicalise it so equal grids group together.
        out.append(canonical_json(value) if isinstance(value, dict) else str(value))
    return tuple(out)


def _positive(record: Dict[str, Any]) -> bool:
    """Whether the run found a cycle (tester reject / detect hit / a
    temporal replay ending in reject)."""
    outcome = record.get("outcome") or {}
    if "accepted" in outcome:
        return not outcome["accepted"]
    if "final_accepted" in outcome:
        return not outcome["final_accepted"]
    return bool(outcome.get("detected"))


def _mean_of(values: List[float]):
    return sum(values) / len(values) if values else None


def _telemetry_means(ok: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-group means of the per-run telemetry summaries.

    Newer records carry ``record["telemetry"]`` (counter totals plus
    nested histogram ``{count, sum}`` children from the run's private
    :class:`~repro.obs.Telemetry`); older stores lack it, so every
    figure degrades to ``None`` rather than erroring.  Cache-hit rate
    falls back to the monitor outcome's own counters for pre-telemetry
    records.
    """
    rounds: List[float] = []
    messages: List[float] = []
    hit_rates: List[float] = []
    ball_sizes: List[float] = []
    for rec in ok:
        tel = rec.get("telemetry") or {}
        if "repro_congest_rounds_total" in tel:
            rounds.append(tel["repro_congest_rounds_total"])
        if "repro_congest_messages_total" in tel:
            messages.append(tel["repro_congest_messages_total"])
        if "repro_monitor_steps_total" in tel:
            steps = tel["repro_monitor_steps_total"]
            hits = tel.get("repro_monitor_cache_hits_total", 0)
            if steps:
                hit_rates.append(hits / steps)
        elif "cache_hit_rate" in (rec.get("outcome") or {}):
            hit_rates.append(rec["outcome"]["cache_hit_rate"])
        ball = tel.get("repro_monitor_ball_size")
        if isinstance(ball, dict):
            count = sum(
                child.get("count", 0)
                for child in ball.values()
                if isinstance(child, dict)
            )
            total = sum(
                child.get("sum", 0)
                for child in ball.values()
                if isinstance(child, dict)
            )
            if count:
                ball_sizes.append(total / count)
    return {
        "mean_rounds": _mean_of(rounds),
        "mean_messages": _mean_of(messages),
        "cache_hit_rate": _mean_of(hit_rates),
        "mean_ball_size": _mean_of(ball_sizes),
    }


def aggregate_records(
    records: Iterable[Dict[str, Any]],
    *,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
) -> CampaignSummary:
    """Group result records and compute per-group detection statistics."""
    groups: Dict[Tuple[str, ...], List[Dict[str, Any]]] = {}
    for rec in records:
        groups.setdefault(_group_key(rec, group_by), []).append(rec)

    table = Table(
        [
            *group_by, "runs", "errors", "positive rate", "95% CI",
            "mean seqs/msg", "mean rounds", "mean msgs", "hit rate",
            "mean ball",
        ],
        title="campaign summary",
    )
    summary = CampaignSummary(group_by=tuple(group_by), table=table)
    for key in sorted(groups):
        recs = groups[key]
        ok = [r for r in recs if r.get("status") == "ok"]
        errors = len(recs) - len(ok)
        positives = sum(_positive(r) for r in ok)
        rate = positives / len(ok) if ok else 0.0
        lo, hi = wilson_interval(positives, len(ok))
        seqs = [
            r["outcome"]["max_sequences_per_message"]
            for r in ok
            if "max_sequences_per_message" in (r.get("outcome") or {})
        ]
        mean_seqs = sum(seqs) / len(seqs) if seqs else float("nan")
        tel = _telemetry_means(ok)
        table.add_row(
            *key, len(recs), errors, rate, f"[{lo:.3f},{hi:.3f}]",
            mean_seqs if seqs else "-",
            "-" if tel["mean_rounds"] is None else tel["mean_rounds"],
            "-" if tel["mean_messages"] is None else tel["mean_messages"],
            "-" if tel["cache_hit_rate"] is None else tel["cache_hit_rate"],
            "-" if tel["mean_ball_size"] is None else tel["mean_ball_size"],
        )
        summary.rows.append(
            {
                **dict(zip(group_by, key)),
                "runs": len(recs),
                "errors": errors,
                "positives": positives,
                "rate": rate,
                "lo": lo,
                "hi": hi,
                "mean_seqs": mean_seqs if seqs else None,
                **tel,
            }
        )
    return summary


def summarize_store(
    store: CampaignStore, *, group_by: Sequence[str] = DEFAULT_GROUP_BY
) -> CampaignSummary:
    """Aggregate everything persisted in ``store``."""
    return aggregate_records(store.records(), group_by=group_by)

"""Campaign execution: serial or process-parallel, always deterministic.

:func:`execute_row` is a pure function of its :class:`RunRow` — the graph
is rebuilt from the registry with the row's derived seed, the named
algorithm variant runs on it, and the returned record contains only
deterministic fields (no wall-clock timestamps).  That property is what
lets :func:`run_campaign` promise byte-identical JSONL output whether it
runs serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`:
results are always consumed in submission order, so the store sees the
same record stream either way.

Scheduling policy (wall clock only, never results):

* **Persistent pools** — process pools outlive a single
  :func:`run_campaign`/:func:`ordered_parallel_map` call, keyed by
  worker count, so repeated invocations (campaign resume, suite reruns,
  benchmark repeats) skip interpreter spawn and import costs.
* **Slot-weighted co-scheduling** — a row running a ``sharded:P``
  engine forks ``P`` of its own kernel workers, so the campaign counts
  it as ``P`` slots and keeps the total slots in flight within the
  worker budget instead of oversubscribing the machine.

Wall-clock throughput is reported separately in the returned
:class:`ExecutionReport` (and measured by ``benchmarks/bench_campaign.py``).
"""

from __future__ import annotations

import atexit
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from ..baselines.gather import gather_detect_cycle_through_edge
from ..baselines.naive import naive_detect_cycle_through_edge
from ..core.algorithm1 import detect_cycle_through_edge
from ..core.tester import CkFreenessTester
from ..errors import ConfigurationError, ReproError
from ..graphs.graph import Graph
from . import registry
from .runtable import STREAM_ALGORITHMS, RunRow, RunTable, derive_seed
from .store import CampaignStore

__all__ = [
    "ExecutionReport",
    "execute_row",
    "ordered_parallel_map",
    "row_slots",
    "run_campaign",
    "shutdown_persistent_pools",
]

#: Live process pools, by worker count (see :func:`_persistent_pool`).
_PERSISTENT_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _persistent_pool(workers: int) -> ProcessPoolExecutor:
    """The shared process pool for ``workers``, created on first use.

    Pools persist until interpreter exit (or an explicit
    :func:`shutdown_persistent_pools`), so consecutive campaign or
    benchmark invocations in one process reuse warm workers.  A pool
    broken by a dead worker is discarded and respawned.
    """
    pool = _PERSISTENT_POOLS.get(workers)
    if pool is not None and getattr(pool, "_broken", False):
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _PERSISTENT_POOLS[workers] = pool
    return pool


def shutdown_persistent_pools() -> None:
    """Tear down every persistent pool (also runs at interpreter exit)."""
    pools = list(_PERSISTENT_POOLS.values())
    _PERSISTENT_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_persistent_pools)


def ordered_parallel_map(
    fn: Callable[[Any], Any],
    items: List[Any],
    *,
    workers: int = 1,
    chunksize: int = 1,
    weights: Optional[Sequence[int]] = None,
) -> Iterator[Any]:
    """Yield ``fn(item)`` for each item, serially or across a process pool.

    Results arrive in submission order either way, which is the property
    both the campaign runner (for byte-identical JSONL) and the benchmark
    runner (for order-stable artifacts) depend on.  ``fn`` and every item
    must be picklable when ``workers > 1``.

    ``weights`` opts into slot-weighted co-scheduling: ``weights[i]``
    slots (of ``workers`` total) are held while ``items[i]`` is in
    flight, so items that fork their own worker processes (sharded-engine
    rows) do not oversubscribe the machine.  Weights are clamped to
    ``[1, workers]``; scheduling alters wall clock only, never the
    result stream.  ``weights`` requires ``chunksize == 1`` (a chunk has
    no single weight).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    if weights is not None:
        if chunksize != 1:
            raise ConfigurationError(
                "weighted scheduling requires chunksize == 1"
            )
        if len(weights) != len(items):
            raise ConfigurationError(
                f"got {len(weights)} weights for {len(items)} items"
            )
    if workers == 1:
        for item in items:
            yield fn(item)
        return
    pool = _persistent_pool(workers)
    if weights is None:
        yield from pool.map(fn, items, chunksize=chunksize)
        return
    in_flight: "deque[tuple]" = deque()
    held = 0
    for item, weight in zip(items, weights):
        weight = max(1, min(int(weight), workers))
        while in_flight and held + weight > workers:
            future, slots = in_flight.popleft()
            yield future.result()
            held -= slots
        in_flight.append((pool.submit(fn, item), weight))
        held += weight
    while in_flight:
        future, _ = in_flight.popleft()
        yield future.result()


def _probe_edge(graph: Graph) -> tuple:
    """Deterministic probe edge for through-edge variants: the canonical
    smallest edge."""
    try:
        return next(iter(graph.edges()))
    except StopIteration:
        raise ConfigurationError("graph has no edges to probe") from None


def _run_tester(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    # No cross-row engine cache here, deliberately: engine construction
    # records into the compiling row's private telemetry (shard worker
    # gauges, pool spawns), so reuse across rows would make a row's
    # summary depend on which rows ran before it in the same process —
    # breaking the serial == parallel byte-identity of campaign JSONL.
    result = CkFreenessTester(
        k, eps, engine=engine, faults=faults, telemetry=telemetry
    ).run(graph, seed=seed)
    return {
        "accepted": result.accepted,
        "repetitions_run": result.repetitions_run,
        "repetitions_planned": result.repetitions_planned,
        "rounds_per_repetition": result.rounds_per_repetition,
        "evidence": list(result.evidence) if result.evidence is not None else None,
    }


def _run_detect(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    det = detect_cycle_through_edge(
        graph, _probe_edge(graph), k, engine=engine, faults=faults,
        telemetry=telemetry,
    )
    return {
        "detected": det.detected,
        "rounds": det.run.trace.num_rounds,
        "max_sequences_per_message": det.run.trace.max_sequences_per_message,
        "max_message_bits": det.run.trace.max_message_bits,
    }


def _run_naive(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    # Baselines run on the reference scheduler regardless of the engine
    # factor: their point is the per-message congestion audit.
    res = naive_detect_cycle_through_edge(graph, _probe_edge(graph), k)
    return {
        "detected": res.detected,
        "max_sequences_per_message": res.max_sequences_per_message,
        "cap_tripped": res.cap_tripped,
    }


def _run_gather(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    res = gather_detect_cycle_through_edge(graph, _probe_edge(graph), k)
    return {
        "detected": res.detected,
        "max_message_bits": res.max_message_bits,
    }


_ALGORITHMS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "tester": _run_tester,
    "detect": _run_detect,
    "naive": _run_naive,
    "gather": _run_gather,
}


def _run_stream_row(
    graph: Graph, row: RunRow, seed: int, faults=None, telemetry=None
) -> Dict[str, Any]:
    """Execute a temporal row: replay the row's scenario over ``graph``.

    ``monitor`` rows run the incremental :class:`~repro.dynamic.monitor.
    CkMonitor`; ``tester`` rows run the naive per-step from-scratch
    baseline on the identical seed schedule, so their verdict
    trajectories are directly comparable (and must agree).
    """
    # Imported lazily: repro.dynamic sits above the runner layer.
    from ..dynamic.campaign import run_monitor_stream, run_naive_stream

    run = run_monitor_stream if row.algorithm == "monitor" else run_naive_stream
    return run(
        graph, row.stream, row.k,
        engine=row.engine, seed=seed, epsilon=row.eps, faults=faults,
        telemetry=telemetry,
    )


def execute_row(row: RunRow) -> Dict[str, Any]:
    """Execute one run row and return its (deterministic) result record.

    Never raises on algorithm/generator errors: failures become records
    with ``"status": "error"`` so a campaign survives bad factor
    combinations and the failure is persisted rather than retried forever.

    Every row runs under a *private* :class:`~repro.obs.Telemetry`
    (metrics only, no event sink), and the record's ``"telemetry"``
    field carries its flat summary — counters summed, gauges peaked, no
    wall clock — so per-run rounds/messages/cache-hit figures are
    deterministic and byte-identical between serial and parallel
    execution.
    """
    from ..obs import Telemetry

    record = dict(row.factors())
    record["run_id"] = row.run_id
    record["seed"] = row.seed
    # Independent sub-seeds for instance sampling and protocol randomness.
    graph_seed = derive_seed(row.seed, "graph")
    algo_seed = derive_seed(row.seed, "algorithm")
    if row.stream is None:
        if row.algorithm not in _ALGORITHMS:
            raise ConfigurationError(f"unknown algorithm {row.algorithm!r}")
    elif row.algorithm not in STREAM_ALGORITHMS:
        raise ConfigurationError(
            f"algorithm {row.algorithm!r} cannot replay a stream; "
            f"temporal rows take one of {', '.join(STREAM_ALGORITHMS)}"
        )
    try:
        # The row's k/eps double as family parameters (flower, eps-far, ...)
        # unless the generator entry pinned its own values.
        gen_params = {"k": row.k, "eps": row.eps, **row.params_dict()}
        graph = registry.build_graph(row.generator, seed=graph_seed, **gen_params)
        record["n"] = graph.n
        record["m"] = graph.m
        faults = None
        if row.faults is not None:
            from ..congest.faults import build_fault_model

            faults = build_fault_model(
                row.faults, seed=derive_seed(row.seed, "faults")
            )
        tel = Telemetry()
        if row.stream is not None:
            record["outcome"] = _run_stream_row(
                graph, row, algo_seed, faults, tel
            )
        else:
            record["outcome"] = _ALGORITHMS[row.algorithm](
                graph, row.k, row.eps, algo_seed, row.engine, faults, tel
            )
        record["telemetry"] = tel.summary()
        record["status"] = "ok"
    except ReproError as exc:
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


@dataclass
class ExecutionReport:
    """What one ``run_campaign`` invocation actually did."""

    campaign: str
    total_rows: int
    executed: int
    skipped: int
    errors: int
    workers: int
    wall_seconds: float
    executed_ids: List[str] = field(default_factory=list)

    @property
    def rows_per_second(self) -> float:
        """Executed-row throughput of this invocation."""
        return self.executed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def render(self) -> str:
        """One-line human summary of the invocation."""
        return (
            f"campaign {self.campaign!r}: {self.executed} executed, "
            f"{self.skipped} skipped (already done), {self.errors} errors, "
            f"{self.workers} worker(s), {self.wall_seconds:.2f}s "
            f"({self.rows_per_second:.1f} rows/s)"
        )


def row_slots(row: RunRow) -> int:
    """Worker slots one row occupies under weighted co-scheduling.

    A ``sharded:P`` row forks ``P`` kernel workers of its own, so it
    counts as ``P`` slots against the campaign's worker budget; every
    other row (including unparseable engine specs, which fail inside
    :func:`execute_row` as an error record) counts as one.
    """
    from ..congest.engine import parse_engine_spec
    from ..congest.engine.sharded import default_shard_count

    try:
        name, opts = parse_engine_spec(row.engine)
    except ReproError:
        return 1
    if name != "sharded":
        return 1
    return max(1, int(opts.get("shards", default_shard_count())))


def _result_stream(
    pending: List[RunRow], workers: int, chunksize: int
) -> Iterator[Dict[str, Any]]:
    # Ordered map keeps the JSONL stream identical to the serial one;
    # sharded rows hold as many slots as they fork kernel workers.
    weights = None
    if workers > 1 and chunksize == 1:
        weights = [row_slots(row) for row in pending]
    yield from ordered_parallel_map(
        execute_row, pending, workers=workers, chunksize=chunksize,
        weights=weights,
    )


def run_campaign(
    table: RunTable,
    store: CampaignStore,
    *,
    workers: int = 1,
    chunksize: int = 1,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ExecutionReport:
    """Execute every not-yet-completed row of ``table`` into ``store``.

    Rows whose ``run_id`` already appears in the store are skipped, which
    makes a second invocation of the same campaign a cheap resume (and a
    completed campaign a no-op).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    done = store.completed_ids()
    pending = [row for row in table.rows if row.run_id not in done]
    t0 = time.perf_counter()
    errors = 0
    executed_ids: List[str] = []
    if pending:
        with store.writer() as write:
            for record in _result_stream(pending, workers, chunksize):
                write(record)
                executed_ids.append(record["run_id"])
                if record.get("status") == "error":
                    errors += 1
                if progress is not None:
                    progress(record)
    wall = time.perf_counter() - t0
    return ExecutionReport(
        campaign=table.name,
        total_rows=len(table.rows),
        executed=len(executed_ids),
        skipped=len(table.rows) - len(pending),
        errors=errors,
        workers=workers,
        wall_seconds=wall,
        executed_ids=executed_ids,
    )

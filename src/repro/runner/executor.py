"""Campaign execution: serial or process-parallel, always deterministic.

:func:`execute_row` is a pure function of its :class:`RunRow` — the graph
is rebuilt from the registry with the row's derived seed, the named
algorithm variant runs on it, and the returned record contains only
deterministic fields (no wall-clock timestamps).  That property is what
lets :func:`run_campaign` promise byte-identical JSONL output whether it
runs serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`:
``Executor.map`` yields results in submission order, so the store sees the
same record stream either way.

Wall-clock throughput is reported separately in the returned
:class:`ExecutionReport` (and measured by ``benchmarks/bench_campaign.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..baselines.gather import gather_detect_cycle_through_edge
from ..baselines.naive import naive_detect_cycle_through_edge
from ..core.algorithm1 import detect_cycle_through_edge
from ..core.tester import CkFreenessTester
from ..errors import ConfigurationError, ReproError
from ..graphs.graph import Graph
from . import registry
from .runtable import STREAM_ALGORITHMS, RunRow, RunTable, derive_seed
from .store import CampaignStore

__all__ = [
    "ExecutionReport",
    "execute_row",
    "ordered_parallel_map",
    "run_campaign",
]


def ordered_parallel_map(
    fn: Callable[[Any], Any],
    items: List[Any],
    *,
    workers: int = 1,
    chunksize: int = 1,
) -> Iterator[Any]:
    """Yield ``fn(item)`` for each item, serially or across a process pool.

    Results arrive in submission order either way (``Executor.map``
    preserves it), which is the property both the campaign runner (for
    byte-identical JSONL) and the benchmark runner (for order-stable
    artifacts) depend on.  ``fn`` and every item must be picklable when
    ``workers > 1``.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    if workers == 1:
        for item in items:
            yield fn(item)
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        yield from pool.map(fn, items, chunksize=chunksize)


def _probe_edge(graph: Graph) -> tuple:
    """Deterministic probe edge for through-edge variants: the canonical
    smallest edge."""
    try:
        return next(iter(graph.edges()))
    except StopIteration:
        raise ConfigurationError("graph has no edges to probe") from None


def _run_tester(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    result = CkFreenessTester(
        k, eps, engine=engine, faults=faults, telemetry=telemetry
    ).run(graph, seed=seed)
    return {
        "accepted": result.accepted,
        "repetitions_run": result.repetitions_run,
        "repetitions_planned": result.repetitions_planned,
        "rounds_per_repetition": result.rounds_per_repetition,
        "evidence": list(result.evidence) if result.evidence is not None else None,
    }


def _run_detect(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    det = detect_cycle_through_edge(
        graph, _probe_edge(graph), k, engine=engine, faults=faults,
        telemetry=telemetry,
    )
    return {
        "detected": det.detected,
        "rounds": det.run.trace.num_rounds,
        "max_sequences_per_message": det.run.trace.max_sequences_per_message,
        "max_message_bits": det.run.trace.max_message_bits,
    }


def _run_naive(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    # Baselines run on the reference scheduler regardless of the engine
    # factor: their point is the per-message congestion audit.
    res = naive_detect_cycle_through_edge(graph, _probe_edge(graph), k)
    return {
        "detected": res.detected,
        "max_sequences_per_message": res.max_sequences_per_message,
        "cap_tripped": res.cap_tripped,
    }


def _run_gather(
    graph: Graph, k: int, eps: float, seed: int, engine: str, faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    res = gather_detect_cycle_through_edge(graph, _probe_edge(graph), k)
    return {
        "detected": res.detected,
        "max_message_bits": res.max_message_bits,
    }


_ALGORITHMS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "tester": _run_tester,
    "detect": _run_detect,
    "naive": _run_naive,
    "gather": _run_gather,
}


def _run_stream_row(
    graph: Graph, row: RunRow, seed: int, faults=None, telemetry=None
) -> Dict[str, Any]:
    """Execute a temporal row: replay the row's scenario over ``graph``.

    ``monitor`` rows run the incremental :class:`~repro.dynamic.monitor.
    CkMonitor`; ``tester`` rows run the naive per-step from-scratch
    baseline on the identical seed schedule, so their verdict
    trajectories are directly comparable (and must agree).
    """
    # Imported lazily: repro.dynamic sits above the runner layer.
    from ..dynamic.campaign import run_monitor_stream, run_naive_stream

    run = run_monitor_stream if row.algorithm == "monitor" else run_naive_stream
    return run(
        graph, row.stream, row.k,
        engine=row.engine, seed=seed, epsilon=row.eps, faults=faults,
        telemetry=telemetry,
    )


def execute_row(row: RunRow) -> Dict[str, Any]:
    """Execute one run row and return its (deterministic) result record.

    Never raises on algorithm/generator errors: failures become records
    with ``"status": "error"`` so a campaign survives bad factor
    combinations and the failure is persisted rather than retried forever.

    Every row runs under a *private* :class:`~repro.obs.Telemetry`
    (metrics only, no event sink), and the record's ``"telemetry"``
    field carries its flat summary — counters summed, gauges peaked, no
    wall clock — so per-run rounds/messages/cache-hit figures are
    deterministic and byte-identical between serial and parallel
    execution.
    """
    from ..obs import Telemetry

    record = dict(row.factors())
    record["run_id"] = row.run_id
    record["seed"] = row.seed
    # Independent sub-seeds for instance sampling and protocol randomness.
    graph_seed = derive_seed(row.seed, "graph")
    algo_seed = derive_seed(row.seed, "algorithm")
    if row.stream is None:
        if row.algorithm not in _ALGORITHMS:
            raise ConfigurationError(f"unknown algorithm {row.algorithm!r}")
    elif row.algorithm not in STREAM_ALGORITHMS:
        raise ConfigurationError(
            f"algorithm {row.algorithm!r} cannot replay a stream; "
            f"temporal rows take one of {', '.join(STREAM_ALGORITHMS)}"
        )
    try:
        # The row's k/eps double as family parameters (flower, eps-far, ...)
        # unless the generator entry pinned its own values.
        gen_params = {"k": row.k, "eps": row.eps, **row.params_dict()}
        graph = registry.build_graph(row.generator, seed=graph_seed, **gen_params)
        record["n"] = graph.n
        record["m"] = graph.m
        faults = None
        if row.faults is not None:
            from ..congest.faults import build_fault_model

            faults = build_fault_model(
                row.faults, seed=derive_seed(row.seed, "faults")
            )
        tel = Telemetry()
        if row.stream is not None:
            record["outcome"] = _run_stream_row(
                graph, row, algo_seed, faults, tel
            )
        else:
            record["outcome"] = _ALGORITHMS[row.algorithm](
                graph, row.k, row.eps, algo_seed, row.engine, faults, tel
            )
        record["telemetry"] = tel.summary()
        record["status"] = "ok"
    except ReproError as exc:
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


@dataclass
class ExecutionReport:
    """What one ``run_campaign`` invocation actually did."""

    campaign: str
    total_rows: int
    executed: int
    skipped: int
    errors: int
    workers: int
    wall_seconds: float
    executed_ids: List[str] = field(default_factory=list)

    @property
    def rows_per_second(self) -> float:
        """Executed-row throughput of this invocation."""
        return self.executed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def render(self) -> str:
        """One-line human summary of the invocation."""
        return (
            f"campaign {self.campaign!r}: {self.executed} executed, "
            f"{self.skipped} skipped (already done), {self.errors} errors, "
            f"{self.workers} worker(s), {self.wall_seconds:.2f}s "
            f"({self.rows_per_second:.1f} rows/s)"
        )


def _result_stream(
    pending: List[RunRow], workers: int, chunksize: int
) -> Iterator[Dict[str, Any]]:
    # Ordered map keeps the JSONL stream identical to the serial one.
    yield from ordered_parallel_map(
        execute_row, pending, workers=workers, chunksize=chunksize
    )


def run_campaign(
    table: RunTable,
    store: CampaignStore,
    *,
    workers: int = 1,
    chunksize: int = 1,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ExecutionReport:
    """Execute every not-yet-completed row of ``table`` into ``store``.

    Rows whose ``run_id`` already appears in the store are skipped, which
    makes a second invocation of the same campaign a cheap resume (and a
    completed campaign a no-op).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    done = store.completed_ids()
    pending = [row for row in table.rows if row.run_id not in done]
    t0 = time.perf_counter()
    errors = 0
    executed_ids: List[str] = []
    if pending:
        with store.writer() as write:
            for record in _result_stream(pending, workers, chunksize):
                write(record)
                executed_ids.append(record["run_id"])
                if record.get("status") == "error":
                    errors += 1
                if progress is not None:
                    progress(record)
    wall = time.perf_counter() - t0
    return ExecutionReport(
        campaign=table.name,
        total_rows=len(table.rows),
        executed=len(executed_ids),
        skipped=len(table.rows) - len(pending),
        errors=errors,
        workers=workers,
        wall_seconds=wall,
        executed_ids=executed_ids,
    )

"""JSONL persistence for campaign results, with resume support.

One result record per line, serialised canonically (sorted keys, compact
separators) so that two executions producing the same records produce
byte-identical files.  Resume works by reading the ``run_id`` of every
line already on disk and skipping those rows on the next invocation —
a crash mid-campaign loses at most the in-flight rows.
"""

from __future__ import annotations

import json
import os
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Set, Union

from ..errors import ConfigurationError
from .runtable import canonical_json

__all__ = ["CampaignStore"]


class CampaignStore:
    """Append-only JSONL result store keyed by ``run_id``."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._tail_checked = False

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """Whether the store file is present on disk."""
        return self.path.exists()

    def records(self) -> List[Dict[str, Any]]:
        """All persisted result records, in file order.

        A final line with no trailing newline that fails to parse is the
        signature of a writer killed mid-append; it is dropped (loudly),
        so a crashed campaign loses at most its in-flight row.  Corrupt
        lines anywhere else still raise.
        """
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        out: List[Dict[str, Any]] = []
        for idx, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as exc:
                # (A *parseable* newline-less tail is a complete record —
                # only the unparseable case is treated as torn, here and
                # in _discard_torn_tail.)
                torn_tail = idx == len(lines) - 1 and not text.endswith("\n")
                if torn_tail:
                    print(
                        f"warning: {self.path}: dropping torn final line "
                        f"(crashed writer); the row will be re-executed",
                        file=sys.stderr,
                    )
                    continue
                raise ConfigurationError(
                    f"{self.path}:{idx + 1}: corrupt JSONL line ({exc})"
                ) from None
        return out

    def completed_ids(self) -> Set[str]:
        """run_ids of every record already on disk."""
        return {rec["run_id"] for rec in self.records() if "run_id" in rec}

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    def _discard_torn_tail(self) -> None:
        """Repair a final line with no trailing newline (crashed writer)
        so new appends start on a clean line.

        Mirrors the rule in :meth:`records`: a tail that still parses as
        JSON is a complete record that lost only its newline — keep it
        and add the newline; only an unparseable tail is discarded.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when no newline at all
        tail = data[keep:]
        try:
            json.loads(tail.decode("utf-8"))
            complete = True
        except (UnicodeDecodeError, json.JSONDecodeError):
            complete = False
        with self.path.open("rb+") as fh:
            if complete:
                fh.seek(0, 2)
                fh.write(b"\n")
            else:
                fh.truncate(keep)

    def append(self, record: Dict[str, Any]) -> None:
        """Persist one result record (flushed and fsynced immediately)."""
        with self.writer() as write:
            write(record)

    @contextmanager
    def writer(self, fsync_every: int = 64):
        """One open handle for bulk appends.

        Yields a ``write(record)`` callable.  Every record is flushed to
        the OS immediately (a crash loses at most in-flight rows), while
        the expensive fsync runs every ``fsync_every`` records and on
        close — so a parallel campaign is not serialised on per-row disk
        latency.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._tail_checked:
            self._discard_torn_tail()
            self._tail_checked = True
        with self.path.open("a", encoding="utf-8") as fh:
            count = 0

            def write(record: Dict[str, Any]) -> None:
                nonlocal count
                if "run_id" not in record:
                    raise ConfigurationError("result record must carry a run_id")
                fh.write(canonical_json(record) + "\n")
                fh.flush()
                count += 1
                if count % fsync_every == 0:
                    os.fsync(fh.fileno())

            try:
                yield write
            finally:
                fh.flush()
                os.fsync(fh.fileno())

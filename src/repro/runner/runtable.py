"""Declarative run tables for experiment campaigns.

A :class:`CampaignSpec` is a factor grid — generator configurations
crossed with cycle lengths, farness parameters, algorithm variants and
replicate indices.  :meth:`CampaignSpec.expand` turns it into a
:class:`RunTable` of concrete :class:`RunRow` entries, each carrying

* a stable ``run_id`` — a content hash of the row's factors, so the same
  (campaign, factors) always maps to the same id regardless of grid
  order, which is what makes resume (:mod:`repro.runner.store`) safe; and
* a deterministic per-run ``seed`` derived from the campaign master seed
  and the ``run_id``, so serial and parallel executions (and re-runs on a
  different machine) produce identical results row by row.

Specs serialise to/from JSON so campaigns can be defined once on disk and
re-expanded identically by every later ``run``/``resume`` invocation.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..congest.engine import ENGINE_NAMES, parse_engine_spec
from ..errors import ConfigurationError
from . import registry

__all__ = [
    "ALGORITHM_NAMES",
    "ENGINE_NAMES",
    "FAULT_AWARE_ALGORITHMS",
    "STREAM_ALGORITHMS",
    "CampaignSpec",
    "RunRow",
    "RunTable",
    "canonical_json",
    "derive_seed",
]

#: Algorithm/baseline variants a run row may name (executed by
#: :mod:`repro.runner.executor`).  ``monitor`` is the incremental
#: :class:`~repro.dynamic.monitor.CkMonitor` and only exists on temporal
#: rows (``stream`` factor set).
ALGORITHM_NAMES: Tuple[str, ...] = ("tester", "detect", "naive", "gather",
                                    "monitor")

#: Variants that actually take an engine; the baselines always run on the
#: reference scheduler (their point is the per-message congestion audit),
#: so the grid expansion pins them there instead of crossing them with
#: the engines factor — no duplicate work, no mislabeled report rows.
ENGINE_AWARE_ALGORITHMS: Tuple[str, ...] = ("tester", "detect", "monitor")

#: Variants that can replay a temporal row: the incremental monitor and
#: the naive per-step from-scratch tester it is benchmarked against.
#: Other algorithms collapse the stream axis (run_id dedup drops twins),
#: exactly like the engine axis for engine-blind baselines.
STREAM_ALGORITHMS: Tuple[str, ...] = ("monitor", "tester")

#: Variants that accept a fault model.  Fault injection lives in the
#: reference scheduler, so faulted rows are also pinned to the
#: ``reference`` engine during expansion.
FAULT_AWARE_ALGORITHMS: Tuple[str, ...] = ("tester", "detect", "monitor")

_SEED_MASK = (1 << 63) - 1


def canonical_json(obj: Any) -> str:
    """Canonical compact JSON used for hashing and JSONL persistence."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(master_seed: int, *tokens: Any) -> int:
    """A 63-bit seed deterministically derived from master seed + tokens.

    Uses SHA-256 (stable across processes and Python versions, unlike
    ``hash()``), so run tables expand identically everywhere.
    """
    digest = hashlib.sha256(
        canonical_json([master_seed, list(tokens)]).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


@dataclass(frozen=True)
class RunRow:
    """One concrete unit of work in a campaign.

    ``stream`` (a scenario spec string, see
    :func:`repro.dynamic.streams.parse_stream_spec`) marks a *temporal*
    row: the generator builds the base graph and the named scenario is
    replayed over it.  ``faults`` (a fault spec string, see
    :func:`repro.congest.faults.parse_fault_spec`) runs the row over
    unreliable links.  Both default to ``None`` (static, reliable), which
    keeps every pre-dynamic campaign store resumable with unchanged ids.
    """

    run_id: str
    campaign: str
    generator: str
    params: Tuple[Tuple[str, Any], ...]  # sorted, hashable generator params
    k: int
    eps: float
    algorithm: str
    repetition: int
    seed: int
    engine: str = "reference"
    stream: Optional[str] = None
    faults: Optional[str] = None

    def params_dict(self) -> Dict[str, Any]:
        """Generator params as a plain dict."""
        return dict(self.params)

    def factors(self) -> Dict[str, Any]:
        """The factor coordinates (everything except run_id and seed).

        ``stream``/``faults`` appear only when set, so static reliable
        rows keep their historical record shape byte for byte.
        """
        out = {
            "campaign": self.campaign,
            "generator": self.generator,
            "params": self.params_dict(),
            "k": self.k,
            "eps": self.eps,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "repetition": self.repetition,
        }
        if self.stream is not None:
            out["stream"] = self.stream
        if self.faults is not None:
            out["faults"] = self.faults
        return out


@dataclass
class RunTable:
    """An expanded campaign: ordered, de-duplicated run rows."""

    name: str
    rows: List[RunRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[RunRow]:
        return iter(self.rows)

    def row_ids(self) -> List[str]:
        """The run_id of every row, in table order."""
        return [r.run_id for r in self.rows]


def _expand_params(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Cross list-valued parameters: {"n": [64, 128], "p": 0.1} -> 2 dicts."""
    keys = sorted(params)
    pools = [
        params[key] if isinstance(params[key], (list, tuple)) else [params[key]]
        for key in keys
    ]
    for combo in itertools.product(*pools):
        yield dict(zip(keys, combo))


@dataclass
class CampaignSpec:
    """Declarative factor grid for a campaign.

    ``generators`` is a list of ``{"family": name, "params": {...}}``
    entries; list-valued params are crossed (so one entry can sweep n).
    The full grid is generators x ks x epsilons x algorithms x engines x
    streams x faults x repetitions.  ``engines`` selects the scheduler
    backend(s) (:data:`~repro.congest.engine.ENGINE_NAMES`); sweeping it
    turns any campaign into an engine benchmark/equivalence check.

    ``streams`` makes a campaign *temporal*: each non-``None`` entry is a
    scenario spec string (``"uniform-churn"``, ``"burst:steps=40"`` ...)
    replayed over the generated base graph, so churn models sweep exactly
    like static families.  ``faults`` entries are fault spec strings
    (``"drop:p=0.05"``, ``"targeted:u=0,v=1"``); faulted rows run on the
    reference engine.  ``None`` entries mean static/reliable.
    """

    name: str
    generators: List[Dict[str, Any]]
    ks: Sequence[int] = (5,)
    epsilons: Sequence[float] = (0.1,)
    algorithms: Sequence[str] = ("tester",)
    engines: Sequence[str] = ("reference",)
    streams: Sequence[Optional[str]] = (None,)
    faults: Sequence[Optional[str]] = (None,)
    repetitions: int = 1
    seed: int = 0

    def validate(self) -> None:
        """Raise ConfigurationError on any invalid factor value."""
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("campaign needs a non-empty name")
        if not isinstance(self.generators, (list, tuple)) or not self.generators:
            raise ConfigurationError("campaign needs at least one generator")
        for attr in ("ks", "epsilons", "algorithms"):
            value = getattr(self, attr)
            if not isinstance(value, (list, tuple)) or not value:
                raise ConfigurationError(f"campaign {attr} must be a non-empty list")
        for entry in self.generators:
            if not isinstance(entry, dict) or "family" not in entry:
                raise ConfigurationError(
                    "each generator entry must be an object with a 'family'"
                )
            if not isinstance(entry.get("params", {}), dict):
                raise ConfigurationError(
                    f"generator {entry['family']!r}: params must be an object"
                )
            registry.get(entry["family"])  # raises on unknown family
        for k in self.ks:
            if k < 3:
                raise ConfigurationError(f"k must be >= 3, got {k}")
        for eps in self.epsilons:
            if not 0.0 < eps < 1.0:
                raise ConfigurationError(f"eps must be in (0,1), got {eps}")
        for algo in self.algorithms:
            if algo not in ALGORITHM_NAMES:
                raise ConfigurationError(
                    f"unknown algorithm {algo!r}; choose from "
                    f"{', '.join(ALGORITHM_NAMES)}"
                )
        if not isinstance(self.engines, (list, tuple)) or not self.engines:
            raise ConfigurationError("campaign engines must be a non-empty list")
        for eng in self.engines:
            # Accepts spec strings too ("sharded:4"); raises a clear
            # ConfigurationError for unknown names or bad shard counts.
            parse_engine_spec(eng)
        for attr in ("streams", "faults"):
            value = getattr(self, attr)
            if not isinstance(value, (list, tuple)) or not value:
                raise ConfigurationError(
                    f"campaign {attr} must be a non-empty list "
                    f"(use [null] for none)"
                )
        for strm in self.streams:
            if strm is not None:
                # Validates the scenario name and every parameter key.
                from ..dynamic.streams import parse_stream_spec

                parse_stream_spec(strm)
        for flt in self.faults:
            if flt is not None:
                from ..congest.faults import parse_fault_spec

                parse_fault_spec(flt)
        if "monitor" in self.algorithms and all(
            strm is None for strm in self.streams
        ):
            raise ConfigurationError(
                "the 'monitor' algorithm is temporal: give the campaign a "
                "streams factor (e.g. streams=['uniform-churn'])"
            )
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")

    # ------------------------------------------------------------------
    def expand(self) -> RunTable:
        """Expand the grid into a RunTable with ids and per-run seeds."""
        self.validate()
        table = RunTable(self.name)
        seen = set()
        for entry in self.generators:
            family = entry["family"]
            for params in _expand_params(entry.get("params", {})):
                for k, eps, algo, eng, strm, flt, rep in itertools.product(
                    self.ks, self.epsilons, self.algorithms, self.engines,
                    self.streams, self.faults, range(self.repetitions),
                ):
                    if flt == "none":
                        # parse_fault_spec accepts the spelling 'none';
                        # normalise it so both spellings share one row
                        # identity (and no engine pinning happens).
                        flt = None
                    if algo == "monitor" and strm is None:
                        continue  # the monitor only exists on streams
                    if algo not in STREAM_ALGORITHMS:
                        # Stream-blind variant: collapse the stream axis
                        # (the run_id dedup below drops the twins).
                        strm = None
                    if algo not in FAULT_AWARE_ALGORITHMS:
                        flt = None  # baselines audit reliable links only
                    if algo not in ENGINE_AWARE_ALGORITHMS or flt is not None:
                        # Engine-independent baseline — or a faulted row:
                        # fault injection lives in the reference
                        # scheduler, so the engine axis collapses too.
                        eng = "reference"
                    factors = {
                        "campaign": self.name,
                        "generator": family,
                        "params": params,
                        "k": k,
                        "eps": eps,
                        "algorithm": algo,
                        "repetition": rep,
                    }
                    # Temporal/fault coordinates join the identity hash
                    # only when set: static reliable rows keep their
                    # historical ids, so old stores stay resumable.
                    if strm is not None:
                        factors["stream"] = strm
                    if flt is not None:
                        factors["faults"] = flt
                    # The master seed is part of a row's identity: the
                    # same grid under a new seed is a *new* set of rows,
                    # so resume never serves stale-seed results.  The
                    # engine is deliberately left out of this base hash:
                    # per-run seeds derive from it, so rows that differ
                    # only in engine draw the *same* instance and the
                    # same protocol randomness — an engine sweep is an
                    # apples-to-apples comparison (and, because engines
                    # are verdict-equivalent, an end-to-end equivalence
                    # check).  It also keeps every pre-engine campaign
                    # store resumable with unchanged ids and seeds.
                    base_id = hashlib.sha256(
                        canonical_json({**factors, "seed": self.seed}).encode()
                    ).hexdigest()[:16]
                    run_id = base_id if eng == "reference" else (
                        hashlib.sha256(
                            canonical_json(
                                {**factors, "engine": eng, "seed": self.seed}
                            ).encode()
                        ).hexdigest()[:16]
                    )
                    if run_id in seen:
                        continue  # identical factor combination listed twice
                    seen.add(run_id)
                    # Temporal rows derive their seed from an
                    # *algorithm-independent* hash (same trick as the
                    # engine axis above): the monitor row and its naive
                    # 'tester' twin then build the identical base graph,
                    # the identical mutation stream and the identical
                    # per-step seed schedule — so any temporal campaign
                    # doubles as an incremental-vs-naive equivalence
                    # comparison.  Static rows keep the historical
                    # per-algorithm seeds byte for byte.
                    seed_basis = base_id
                    if strm is not None:
                        seed_factors = {
                            key: value for key, value in factors.items()
                            if key != "algorithm"
                        }
                        seed_basis = hashlib.sha256(
                            canonical_json(
                                {**seed_factors, "seed": self.seed}
                            ).encode()
                        ).hexdigest()[:16]
                    table.rows.append(
                        RunRow(
                            run_id=run_id,
                            campaign=self.name,
                            generator=family,
                            params=tuple(sorted(params.items())),
                            k=k,
                            eps=eps,
                            algorithm=algo,
                            repetition=rep,
                            seed=derive_seed(self.seed, seed_basis),
                            engine=eng,
                            stream=strm,
                            faults=flt,
                        )
                    )
        return table

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the spec (stable key order) for on-disk reuse."""
        return json.dumps(
            {
                "name": self.name,
                "generators": self.generators,
                "ks": list(self.ks),
                "epsilons": list(self.epsilons),
                "algorithms": list(self.algorithms),
                "engines": list(self.engines),
                "streams": list(self.streams),
                "faults": list(self.faults),
                "repetitions": self.repetitions,
                "seed": self.seed,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse and validate a spec written by :meth:`to_json`."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigurationError("campaign spec must be a JSON object")
        try:
            spec = cls(
                name=data["name"],
                generators=data["generators"],
                ks=data.get("ks", [5]),
                epsilons=data.get("epsilons", [0.1]),
                algorithms=data.get("algorithms", ["tester"]),
                engines=data.get("engines", ["reference"]),
                streams=data.get("streams", [None]),
                faults=data.get("faults", [None]),
                repetitions=data.get("repetitions", 1),
                seed=data.get("seed", 0),
            )
        except KeyError as exc:
            raise ConfigurationError(f"campaign spec missing field {exc}") from None
        spec.validate()
        return spec

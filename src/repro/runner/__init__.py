"""Campaign runner: declarative run tables, parallel execution, resume.

The substrate for systematic experiment campaigns over the reproduction:

* :mod:`repro.runner.registry` — named generator registry (every instance
  family, old and new, under a stable CLI name);
* :mod:`repro.runner.runtable` — declarative factor grids expanded into
  run rows with content-hash ids and deterministic per-run seeds;
* :mod:`repro.runner.executor` — serial or process-parallel execution
  with identical (byte-for-byte) results either way;
* :mod:`repro.runner.store` — append-only JSONL persistence keyed by
  run id, giving crash-safe resume for free;
* :mod:`repro.runner.aggregate` — roll-up into the shared analysis
  tables with Wilson intervals.

Factor grids cross generators × n × k × ε × algorithm × engine ×
repetitions; the ``engines`` factor selects the scheduler backend
(:mod:`repro.congest.engine`) and derives per-run seeds
engine-independently, so an engine sweep compares backends on identical
instances (and doubles as an end-to-end equivalence check).

Results persist as append-only JSONL (see ``docs/architecture.md`` for
the record schema): one canonical-JSON object per line carrying the
factor coordinates, ``run_id``, derived ``seed``, instance ``n``/``m``,
an algorithm-specific ``outcome`` object, and ``status`` (``"ok"`` or
``"error"`` with the message).

Quickstart::

    from repro.runner import CampaignSpec, CampaignStore, run_campaign

    spec = CampaignSpec(
        name="demo",
        generators=[{"family": "gnp", "params": {"n": [32, 64], "p": 0.08}}],
        ks=[4, 5], algorithms=["tester", "detect"], repetitions=3,
    )
    report = run_campaign(spec.expand(), CampaignStore("demo.jsonl"), workers=4)
"""

from . import registry
from .aggregate import CampaignSummary, aggregate_records, summarize_store
from .executor import (
    ExecutionReport,
    execute_row,
    ordered_parallel_map,
    run_campaign,
)
from .runtable import (
    ALGORITHM_NAMES,
    ENGINE_NAMES,
    CampaignSpec,
    RunRow,
    RunTable,
    canonical_json,
    derive_seed,
)
from .store import CampaignStore

__all__ = [
    "ALGORITHM_NAMES",
    "ENGINE_NAMES",
    "CampaignSpec",
    "CampaignStore",
    "CampaignSummary",
    "ExecutionReport",
    "RunRow",
    "RunTable",
    "aggregate_records",
    "canonical_json",
    "derive_seed",
    "execute_row",
    "ordered_parallel_map",
    "registry",
    "run_campaign",
    "summarize_store",
]

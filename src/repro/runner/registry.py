"""Named registry of graph generators.

Every instance family the reproduction knows how to build is registered
here under a stable CLI-friendly name with a declared parameter list, so
run tables (:mod:`repro.runner.runtable`), the ``--generator`` flag of the
CLI and the examples all dispatch through one table instead of hand-rolled
``if``-chains.

Parameters come from a shared vocabulary (``n``, ``p``, ``k`` ...); see
:data:`PARAMETERS` for the full list with types and defaults.  A spec only
receives the parameters it declares — extra keys in a run-table row or an
argparse namespace are ignored, missing ones fall back to the vocabulary
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..graphs import generators
from ..graphs.behrend import behrend_cycle_graph
from ..graphs.graph import Graph

__all__ = [
    "GeneratorSpec",
    "PARAMETERS",
    "Parameter",
    "build_graph",
    "build_graph_with_info",
    "get",
    "names",
    "register",
]


@dataclass(frozen=True)
class Parameter:
    """One entry of the shared generator-parameter vocabulary."""

    name: str
    type: Callable[[str], Any]
    default: Any
    help: str


#: Shared vocabulary: every registered family draws its parameters from
#: this table, which is also what the CLI turns into ``--<name>`` options.
PARAMETERS: Dict[str, Parameter] = {
    p.name: p
    for p in [
        Parameter("n", int, 100, "number of vertices"),
        Parameter("m", int, 200, "number of edges (gnm) / Behrend part size"),
        Parameter("p", float, 0.05, "edge/noise probability"),
        Parameter("k", int, 5, "cycle length parameter of the family"),
        Parameter("eps", float, 0.1, "farness parameter of the family"),
        Parameter("d", int, 4, "degree (regular / small-world ring)"),
        Parameter("paths", int, 4, "number of paths/petals (theta, flower)"),
        Parameter("path_length", int, 3, "path length in edges (theta)"),
        Parameter("rows", int, 4, "grid/torus rows"),
        Parameter("cols", int, 4, "grid/torus columns"),
        Parameter("dim", int, 4, "hypercube dimension"),
        Parameter("height", int, 4, "binary-tree height"),
        Parameter("width", int, 4, "blowup layer width"),
        Parameter("cycles", int, 3, "number of planted cycles"),
        Parameter("attach", int, 3, "attachment edges per vertex (BA)"),
        Parameter("beta", float, 0.1, "rewiring probability (WS)"),
        Parameter("exponent", float, 2.5, "degree-distribution exponent"),
    ]
}


@dataclass(frozen=True)
class GeneratorSpec:
    """A named graph family: factory plus declared parameters.

    ``factory`` receives the declared parameters as keywords (plus
    ``seed=`` when ``seeded``) and returns either a :class:`Graph` or a
    ``(Graph, extra)`` tuple; the extra value is exposed through
    :meth:`build_with_info` under ``info_key``.
    """

    name: str
    factory: Callable[..., Any]
    params: Tuple[str, ...] = ()
    seeded: bool = False
    info_key: Optional[str] = None
    description: str = ""

    def resolve_params(self, supplied: Dict[str, Any]) -> Dict[str, Any]:
        """Declared parameters only, defaulted from the vocabulary."""
        out: Dict[str, Any] = {}
        for name in self.params:
            value = supplied.get(name)
            out[name] = PARAMETERS[name].default if value is None else value
        return out

    def build_with_info(
        self, *, seed=None, **supplied: Any
    ) -> Tuple[Graph, Dict[str, Any]]:
        """Build an instance plus its certificate/info dict (may be empty)."""
        kwargs = self.resolve_params(supplied)
        if self.seeded:
            kwargs["seed"] = seed
        result = self.factory(**kwargs)
        if self.info_key is not None:
            graph, extra = result
            return graph, {self.info_key: extra}
        return result, {}

    def build(self, *, seed=None, **supplied: Any) -> Graph:
        """Build an instance (certificates dropped)."""
        return self.build_with_info(seed=seed, **supplied)[0]


_REGISTRY: Dict[str, GeneratorSpec] = {}


def register(spec: GeneratorSpec) -> GeneratorSpec:
    """Add a family to the registry (name must be new)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"generator {spec.name!r} already registered")
    for p in spec.params:
        if p not in PARAMETERS:
            raise ConfigurationError(
                f"generator {spec.name!r} declares unknown parameter {p!r}"
            )
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> GeneratorSpec:
    """Look up a family by name; raises ConfigurationError when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown generator {name!r}; known: {', '.join(names())}"
        ) from None


def names() -> List[str]:
    """All registered family names, sorted."""
    return sorted(_REGISTRY)


def build_graph(name: str, *, seed=None, **params: Any) -> Graph:
    """Build a graph of the named family (certificates dropped)."""
    return get(name).build(seed=seed, **params)


def build_graph_with_info(
    name: str, *, seed=None, **params: Any
) -> Tuple[Graph, Dict[str, Any]]:
    """Build a graph plus the family's certificate/info dict (may be empty)."""
    return get(name).build_with_info(seed=seed, **params)


# ---------------------------------------------------------------------------
# Built-in families
# ---------------------------------------------------------------------------
def _star(n: int) -> Graph:
    return generators.star_graph(max(n - 1, 1))


def _theta(paths: int, path_length: int) -> Graph:
    return generators.theta_graph(paths, path_length)


def _flower(paths: int, k: int) -> Graph:
    return generators.flower_graph(paths, k)


def _disjoint_cycles(cycles: int, k: int) -> Graph:
    return generators.disjoint_cycles_graph(cycles, k)


def _planted_cycle(n: int, k: int, p: float, seed=None):
    return generators.planted_cycle_graph(n, k, seed=seed, extra_edge_prob=p)


def _high_girth(n: int, k: int, seed=None) -> Graph:
    return generators.high_girth_graph(n, girth_greater_than=k, seed=seed)


def _behrend(m: int, k: int):
    return behrend_cycle_graph(m, k)


for _spec in [
    GeneratorSpec("gnp", generators.erdos_renyi_gnp, ("n", "p"), seeded=True,
                  description="Erdos-Renyi G(n, p)"),
    GeneratorSpec("gnm", generators.erdos_renyi_gnm, ("n", "m"), seeded=True,
                  description="Erdos-Renyi G(n, m)"),
    GeneratorSpec("ba", generators.barabasi_albert_graph, ("n", "attach"),
                  seeded=True,
                  description="Barabasi-Albert preferential attachment"),
    GeneratorSpec("ws", generators.watts_strogatz_graph, ("n", "d", "beta"),
                  seeded=True, description="Watts-Strogatz small world"),
    GeneratorSpec("powerlaw", generators.powerlaw_configuration_graph,
                  ("n", "exponent"), seeded=True,
                  description="power-law erased configuration model"),
    GeneratorSpec("regular", generators.random_regular_graph, ("n", "d"),
                  seeded=True, description="random d-regular graph"),
    GeneratorSpec("tree", generators.random_tree, ("n",), seeded=True,
                  description="uniform random labelled tree"),
    GeneratorSpec("cycle", generators.cycle_graph, ("n",),
                  description="the n-cycle C_n"),
    GeneratorSpec("path", generators.path_graph, ("n",),
                  description="the n-vertex path"),
    GeneratorSpec("complete", generators.complete_graph, ("n",),
                  description="the complete graph K_n"),
    GeneratorSpec("star", _star, ("n",),
                  description="star on n vertices (centre + n-1 leaves)"),
    GeneratorSpec("grid", generators.grid_graph, ("rows", "cols"),
                  description="rows x cols grid"),
    GeneratorSpec("torus", generators.torus_graph, ("rows", "cols"),
                  description="rows x cols torus"),
    GeneratorSpec("hypercube", generators.hypercube_graph, ("dim",),
                  description="dim-dimensional hypercube"),
    GeneratorSpec("btree", generators.binary_tree_graph, ("height",),
                  description="complete binary tree"),
    GeneratorSpec("theta", _theta, ("paths", "path_length"),
                  description="generalised theta graph"),
    GeneratorSpec("flower", _flower, ("paths", "k"),
                  description="k-cycle petals sharing one edge"),
    GeneratorSpec("blowup", generators.blowup_graph, ("width", "k"),
                  description="layered Lemma-3 blowup instance"),
    GeneratorSpec("figure1", generators.figure1_graph, (),
                  description="the paper's Figure 1 graph"),
    GeneratorSpec("eps-far", generators.planted_epsilon_far_graph,
                  ("n", "k", "eps"), seeded=True,
                  info_key="certified_farness",
                  description="certified eps-far instance"),
    GeneratorSpec("ck-free", generators.ck_free_graph, ("n", "k"),
                  seeded=True, description="certified Ck-free instance"),
    GeneratorSpec("planted-cycle", _planted_cycle, ("n", "k", "p"),
                  seeded=True, info_key="cycle_vertices",
                  description="one planted k-cycle plus noise edges"),
    GeneratorSpec("disjoint-cycles", _disjoint_cycles, ("cycles", "k"),
                  description="chained vertex-disjoint k-cycles"),
    GeneratorSpec("high-girth", _high_girth, ("n", "k"), seeded=True,
                  description="random graph with girth > k"),
    GeneratorSpec("chorded", generators.chorded_cycle_graph, ("k",),
                  description="k-cycle with one chord"),
    GeneratorSpec("behrend", _behrend, ("m", "k"),
                  info_key="planted_cycles",
                  description="Behrend-style hard instance"),
]:
    register(_spec)

"""Naive append-and-forward — Algorithm 1 without the pruning rule.

Paper §3.2: *"This append-and-forward technique can be trivially extended
to detect Ck ... However, a node of high degree may have to forward very
many sequences during a round ... violating the bandwidth restriction of
the CONGEST model."*

This program forwards **every** received sequence (after the own-ID
filter), so its message sizes grow with the number of distinct paths from
the edge — exponentially on theta/Behrend instances.  It is complete and
sound (it is a superset of Algorithm 1's behaviour) and exists purely as
the congestion comparator for experiments F1/T2.

``max_sequences_cap`` bounds the blow-up so benchmarks terminate; when the
cap trips, the run records that the baseline exceeded it (which is the
measurement of interest) and truncates deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .._types import IdSequence
from ..congest.message import SequenceBundle
from ..congest.network import Network
from ..congest.node import Broadcast, NodeContext, NodeProgram, Outbox
from ..congest.scheduler import RunResult, SynchronousScheduler
from ..core.algorithm1 import (
    DetectionOutcome,
    find_detection_evidence,
    phase2_rounds,
)
from ..core.sequences import drop_containing, sort_sequences
from ..errors import ConfigurationError

__all__ = [
    "NaiveAppendForwardProgram",
    "naive_detect_cycle_through_edge",
    "NaiveDetectionResult",
]


class NaiveAppendForwardProgram(NodeProgram):
    """Unpruned Phase 2 for a fixed edge (baseline)."""

    def __init__(
        self,
        ctx: NodeContext,
        k: int,
        edge: Tuple[int, int],
        max_sequences_cap: Optional[int] = None,
    ) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        u, v = edge
        self._k = k
        self._edge = (u, v) if u < v else (v, u)
        self._cap = max_sequences_cap
        self._last_sent: List[IdSequence] = []
        self.cap_tripped = False

    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: the endpoints seed their singleton sequences."""
        if ctx.my_id in self._edge:
            seed = (ctx.my_id,)
            self._last_sent = [seed]
            return Broadcast(SequenceBundle(frozenset([seed])))
        return None

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Append-and-forward without pruning (the congesting baseline)."""
        received: List[IdSequence] = []
        for sender in sorted(inbox):
            received.extend(inbox[sender].sequences)
        kept = sort_sequences(drop_containing(received, ctx.my_id))
        if self._cap is not None and len(kept) > self._cap:
            self.cap_tripped = True
            kept = kept[: self._cap]
        send = [seq + (ctx.my_id,) for seq in kept]
        self._last_sent = send
        if not send:
            return None
        return Broadcast(SequenceBundle(frozenset(send)))

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> DetectionOutcome:
        """Apply the final cardinality rule to the unpruned families."""
        received: List[IdSequence] = []
        for sender in sorted(inbox):
            received.extend(inbox[sender].sequences)
        received = sort_sequences(received)
        cycle = find_detection_evidence(ctx.my_id, self._k, self._last_sent, received)
        return DetectionOutcome(rejects=cycle is not None, cycle=cycle)


@dataclass
class NaiveDetectionResult:
    """Outcome + congestion telemetry of the naive baseline."""

    detected: bool
    run: RunResult
    cap_tripped: bool

    @property
    def max_sequences_per_message(self) -> int:
        """Largest per-message sequence count observed."""
        return self.run.trace.max_sequences_per_message


def naive_detect_cycle_through_edge(
    graph,
    edge: Tuple[int, int],
    k: int,
    *,
    network: Optional[Network] = None,
    max_sequences_cap: Optional[int] = 100_000,
) -> NaiveDetectionResult:
    """Run the unpruned baseline for ``edge`` (vertex indices)."""
    net = network if network is not None else Network(graph)
    u, v = edge
    if not graph.has_edge(u, v):
        raise ConfigurationError(f"edge {edge} not in graph")
    edge_ids = net.edge_ids(u, v)
    programs: List[NaiveAppendForwardProgram] = []

    def factory(ctx: NodeContext) -> NaiveAppendForwardProgram:
        p = NaiveAppendForwardProgram(ctx, k, edge_ids, max_sequences_cap)
        programs.append(p)
        return p

    scheduler = SynchronousScheduler(net)
    result = scheduler.run(factory, num_rounds=phase2_rounds(k))
    detected = any(
        isinstance(o, DetectionOutcome) and o.rejects for o in result.outputs.values()
    )
    return NaiveDetectionResult(
        detected=detected,
        run=result,
        cap_tripped=any(p.cap_tripped for p in programs),
    )

"""Neighbourhood-gathering baseline — the approach the paper rules out.

§1.2: *"in the CONGEST model, even collecting the identities of the nodes
at distance 2 from a given node u might be impossible to achieve in o(n)
rounds ... u may have constant degree, with Ω(n) neighbors at distance
2."*

This program has every node collect its radius-``⌊k/2⌋`` ball (vertices
and edges) by flooding adjacency lists, then decide centrally whether a
k-cycle through the target edge is visible.  It is trivially correct but
its messages carry Θ(ball size) IDs — the audit shows them bursting the
CONGEST budget on exactly the instances the paper describes.  Used only
as the congestion comparator in experiment F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..congest.network import Network
from ..congest.node import Broadcast, NodeContext, NodeProgram, Outbox
from ..congest.scheduler import RunResult, SynchronousScheduler
from ..core.algorithm1 import phase2_rounds
from ..errors import ConfigurationError
from ..graphs.cycles import has_cycle_through_edge
from ..graphs.graph import Graph

__all__ = [
    "NeighborhoodGatherProgram",
    "gather_detect_cycle_through_edge",
    "GatherResult",
]

#: An adjacency fact: (node, neighbour) as IDs.
Fact = Tuple[int, int]


class NeighborhoodGatherProgram(NodeProgram):
    """Flood adjacency facts for ``⌊k/2⌋`` rounds, then decide locally."""

    def __init__(self, ctx: NodeContext, k: int, edge: Tuple[int, int]) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        u, v = edge
        self._k = k
        self._edge = (u, v) if u < v else (v, u)
        self._known: Set[Fact] = set()
        self._fresh: Set[Fact] = set()

    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: broadcast the local adjacency list."""
        mine = {(ctx.my_id, nb) for nb in ctx.neighbor_ids}
        self._known = set(mine)
        return Broadcast(frozenset(mine))

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Forward every newly learned adjacency list (flooding)."""
        incoming: Set[Fact] = set()
        for sender in sorted(inbox):
            incoming.update(inbox[sender])
        fresh = incoming - self._known
        self._known.update(fresh)
        if not fresh:
            return None
        return Broadcast(frozenset(fresh))

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> bool:
        """Decide from the gathered ball whether a k-cycle crosses the edge."""
        for sender in sorted(inbox):
            self._known.update(inbox[sender])
        u, v = self._edge
        if (u, v) not in self._known and (v, u) not in self._known:
            return False
        # Rebuild the local view and query the exact oracle on it.
        ids = sorted({x for f in self._known for x in f})
        index = {nid: i for i, nid in enumerate(ids)}
        local = Graph(len(ids))
        for a, b in self._known:
            if not local.has_edge(index[a], index[b]):
                local.add_edge(index[a], index[b])
        return has_cycle_through_edge(local, (index[u], index[v]), self._k)


@dataclass
class GatherResult:
    """Outcome of the gather baseline: verdict plus bandwidth maxima."""
    detected: bool
    run: RunResult

    @property
    def max_message_bits(self) -> int:
        """Largest single message observed, in bits."""
        return self.run.trace.max_message_bits


def gather_detect_cycle_through_edge(
    graph,
    edge: Tuple[int, int],
    k: int,
    *,
    network: Optional[Network] = None,
    strict_bandwidth: bool = False,
) -> GatherResult:
    """Run the gathering baseline; with ``strict_bandwidth=True`` it raises
    :class:`repro.errors.BandwidthExceededError` on congested instances —
    demonstrating precisely why this approach fails in CONGEST."""
    net = network if network is not None else Network(graph)
    u, v = edge
    if not graph.has_edge(u, v):
        raise ConfigurationError(f"edge {edge} not in graph")
    edge_ids = net.edge_ids(u, v)
    scheduler = SynchronousScheduler(net, strict_bandwidth=strict_bandwidth)
    result = scheduler.run(
        lambda ctx: NeighborhoodGatherProgram(ctx, k, edge_ids),
        num_rounds=phase2_rounds(k),
    )
    detected = any(bool(o) for o in result.outputs.values())
    return GatherResult(detected=detected, run=result)

"""Triangle-freeness tester in the spirit of Censor-Hillel et al. [7].

The paper's predecessor result: triangle-freeness is testable in O(1/ε²)
rounds.  The [7] sparse-model tester (as also summarised in [20]) works,
per repetition, as follows: every node picks a *random incident edge*
``{v, w}`` and a *random neighbour* ``u``, and asks ``u`` whether ``u`` is
adjacent to ``w`` — a 2-round exchange of O(log n) bits.  On a graph ε-far
from triangle-free, a constant fraction of such probes hits one of the
>= εm/3 edge-disjoint triangles, so Θ(1/ε²) repetitions reject w.h.p.;
on triangle-free graphs no probe can ever succeed (1-sided error).

We implement it as a faithful CONGEST program and use it as the published
point of comparison for ``k = 3`` (experiment T1's baseline column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..congest.network import Network
from ..congest.node import NodeContext, NodeProgram, Outbox
from ..congest.scheduler import SynchronousScheduler
from ..errors import ConfigurationError
from ..graphs.graph import Graph

__all__ = ["TriangleProbeProgram", "TriangleTesterCHFSV", "TriangleTesterResult"]


class TriangleProbeProgram(NodeProgram):
    """One probe repetition: propose (round 1), answer (round 2)."""

    def __init__(self, ctx: NodeContext, master_seed: int) -> None:
        self._rng = np.random.default_rng(
            np.random.SeedSequence((int(master_seed) & 0x7FFFFFFF, ctx.my_id))
        )
        self._found = False

    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: every node broadcasts its neighbour list."""
        if ctx.degree < 2:
            return None
        nbs = list(ctx.neighbor_ids)
        w = int(self._rng.choice(nbs))
        u = int(self._rng.choice(nbs))
        if u == w:
            return None
        # Ask u: "are you adjacent to w?" (one ID = O(log n) bits).
        return {u: w}

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        # Round 2: answer the queries received at round 1.
        """Close triangles from the received adjacency information."""
        answers: Dict[int, bool] = {}
        for asker, w in inbox.items():
            if isinstance(w, int) and w in ctx.neighbor_ids:
                answers[asker] = True
        return answers if answers else None

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> bool:
        """Report any witnessed triangle through the probed edge."""
        self._found = any(bool(ans) for ans in inbox.values())
        return self._found


@dataclass
class TriangleTesterResult:
    """Aggregate verdict of the CHFSV-style triangle tester."""
    accepted: bool
    repetitions_run: int
    repetitions_planned: int
    rounds_per_repetition: int = 2

    @property
    def total_rounds(self) -> int:
        """Communication rounds used across all repetitions."""
        return self.repetitions_run * self.rounds_per_repetition


class TriangleTesterCHFSV:
    """Repetition-driven triangle tester ([7]-style, O(1/ε²) rounds)."""

    def __init__(self, epsilon: float, repetitions: Optional[int] = None) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0,1), got {epsilon}")
        self.epsilon = epsilon
        # Θ(1/ε²) repetitions; constant chosen to mirror the e²·ln3 style
        # boosting used by the paper's own tester.
        self.repetitions = (
            repetitions
            if repetitions is not None
            else math.ceil((math.e ** 2 / (epsilon * epsilon)) * math.log(3.0))
        )

    def run(
        self, graph: Graph, *, seed=None, stop_on_reject: bool = True
    ) -> TriangleTesterResult:
        """Execute the triangle tester on ``graph`` and aggregate verdicts."""
        net = Network(graph)
        scheduler = SynchronousScheduler(net)
        ss = np.random.SeedSequence(seed)
        rep_seeds = ss.generate_state(self.repetitions)
        run_count = 0
        for i in range(self.repetitions):
            rep_seed = int(rep_seeds[i])
            result = scheduler.run(
                lambda ctx: TriangleProbeProgram(ctx, rep_seed), num_rounds=2
            )
            run_count = i + 1
            if any(bool(o) for o in result.outputs.values()):
                return TriangleTesterResult(
                    accepted=False,
                    repetitions_run=run_count,
                    repetitions_planned=self.repetitions,
                )
            if not stop_on_reject:
                continue
        return TriangleTesterResult(
            accepted=True,
            repetitions_run=run_count,
            repetitions_planned=self.repetitions,
        )

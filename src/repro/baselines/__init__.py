"""Baseline algorithms the reproduction compares against.

* :mod:`repro.baselines.naive` — append-and-forward without pruning (the
  strawman of §3.2; congestion comparator).
* :mod:`repro.baselines.gather` — radius-⌊k/2⌋ ball collection (ruled out
  in §1.2; bandwidth comparator).
* :mod:`repro.baselines.triangle` — the [7]-style O(1/ε²) triangle tester
  (published point of comparison for k = 3).
"""

from .gather import (
    GatherResult,
    NeighborhoodGatherProgram,
    gather_detect_cycle_through_edge,
)
from .naive import (
    NaiveAppendForwardProgram,
    NaiveDetectionResult,
    naive_detect_cycle_through_edge,
)
from .triangle import TriangleProbeProgram, TriangleTesterCHFSV, TriangleTesterResult

__all__ = [
    "GatherResult",
    "NaiveAppendForwardProgram",
    "NaiveDetectionResult",
    "NeighborhoodGatherProgram",
    "TriangleProbeProgram",
    "TriangleTesterCHFSV",
    "TriangleTesterResult",
    "gather_detect_cycle_through_edge",
    "naive_detect_cycle_through_edge",
]

"""Alon–Yuster–Zwick color coding for k-cycle detection.

The classical randomized sequential comparator: color vertices uniformly
with k colors; a fixed k-cycle becomes *colorful* (all colors distinct)
with probability ``k!/k^k >= e^-k``; colorful cycles are found by dynamic
programming over color subsets in ``O(2^k · m)`` per anchor vertex.
Repeating ``⌈e^k ln(1/δ)⌉`` times gives failure probability <= δ — a
1-sided-error structure directly comparable to the paper's tester.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..graphs.graph import Graph

__all__ = ["color_coding_has_k_cycle", "color_coding_find_k_cycle", "trials_needed"]


def trials_needed(k: int, delta: float = 1 / 3) -> int:
    """Trials for failure probability <= delta: ``⌈e^k ln(1/δ)⌉``."""
    if not 0 < delta < 1:
        raise ConfigurationError("delta must be in (0,1)")
    return math.ceil(math.exp(k) * math.log(1.0 / delta))


def _colorful_cycle_once(
    g: Graph, k: int, colors: np.ndarray
) -> Optional[Tuple[int, ...]]:
    """Find a colorful k-cycle under the given coloring, or None.

    DP anchored at each vertex ``a`` (restricted to a > all other cycle
    vertices is not valid for colorful DP, so we anchor at every vertex of
    the smallest color class to cut work): ``reach[(S, v)]`` = a witness
    colorful path from ``a`` to ``v`` using color set ``S``.
    """
    # Anchor on the least-frequent color class to reduce the outer loop.
    counts = np.bincount(colors, minlength=k)
    anchor_color = int(np.argmin(np.where(counts > 0, counts, np.iinfo(np.int64).max)))
    anchors = [v for v in g.vertices() if colors[v] == anchor_color]
    full_mask = (1 << k) - 1
    for a in anchors:
        a_bit = 1 << int(colors[a])
        # frontier: {(mask, v): path}
        frontier: Dict[Tuple[int, int], Tuple[int, ...]] = {(a_bit, a): (a,)}
        for _ in range(k - 1):
            nxt: Dict[Tuple[int, int], Tuple[int, ...]] = {}
            for (mask, v), path in frontier.items():
                for w in g.neighbors(v):
                    bit = 1 << int(colors[w])
                    if mask & bit:
                        continue
                    key = (mask | bit, w)
                    if key not in nxt:
                        nxt[key] = path + (w,)
            frontier = nxt
        for (mask, v), path in frontier.items():
            if mask == full_mask and g.has_edge(v, a):
                return path
    return None


def color_coding_find_k_cycle(
    g: Graph, k: int, *, seed=None, trials: Optional[int] = None
) -> Optional[Tuple[int, ...]]:
    """Randomized k-cycle search; returns a witness cycle or ``None``.

    ``None`` means "probably Ck-free": false negatives occur with
    probability <= 1/3 at the default trial count (1-sided error, like
    the paper's tester).
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    if g.n < k:
        return None
    rng = np.random.default_rng(seed)
    T = trials if trials is not None else trials_needed(k)
    for _ in range(T):
        colors = rng.integers(0, k, size=g.n)
        found = _colorful_cycle_once(g, k, colors)
        if found is not None:
            return found
    return None


def color_coding_has_k_cycle(
    g: Graph, k: int, *, seed=None, trials: Optional[int] = None
) -> bool:
    """Boolean wrapper around :func:`color_coding_find_k_cycle`."""
    return color_coding_find_k_cycle(g, k, seed=seed, trials=trials) is not None

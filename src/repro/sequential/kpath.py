"""Monien-style k-path detection via representative families.

The paper points out (§1.2) that its pruning is a distributed
implementation of the Erdős–Hajnal–Moon lemma, which is also the engine of
Monien's classical *sequential* parametrised algorithm for long paths
[26].  We implement that centralized twin here: it exercises the exact
same combinatorial machinery (:mod:`repro.combinatorics.representative`)
in its original habitat and serves as a fast exact comparator for the
distributed algorithm in experiment T6.

Algorithm: dynamic programming over path lengths.  ``F[v]`` holds a
``(k - ℓ)``-representative family of the vertex sets of ℓ-vertex simple
paths from the source to ``v``; extension by one edge plus greedy
re-representation keeps every family of size at most ``(k-ℓ+1)^ℓ`` —
constant for constant k — while the representation property guarantees
that *some* completable path always survives, mirroring Lemma 2.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .._types import Edge
from ..combinatorics.hitting import has_hitting_set
from ..errors import ConfigurationError
from ..graphs.graph import Graph

__all__ = ["k_path_from_source", "has_k_path", "PathFamily"]

#: A representative family member: (vertex set, one concrete path).
Entry = Tuple[FrozenSet[int], Tuple[int, ...]]


class PathFamily:
    """A representative family of source→v paths with witness paths.

    Wraps the greedy rule of
    :func:`repro.combinatorics.representative.greedy_representative_family`
    but keeps a concrete path per kept set so witnesses can be returned.
    """

    def __init__(self, q: int) -> None:
        self.q = q
        self.entries: List[Entry] = []

    def offer(self, vertex_set: FrozenSet[int], path: Tuple[int, ...]) -> bool:
        """Greedy keep/discard decision; returns True if kept."""
        residues = []
        for kept_set, _ in self.entries:
            r = kept_set - vertex_set
            if not r:
                return False
            residues.append(r)
        if has_hitting_set(residues, self.q):
            self.entries.append((vertex_set, path))
            return True
        return False

    def __len__(self) -> int:
        return len(self.entries)


def k_path_from_source(
    g: Graph,
    source: int,
    k: int,
    *,
    forbidden_edge: Optional[Edge] = None,
    targets: Optional[Sequence[int]] = None,
) -> Dict[int, Tuple[int, ...]]:
    """For every reachable vertex ``v``, a witness simple path on exactly
    ``k`` vertices from ``source`` to ``v`` — if one exists that the
    representative-family DP retains (which is guaranteed whenever any
    ``k``-vertex path from source to v exists *and* v is in ``targets`` or
    ``targets`` is None... more precisely the representation property
    guarantees completability, so existence at the final level is exact).

    Returns ``{v: path}`` for the final level ``ℓ = k``.

    Parameters
    ----------
    forbidden_edge:
        An edge the paths must not use (to search cycles through an edge).
    targets:
        If given, only these endpoints are reported (saves some work).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    fe = None
    if forbidden_edge is not None:
        a, b = forbidden_edge
        fe = (a, b) if a < b else (b, a)

    level: Dict[int, PathFamily] = {}
    fam = PathFamily(q=k - 1)
    fam.offer(frozenset([source]), (source,))
    level[source] = fam

    for ell in range(2, k + 1):
        q = k - ell
        nxt: Dict[int, PathFamily] = {}
        for x, family in level.items():
            for v in g.neighbors(x):
                if fe is not None and (min(x, v), max(x, v)) == fe:
                    continue
                for vertex_set, path in family.entries:
                    if v in vertex_set:
                        continue
                    bucket = nxt.get(v)
                    if bucket is None:
                        bucket = PathFamily(q)
                        nxt[v] = bucket
                    bucket.offer(vertex_set | {v}, path + (v,))
        level = nxt

    result: Dict[int, Tuple[int, ...]] = {}
    wanted = set(targets) if targets is not None else None
    for v, family in level.items():
        if wanted is not None and v not in wanted:
            continue
        if family.entries:
            result[v] = family.entries[0][1]
    return result


def has_k_path(g: Graph, k: int) -> bool:
    """Whether G contains a simple path on exactly ``k`` vertices.

    Runs the representative-family DP from every source (sufficient and
    simple; Monien's original uses the same per-source driver).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k == 1:
        return g.n > 0
    for s in g.vertices():
        if k_path_from_source(g, s, k):
            return True
    return False

"""Sequential k-cycle detection built on the representative-family DP.

A k-cycle through edge ``{u, v}`` is a k-vertex simple path from u to v
that avoids the edge itself (then the edge closes it).  Correctness of the
representative-family retention argument is the centralized mirror of the
paper's Lemma 2.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..graphs.graph import Graph
from .kpath import k_path_from_source

__all__ = [
    "monien_cycle_through_edge",
    "monien_has_cycle_through_edge",
    "monien_find_k_cycle",
    "monien_has_k_cycle",
]


def monien_cycle_through_edge(
    g: Graph, edge: Tuple[int, int], k: int
) -> Optional[Tuple[int, ...]]:
    """A witness k-cycle through ``edge`` (vertex tuple, closing edge
    implicit), or ``None``."""
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    u, v = edge
    if not g.has_edge(u, v):
        return None
    paths = k_path_from_source(g, u, k, forbidden_edge=(u, v), targets=[v])
    return paths.get(v)


def monien_has_cycle_through_edge(g: Graph, edge: Tuple[int, int], k: int) -> bool:
    """Whether a k-cycle passes through ``edge``."""
    return monien_cycle_through_edge(g, edge, k) is not None


def monien_find_k_cycle(g: Graph, k: int) -> Optional[Tuple[int, ...]]:
    """A witness k-cycle anywhere in G, or ``None``."""
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    for e in g.edges():
        cyc = monien_cycle_through_edge(g, e, k)
        if cyc is not None:
            return cyc
    return None


def monien_has_k_cycle(g: Graph, k: int) -> bool:
    """Whether G contains a k-cycle subgraph."""
    return monien_find_k_cycle(g, k) is not None

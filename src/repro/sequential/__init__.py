"""Centralized comparator algorithms.

* :mod:`repro.sequential.kpath` — Monien-style k-path DP over
  representative families (the sequential twin of the paper's pruning).
* :mod:`repro.sequential.kcycle` — k-cycle detection on top of it.
* :mod:`repro.sequential.color_coding` — Alon–Yuster–Zwick color coding.
"""

from .color_coding import (
    color_coding_find_k_cycle,
    color_coding_has_k_cycle,
    trials_needed,
)
from .kcycle import (
    monien_cycle_through_edge,
    monien_find_k_cycle,
    monien_has_cycle_through_edge,
    monien_has_k_cycle,
)
from .kpath import PathFamily, has_k_path, k_path_from_source

__all__ = [
    "PathFamily",
    "color_coding_find_k_cycle",
    "color_coding_has_k_cycle",
    "has_k_path",
    "k_path_from_source",
    "monien_cycle_through_edge",
    "monien_find_k_cycle",
    "monien_has_cycle_through_edge",
    "monien_has_k_cycle",
    "trials_needed",
]

"""CONGEST-model simulation substrate.

* :mod:`repro.congest.network` — topology + ID assignment.
* :mod:`repro.congest.scheduler` — lock-step synchronous rounds.
* :mod:`repro.congest.engine` — pluggable protocol backends
  (``reference`` per-node simulation, ``fast`` batched numpy).
* :mod:`repro.congest.node` — the node-program interface.
* :mod:`repro.congest.message` — bundles and the bit-exact size model.
* :mod:`repro.congest.instrumentation` — bandwidth audit.
* :mod:`repro.congest.ids` — identifier assignment strategies.
"""

from .faults import DropFaults, FaultModel, FaultyScheduler, TargetedFaults
from .ids import (
    IdAssigner,
    IdentityIds,
    RandomPermutationIds,
    ReverseIds,
    SpreadIds,
)
from .instrumentation import ExecutionTrace, Instrumentation, RoundStats
from .message import SequenceBundle, SizeModel, tag_order_key
from .network import Network
from .node import Broadcast, NodeContext, NodeProgram
from .primitives import (
    AggregateProgram,
    BfsTreeProgram,
    LeaderElectProgram,
    aggregate,
    build_bfs_tree,
    elect_leader,
)
from .scheduler import RunResult, SynchronousScheduler
from .timeline import render_comparison, render_trace

__all__ = [
    "AggregateProgram",
    "BfsTreeProgram",
    "Broadcast",
    "DropFaults",
    "ExecutionTrace",
    "FaultModel",
    "FaultyScheduler",
    "IdAssigner",
    "IdentityIds",
    "Instrumentation",
    "LeaderElectProgram",
    "Network",
    "NodeContext",
    "NodeProgram",
    "RandomPermutationIds",
    "ReverseIds",
    "RoundStats",
    "RunResult",
    "SequenceBundle",
    "SizeModel",
    "SpreadIds",
    "SynchronousScheduler",
    "TargetedFaults",
    "aggregate",
    "build_bfs_tree",
    "elect_leader",
    "render_comparison",
    "render_trace",
    "tag_order_key",
]

"""Classic CONGEST building blocks.

The cycle tester needs none of these (that is the paper's point — it is
*local*), but a usable CONGEST toolkit ships them, and the test-suite uses
them to validate the scheduler against textbook round complexities
(Peleg, *Distributed Computing: A Locality-Sensitive Approach*):

* :class:`LeaderElectProgram` — min-ID flooding; converges in eccentricity
  rounds, O(log n) bits per message.
* :class:`BfsTreeProgram` — BFS tree rooted at a given ID; parent pointers
  after depth rounds.
* :class:`AggregateProgram` — convergecast of an associative aggregate up
  a BFS tree (sum / max / count), pipelined with the tree construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from .network import Network
from .node import Broadcast, NodeContext, NodeProgram, Outbox
from .scheduler import RunResult, SynchronousScheduler

__all__ = [
    "LeaderElectProgram",
    "BfsTreeProgram",
    "AggregateProgram",
    "elect_leader",
    "build_bfs_tree",
    "aggregate",
]


class LeaderElectProgram(NodeProgram):
    """Min-ID flooding: every node ends up knowing the global minimum ID.

    One ID per message per round — the canonical O(D)-round, O(log n)-bit
    leader election in connected networks.
    """

    def __init__(self, ctx: NodeContext) -> None:
        self._best = ctx.my_id

    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: propose own ID."""
        return Broadcast(self._best)

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Flood the smallest ID seen so far."""
        improved = False
        for v in inbox.values():
            if isinstance(v, int) and v < self._best:
                self._best = v
                improved = True
        # Only re-broadcast improvements (quiescence once converged).
        return Broadcast(self._best) if improved else None

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> int:
        """Output the final leader candidate."""
        for v in inbox.values():
            if isinstance(v, int) and v < self._best:
                self._best = v
        return self._best


def elect_leader(
    network: Network, rounds: Optional[int] = None
) -> Tuple[int, RunResult]:
    """Run leader election; returns ``(leader_id, run)``.

    ``rounds`` defaults to n (a safe upper bound on the diameter).
    """
    r = rounds if rounds is not None else max(1, network.n)
    run = SynchronousScheduler(network).run(
        lambda ctx: LeaderElectProgram(ctx), num_rounds=r
    )
    leaders = set(run.outputs.values())
    if len(leaders) != 1:
        raise ConfigurationError(
            f"leader election did not converge in {r} rounds "
            f"(disconnected network?): {leaders}"
        )
    return leaders.pop(), run


@dataclass(frozen=True)
class BfsOutcome:
    """Per-node BFS result: distance from the root and parent ID."""

    distance: Optional[int]  # None if unreached
    parent: Optional[int]    # None for the root / unreached


class BfsTreeProgram(NodeProgram):
    """BFS tree construction from a designated root ID.

    Round t delivers the frontier at distance t-1; a node adopts the first
    (smallest-ID) announcer as its parent.  Messages carry one integer
    (the sender's distance), well within CONGEST.
    """

    def __init__(self, ctx: NodeContext, root_id: int) -> None:
        self._root = root_id
        self._dist: Optional[int] = 0 if ctx.my_id == root_id else None
        self._parent: Optional[int] = None

    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: the root announces distance 0."""
        if self._dist == 0:
            return Broadcast(0)
        return None

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Adopt the first announcing neighbour as parent and relay."""
        if self._dist is not None:
            return None  # already settled; BFS frontier has passed
        best_parent = None
        best_d = None
        for sender in sorted(inbox):
            d = inbox[sender]
            if isinstance(d, int):
                if best_d is None or d < best_d:
                    best_d = d
                    best_parent = sender
        if best_parent is None:
            return None
        self._dist = best_d + 1
        self._parent = best_parent
        return Broadcast(self._dist)

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> BfsOutcome:
        """Output (parent, distance) — the BFS tree edge."""
        if self._dist is None:
            # Last-chance adoption from the final frontier.
            for sender in sorted(inbox):
                d = inbox[sender]
                if isinstance(d, int):
                    self._dist = d + 1
                    self._parent = sender
                    break
        return BfsOutcome(distance=self._dist, parent=self._parent)


def build_bfs_tree(
    network: Network, root_vertex: int, rounds: Optional[int] = None
) -> Dict[int, BfsOutcome]:
    """BFS tree from a root vertex; returns vertex -> outcome."""
    root_id = network.node_id(root_vertex)
    r = rounds if rounds is not None else max(1, network.n)
    run = SynchronousScheduler(network).run(
        lambda ctx: BfsTreeProgram(ctx, root_id), num_rounds=r
    )
    return run.outputs


class AggregateProgram(NodeProgram):
    """Convergecast an associative, commutative aggregate to the root.

    Requires a precomputed BFS structure (parent/children known): each
    node waits for its children's partial aggregates, combines them with
    its own value and forwards one number to its parent.  Completes in
    depth-of-tree rounds; every message is a single value.
    """

    def __init__(
        self,
        ctx: NodeContext,
        parent_id: Optional[int],
        children_ids: Tuple[int, ...],
        value: Any,
        combine: Callable[[Any, Any], Any],
    ) -> None:
        self._parent = parent_id
        self._pending = set(children_ids)
        self._acc = value
        self._combine = combine
        self._sent = False

    def _maybe_send(self) -> Outbox:
        if self._pending or self._sent or self._parent is None:
            return None
        self._sent = True
        return {self._parent: self._acc}

    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: leaves push their values up the tree."""
        return self._maybe_send()

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Combine children's partial aggregates and push upward."""
        for sender, val in inbox.items():
            if sender in self._pending:
                self._pending.discard(sender)
                self._acc = self._combine(self._acc, val)
        return self._maybe_send()

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> Any:
        """The root outputs the aggregate; others output None."""
        for sender, val in inbox.items():
            if sender in self._pending:
                self._pending.discard(sender)
                self._acc = self._combine(self._acc, val)
        return self._acc if self._parent is None else None


def aggregate(
    network: Network,
    root_vertex: int,
    values: Dict[int, Any],
    combine: Callable[[Any, Any], Any],
    rounds: Optional[int] = None,
) -> Any:
    """Convergecast ``values`` (vertex -> value) to the root and return
    the combined aggregate (as computed *by the root node program*)."""
    bfs = build_bfs_tree(network, root_vertex)
    root_id = network.node_id(root_vertex)
    children: Dict[int, list] = {
        network.node_id(v): [] for v in network.graph.vertices()
    }
    for v, out in bfs.items():
        if out.parent is not None:
            children[out.parent].append(network.node_id(v))
    r = rounds if rounds is not None else max(1, network.n)

    def factory(ctx: NodeContext) -> AggregateProgram:
        v = network.vertex_of(ctx.my_id)
        parent = bfs[v].parent if ctx.my_id != root_id else None
        return AggregateProgram(
            ctx,
            parent_id=parent,
            children_ids=tuple(sorted(children[ctx.my_id])),
            value=values[v],
            combine=combine,
        )

    run = SynchronousScheduler(network).run(factory, num_rounds=r)
    return run.outputs[root_vertex]

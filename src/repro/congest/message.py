"""Message containers and the bit-exact size model.

The CONGEST model allows ``O(log n)`` bits per edge per round.  To audit
compliance we charge every message an explicit bit cost:

* a node ID costs ``id_bits`` (``ceil(log2(id_space))``; the paper draws
  IDs from a range polynomial in n, so ``id_bits = Θ(log n)``);
* an edge rank costs ``rank_bits`` (``ceil(log2(m^2))``, §3.1);
* an ID-sequence of length t costs ``t * id_bits`` plus a small length
  header; a set of sequences costs the sum plus a count header.

Fake IDs (the negative sentinels of Algorithm 1, Instruction 14) are a
*local* device — they are never transmitted — so they never appear inside
messages and carry no cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from .._types import IdSequence

__all__ = ["SizeModel", "SequenceBundle", "tag_order_key"]

#: Bits reserved for small headers (sequence length / count fields).
_HEADER_BITS = 8


@dataclass(frozen=True)
class SizeModel:
    """Bit-cost parameters for the CONGEST audit.

    Parameters
    ----------
    id_bits:
        Cost of one node identifier.
    rank_bits:
        Cost of one Phase-1 rank value.
    budget_factor:
        The CONGEST budget is ``budget_factor * ceil(log2(n))`` bits per
        edge per round; used by the strict-mode audit.  For a fixed k the
        algorithm's messages are O_k(log n) bits, i.e. they fit in the
        budget for a k-dependent constant factor.
    """

    id_bits: int
    rank_bits: int = 0
    budget_factor: int = 64

    @staticmethod
    def for_network(n: int, m: int, id_space: Optional[int] = None) -> "SizeModel":
        """Size model for an n-node, m-edge network.

        ``id_space`` defaults to ``n**2`` ("range polynomial in n").
        """
        space = id_space if id_space is not None else max(2, n * n)
        id_bits = max(1, math.ceil(math.log2(space)))
        rank_bits = max(1, math.ceil(math.log2(max(2, m * m))))
        return SizeModel(id_bits=id_bits, rank_bits=rank_bits)

    def sequence_bits(self, seq: IdSequence) -> int:
        """Cost of one ID sequence."""
        return len(seq) * self.id_bits + _HEADER_BITS

    def bundle_bits(self, bundle: "SequenceBundle") -> int:
        """Cost of a full Phase-2 message."""
        total = _HEADER_BITS  # sequence count
        if bundle.rank is not None:
            total += self.rank_bits + 2 * self.id_bits  # edge tag (rank,u,v)
        for seq in bundle.sequences:
            total += self.sequence_bits(seq)
        return total

    def budget_bits(self, n: int) -> int:
        """Per-edge per-round CONGEST budget for an n-node network."""
        return self.budget_factor * max(1, math.ceil(math.log2(max(2, n))))


@dataclass(frozen=True)
class SequenceBundle:
    """A Phase-2 message: a set of ID-sequences tagged with its edge.

    ``edge`` is the (u_id, v_id) pair of the edge being checked (IDs, not
    vertex indices) and ``rank`` its Phase-1 rank; both are ``None`` for
    bare runs of Algorithm 1 on a fixed edge (no multiplexing).
    """

    sequences: FrozenSet[IdSequence]
    rank: Optional[int] = None
    edge: Optional[Tuple[int, int]] = None

    def __post_init__(self):
        for seq in self.sequences:
            if not isinstance(seq, tuple):
                raise TypeError(f"sequence must be a tuple, got {type(seq)}")

    @property
    def tag(self) -> Optional[Tuple[int, Tuple[int, int]]]:
        """Priority tag ``(rank, edge)`` or None for untagged bundles."""
        if self.rank is None:
            return None
        return (self.rank, self.edge)

    def is_empty(self) -> bool:
        """Whether the bundle carries no sequences."""
        return not self.sequences

    def __len__(self) -> int:
        return len(self.sequences)


def tag_order_key(tag: Tuple[int, Tuple[int, int]]):
    """Total order on execution tags: lower rank wins, ties broken by the
    (sorted) edge-ID pair, exactly as §3.1 suggests."""
    rank, edge = tag
    return (rank, edge)

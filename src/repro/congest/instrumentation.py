"""Execution instrumentation: per-round message and bandwidth statistics.

The audit is what turns the simulator into a *model checker* for the
CONGEST constraint: Lemma 3 promises at most ``(k-t+1)^(t-1)`` sequences
per message at round ``t``, hence O_k(log n) bits; the instrumentation
records the realised maxima so experiments T2/F1 can compare them against
the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import BandwidthExceededError
from .message import SequenceBundle, SizeModel

__all__ = [
    "RoundStats",
    "ExecutionTrace",
    "Instrumentation",
    "export_trace",
]


@dataclass
class RoundStats:
    """Aggregated statistics for one synchronous round."""

    round_index: int
    messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    max_sequences: int = 0
    #: (sender_id, receiver_id) realising max_message_bits.
    max_edge: Optional[Tuple[int, int]] = None

    def record(self, sender: int, receiver: int, bits: int, sequences: int) -> None:
        """Fold one delivered message into this round's aggregates."""
        self.messages += 1
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits
            self.max_edge = (sender, receiver)
        if sequences > self.max_sequences:
            self.max_sequences = sequences


@dataclass
class ExecutionTrace:
    """Full per-run record produced by the scheduler."""

    rounds: List[RoundStats] = field(default_factory=list)
    n: int = 0
    m: int = 0
    size_model: Optional[SizeModel] = None

    @property
    def num_rounds(self) -> int:
        """Number of communication rounds recorded."""
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        """Messages delivered across all rounds."""
        return sum(r.messages for r in self.rounds)

    @property
    def total_bits(self) -> int:
        """Total bits delivered across all rounds."""
        return sum(r.total_bits for r in self.rounds)

    @property
    def max_message_bits(self) -> int:
        """Largest single message of the run, in bits."""
        return max((r.max_message_bits for r in self.rounds), default=0)

    @property
    def max_sequences_per_message(self) -> int:
        """Largest per-message sequence count of the run."""
        return max((r.max_sequences for r in self.rounds), default=0)

    def max_sequences_by_round(self) -> List[int]:
        """Per-round maxima of sequences per message."""
        return [r.max_sequences for r in self.rounds]

    def summary(self) -> Dict[str, Any]:
        """The headline aggregates as a plain dict."""
        return {
            "rounds": self.num_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "max_sequences_per_message": self.max_sequences_per_message,
        }


class Instrumentation:
    """Observes every delivery; optionally enforces the bandwidth budget.

    Parameters
    ----------
    size_model:
        Bit-cost model; if ``None`` only message/sequence counts are kept.
    strict:
        When true, a message exceeding ``size_model.budget_bits(n)`` raises
        :class:`BandwidthExceededError` — used in tests to prove baselines
        *violate* CONGEST where Algorithm 1 does not (for fixed small k).
    """

    def __init__(
        self,
        size_model: Optional[SizeModel] = None,
        *,
        strict: bool = False,
        n: int = 0,
        m: int = 0,
    ) -> None:
        self.trace = ExecutionTrace(n=n, m=m, size_model=size_model)
        self._size_model = size_model
        self._strict = strict
        self._n = n
        self._current: Optional[RoundStats] = None

    def begin_round(self, round_index: int) -> None:
        """Open a fresh RoundStats for ``round_index``."""
        self._current = RoundStats(round_index=round_index)
        self.trace.rounds.append(self._current)

    def observe(self, sender: int, receiver: int, message: Any) -> None:
        """Audit one delivery; in strict mode, enforce the bit budget."""
        if self._current is None:
            raise RuntimeError("observe() outside of a round")
        bits = 0
        sequences = 0
        if isinstance(message, SequenceBundle):
            sequences = len(message)
            if self._size_model is not None:
                bits = self._size_model.bundle_bits(message)
        else:
            sequences = _nested_sequences(message)
            if self._size_model is not None:
                bits = _generic_bits(message, self._size_model)
        self._current.record(sender, receiver, bits, sequences)
        if (
            self._strict
            and self._size_model is not None
            and bits > self._size_model.budget_bits(self._n)
        ):
            raise BandwidthExceededError(
                self._current.round_index,
                (sender, receiver),
                bits,
                self._size_model.budget_bits(self._n),
            )


def export_trace(trace: ExecutionTrace, telemetry, *, engine: str) -> None:
    """Fold one run's aggregates into ``telemetry``'s metric registry.

    This is the single bridge between the per-run
    :class:`ExecutionTrace` audit and the process-wide
    :mod:`repro.obs` registry — engines call it once per completed run,
    so trace aggregates and exported metrics cannot drift apart.  A
    disabled telemetry returns immediately (the bit-identity guarantee:
    nothing here touches RNG state or protocol data).
    """
    if not getattr(telemetry, "enabled", False):
        return
    telemetry.counter(
        "repro_congest_runs_total",
        "Completed CONGEST protocol runs, by engine backend.",
        ("engine",),
    ).inc(engine=engine)
    telemetry.counter(
        "repro_congest_rounds_total",
        "Communication rounds executed, by engine backend.",
        ("engine",),
    ).inc(trace.num_rounds, engine=engine)
    telemetry.counter(
        "repro_congest_messages_total",
        "Messages delivered, by engine backend.",
        ("engine",),
    ).inc(trace.total_messages, engine=engine)
    telemetry.counter(
        "repro_congest_bits_total",
        "Audited message bits delivered, by engine backend.",
        ("engine",),
    ).inc(trace.total_bits, engine=engine)
    telemetry.gauge(
        "repro_congest_max_message_bits",
        "Largest single audited message seen, in bits.",
        ("engine",),
    ).set_max(trace.max_message_bits, engine=engine)
    telemetry.gauge(
        "repro_congest_max_sequences_per_message",
        "Largest per-message sequence count seen (Lemma 3 audit).",
        ("engine",),
    ).set_max(trace.max_sequences_per_message, engine=engine)


def __getattr__(name: str) -> Any:
    # Historical alias for ExecutionTrace, kept one deprecation cycle;
    # the obs registry (export_trace) is now the aggregate source of
    # truth and new code should not grow parallel counter structs.
    if name == "TraceAggregates":
        import warnings

        warnings.warn(
            "TraceAggregates is deprecated; use ExecutionTrace and "
            "repro.obs (export_trace) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return ExecutionTrace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _nested_sequences(message: Any) -> int:
    """Total sequence count inside nested payloads (batched/multi-k
    messages wrap one bundle per sub-protocol in a dict)."""
    if isinstance(message, SequenceBundle):
        return len(message)
    if isinstance(message, dict):
        return sum(_nested_sequences(v) for v in message.values())
    if isinstance(message, (tuple, list)):
        return sum(_nested_sequences(v) for v in message)
    return 0


def _generic_bits(message: Any, model: SizeModel) -> int:
    """Bit cost for non-bundle payloads (ranks, raw ID containers, and
    nested bundles as produced by the batched-repetition extension)."""
    if message is None:
        return 0
    if isinstance(message, SequenceBundle):
        return model.bundle_bits(message)
    if isinstance(message, bool):
        return 1
    if isinstance(message, int):
        return model.rank_bits if abs(message) >= 0 else model.id_bits
    if isinstance(message, (tuple, list, set, frozenset)):
        return sum(_generic_bits(x, model) for x in message) + 8
    if isinstance(message, dict):
        return sum(
            _generic_bits(k, model) + _generic_bits(v, model)
            for k, v in message.items()
        ) + 8
    # Fallback: charge one ID.
    return model.id_bits

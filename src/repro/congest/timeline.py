"""Human-readable rendering of execution traces.

Turns an :class:`~repro.congest.instrumentation.ExecutionTrace` into an
aligned per-round table — used by the CLI (``detect --timeline``), the
examples, and anyone debugging a node program.
"""

from __future__ import annotations

from typing import List, Optional

from .instrumentation import ExecutionTrace

__all__ = ["render_trace", "render_comparison"]


def render_trace(trace: ExecutionTrace, title: str = "execution timeline") -> str:
    """One line per round: messages, bits, maxima."""
    lines: List[str] = [title]
    header = (
        f"{'round':>5}  {'msgs':>6}  {'total bits':>10}  "
        f"{'max bits/msg':>12}  {'max seqs/msg':>12}  {'busiest edge':>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in trace.rounds:
        edge = "-" if r.max_edge is None else f"{r.max_edge[0]}->{r.max_edge[1]}"
        lines.append(
            f"{r.round_index:>5}  {r.messages:>6}  {r.total_bits:>10}  "
            f"{r.max_message_bits:>12}  {r.max_sequences:>12}  {edge:>14}"
        )
    lines.append(
        f"total: {trace.total_messages} messages, {trace.total_bits} bits, "
        f"peak {trace.max_message_bits} bits/msg"
    )
    return "\n".join(lines)


def render_comparison(
    traces: List[ExecutionTrace],
    labels: Optional[List[str]] = None,
    title: str = "trace comparison",
) -> str:
    """Side-by-side peak statistics for several traces."""
    if labels is None:
        labels = [f"run {i}" for i in range(len(traces))]
    if len(labels) != len(traces):
        raise ValueError("labels and traces must have equal length")
    width = max((len(x) for x in labels), default=5)
    lines = [title]
    header = (
        f"{'label':>{width}}  {'rounds':>6}  {'msgs':>8}  "
        f"{'bits':>10}  {'peak bits':>9}  {'peak seqs':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, t in zip(labels, traces):
        lines.append(
            f"{label:>{width}}  {t.num_rounds:>6}  {t.total_messages:>8}  "
            f"{t.total_bits:>10}  {t.max_message_bits:>9}  "
            f"{t.max_sequences_per_message:>9}"
        )
    return "\n".join(lines)

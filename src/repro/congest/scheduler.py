"""Lock-step synchronous scheduler — the heart of the CONGEST simulation.

Semantics (paper §2.1): computation proceeds in rounds; in every round each
node (a) computes, (b) sends at most one message per incident edge, and
(c) receives the messages its neighbours sent *this* round.  We realise
this with a two-phase loop: collect all outboxes first, then deliver, so
no node can observe a same-round message early.

Round indexing follows Algorithm 1's convention: ``on_start`` produces the
round-1 sends; ``on_round(r, inbox)`` (r >= 2) sees messages sent at round
``r-1``; after the final round, ``on_finish`` sees the last sends.
Total communication rounds = ``num_rounds``.

This scheduler is also the ``reference`` backend of the pluggable engine
layer (:mod:`repro.congest.engine`): protocol-level entry points
(tester, Algorithm 1) go through an engine so the batched ``fast``
backend can be swapped in, while arbitrary node programs (primitives,
extensions, faults) keep using this class directly.  The round-semantics
contract above is restated in prose in ``docs/architecture.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import ProtocolError
from .instrumentation import ExecutionTrace, Instrumentation
from .message import SizeModel
from .network import Network
from .node import Broadcast, NodeContext, NodeProgram

__all__ = ["SynchronousScheduler", "RunResult"]


class RunResult:
    """Outputs and trace of one scheduled run."""

    __slots__ = ("outputs", "trace")

    def __init__(self, outputs: Dict[int, Any], trace: ExecutionTrace):
        #: vertex index -> whatever ``on_finish`` returned
        self.outputs = outputs
        self.trace = trace

    def outputs_by_id(self, network: Network) -> Dict[int, Any]:
        """Outputs re-keyed by CONGEST ID."""
        return {network.node_id(v): out for v, out in self.outputs.items()}


class SynchronousScheduler:
    """Runs a family of node programs in lock-step on a network.

    Parameters
    ----------
    network:
        The CONGEST network.
    size_model:
        Bit model for the audit; defaults to the network's own.
    strict_bandwidth:
        Raise if any single message exceeds the CONGEST budget.
    """

    def __init__(
        self,
        network: Network,
        *,
        size_model: Optional[SizeModel] = None,
        strict_bandwidth: bool = False,
    ) -> None:
        self._net = network
        self._size_model = (
            size_model if size_model is not None else network.default_size_model()
        )
        self._strict = strict_bandwidth

    def run(
        self,
        make_program: Callable[[NodeContext], NodeProgram],
        num_rounds: int,
    ) -> RunResult:
        """Instantiate one program per node and execute ``num_rounds``.

        ``num_rounds`` counts communication rounds; ``num_rounds >= 1``.
        """
        if num_rounds < 1:
            raise ProtocolError(f"num_rounds must be >= 1, got {num_rounds}")
        net = self._net
        g = net.graph
        programs: List[NodeProgram] = [
            make_program(net.context(v)) for v in g.vertices()
        ]
        instr = Instrumentation(
            self._size_model, strict=self._strict, n=net.n, m=net.m
        )

        # inboxes[v]: sender_id -> message, for the *current* round.
        inboxes: List[Dict[int, Any]] = [dict() for _ in g.vertices()]

        for round_index in range(1, num_rounds + 1):
            instr.begin_round(round_index)
            outboxes: List[Optional[Any]] = [None] * g.n
            for v in g.vertices():
                ctx = net.context(v)
                if round_index == 1:
                    outboxes[v] = programs[v].on_start(ctx)
                else:
                    outboxes[v] = programs[v].on_round(ctx, round_index, inboxes[v])
            inboxes = self._deliver(outboxes, instr, round_index)

        outputs: Dict[int, Any] = {}
        for v in g.vertices():
            outputs[v] = programs[v].on_finish(net.context(v), inboxes[v])
        return RunResult(outputs, instr.trace)

    # ------------------------------------------------------------------
    def _deliver(
        self,
        outboxes: List[Optional[Any]],
        instr: Instrumentation,
        round_index: int,
    ) -> List[Dict[int, Any]]:
        net = self._net
        g = net.graph
        fresh: List[Dict[int, Any]] = [dict() for _ in g.vertices()]
        for v in g.vertices():
            out = outboxes[v]
            if out is None:
                continue
            sender_id = net.node_id(v)
            if isinstance(out, Broadcast):
                msg = out.message
                if msg is None:
                    continue
                for w in g.neighbors(v):
                    instr.observe(sender_id, net.node_id(w), msg)
                    fresh[w][sender_id] = msg
            elif isinstance(out, Mapping):
                nb_ids = set(net.context(v).neighbor_ids)
                for target_id, msg in out.items():
                    if target_id not in nb_ids:
                        raise ProtocolError(
                            f"node {sender_id} tried to message non-neighbour "
                            f"{target_id} at round {round_index}"
                        )
                    if msg is None:
                        continue
                    w = net.vertex_of(target_id)
                    instr.observe(sender_id, target_id, msg)
                    fresh[w][sender_id] = msg
            else:
                raise ProtocolError(
                    f"outbox must be None, Broadcast or mapping, got "
                    f"{type(out).__name__}"
                )
        return fresh

"""The reference engine: the lock-step scheduler, unchanged.

This is the original per-node simulation promoted behind the engine
interface — :class:`~repro.congest.scheduler.SynchronousScheduler`
driving the existing node programs, with identical semantics, identical
per-message bit audit, and identical traces.  It exists so that every
other backend has an executable specification to be compared against.
"""

from __future__ import annotations

from typing import Tuple

from ..scheduler import RunResult, SynchronousScheduler
from .base import CongestEngine

__all__ = ["ReferenceEngine"]


class ReferenceEngine(CongestEngine):
    """Per-node message-passing execution (the executable specification).

    The only backend that simulates unreliable links: passing a
    ``faults`` model swaps the lock-step scheduler for the
    :class:`~repro.congest.faults.FaultyScheduler`.
    """

    name = "reference"

    def _scheduler(self) -> SynchronousScheduler:
        if self._faults is not None:
            from ..faults import FaultyScheduler

            return FaultyScheduler(
                self._net,
                self._faults,
                size_model=self._size_model,
                strict_bandwidth=self._strict,
            )
        return SynchronousScheduler(
            self._net,
            size_model=self._size_model,
            strict_bandwidth=self._strict,
        )

    def run_tester_repetition(
        self, k: int, rep_seed: int, *, pruner=None
    ) -> RunResult:
        """One tester repetition via the lock-step scheduler."""
        from ...core.phase1 import MultiplexedCkProgram, protocol_rounds

        self._check_k(k)
        # The scheduler is a black box here, so the profiler sees one
        # coarse phase; per-phase attribution is the fast backends' job.
        with self._profiler.phase("scheduler_run"):
            run = self._scheduler().run(
                lambda ctx: MultiplexedCkProgram(
                    ctx, k, rep_seed, pruner=pruner
                ),
                num_rounds=protocol_rounds(k),
            )
        return self._finish(run)

    def run_detect(
        self, k: int, edge_ids: Tuple[int, int], *, pruner=None
    ) -> RunResult:
        """Algorithm 1 for one edge via the lock-step scheduler."""
        from ...core.algorithm1 import DetectCkProgram, phase2_rounds

        self._check_k(k)
        with self._profiler.phase("scheduler_run"):
            run = self._scheduler().run(
                lambda ctx: DetectCkProgram(ctx, k, edge_ids, pruner=pruner),
                num_rounds=phase2_rounds(k),
            )
        return self._finish(run)

"""The fast engine: batched numpy execution of the paper's protocols.

Instead of instantiating one Python program object per node and routing
dict-of-dict inboxes message by message, this backend compiles the
network once into CSR-style adjacency arrays and advances *all* nodes
per round with vectorized array operations:

* **Phase-1 rank draws** are replicated bit-exactly through
  :mod:`repro.congest.engine.fastrng` (vectorized SeedSequence → PCG64 →
  Lemire pipeline), so the fast engine consumes the exact random stream
  the reference engine's per-node Generators would.
* **Minimum-rank selection and the §3.1 priority rule** are
  struct-of-arrays operations: each node's current execution tag is a
  ``(rank, edge_u, edge_v)`` triple held in three int64 arrays, and the
  per-round multiplexing (take the lexicographically smallest tag among
  your own and your sending neighbours') is one ``np.lexsort`` over the
  half-edge arrays.
* **Sequence processing** (Instructions 10–27 and the final decision)
  runs through the *same* pure functions as the reference engine —
  :func:`~repro.core.algorithm1.process_phase2_round` and
  :func:`~repro.core.algorithm1.find_detection_evidence` — but only for
  the nodes that actually received sequences under their winning tag,
  which is what makes the verdict equivalence structural rather than
  statistical.
* **The bit audit is aggregate instead of per-message**: a broadcast
  costs the same bits on every incident edge, so per-round totals,
  maxima and strict-mode budget violations are computed from per-sender
  counts.  ``strict_bandwidth`` raises the same
  :class:`~repro.errors.BandwidthExceededError` (round, edge, bits,
  budget) as the reference engine; only the partially-recorded trace on
  that error path may differ.

The trace's per-round ``messages``/``total_bits``/``max_message_bits``/
``max_sequences`` match the reference audit exactly (asserted in
``tests/test_engines.py``); verdict equivalence across the registry's
stress instances is asserted by ``repro.testing`` and the cross-engine
grid test.

Requirements: numpy, and node IDs below ``2**32`` (the standard
polynomial-in-n ID space up to n = 65535).  Networks outside that range
should use the reference engine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ...errors import BandwidthExceededError, CongestError, ConfigurationError
from ..instrumentation import ExecutionTrace, RoundStats
from ..message import SequenceBundle
from ..network import Network
from ..scheduler import RunResult
from .base import CongestEngine
from .fastrng import MAX_UINT32_ENTROPY, RankStreams

__all__ = ["FastEngine"]

#: Sentinel rank for "no tag"; real ranks are in [1, m**2].
_INF = np.int64(1) << np.int64(62)


class FastEngine(CongestEngine):
    """Batched CSR/numpy execution (same verdicts, array speed)."""

    name = "fast"

    def __init__(self, network: Network, **kwargs) -> None:
        super().__init__(network, **kwargs)
        if self._faults is not None:
            raise ConfigurationError(
                f"fault injection requires the reference engine (the "
                f"{self.name!r} backend batches deliveries and cannot drop "
                "them individually); run with engine='reference'"
            )
        g = network.graph
        ids = np.asarray(network.ids(), dtype=np.int64)
        if ids.size and int(ids.max()) >= MAX_UINT32_ENTROPY:
            raise CongestError(
                "fast engine requires node IDs < 2**32; "
                "use the reference engine for larger ID spaces"
            )
        self._ids = ids
        self._id_list: List[int] = ids.tolist()
        indptr, indices = g.to_csr()
        self._indptr = indptr
        self._indices = indices
        degrees = np.diff(indptr)
        self._degrees = degrees
        n = g.n
        self._all_v = np.arange(n, dtype=np.int64)
        # Half-edge arrays: one (src, dst) entry per directed adjacency.
        he_src = np.repeat(self._all_v, degrees)
        self._he_src = he_src
        self._he_dst = indices
        src_id = ids[he_src]
        dst_id = ids[indices]
        a = np.minimum(src_id, dst_id)
        b = np.maximum(src_id, dst_id)
        self._he_a = a
        self._he_b = b
        # Canonical edge index per half-edge (IDs fit 32 bits: pack exactly).
        packed = (a.astype(np.uint64) << np.uint64(32)) | b.astype(np.uint64)
        uniq, edge_of_he = np.unique(packed, return_inverse=True)
        if len(uniq) != g.m:  # pragma: no cover - Graph guarantees simple
            raise CongestError("inconsistent edge count in CSR compile")
        self._edge_of_he = edge_of_he
        # Owned half-edges (src ID < dst ID), in the reference draw order:
        # by owner vertex, then ascending neighbour ID.
        owned = np.nonzero(src_id < dst_id)[0]
        order = np.lexsort((dst_id[owned], he_src[owned]))
        self._owned_he = owned[order]
        owner_of_owned = he_src[self._owned_he]
        owners, counts = np.unique(owner_of_owned, return_counts=True)
        self._owners = owners
        self._owner_counts = counts
        # Slot offsets of each owner's first draw in self._owned_he order.
        self._owner_offsets = np.concatenate(
            ([0], np.cumsum(counts[:-1]))
        ) if len(counts) else np.zeros(0, dtype=np.int64)
        # Audit constants (computed through the public SizeModel API so the
        # aggregate audit charges exactly what per-message observe() would).
        model = self._size_model
        self._bits_rank_msg = model.rank_bits
        self._bits_tagged_overhead = model.bundle_bits(
            SequenceBundle(frozenset(), rank=1, edge=(0, 1))
        )
        self._bits_untagged_overhead = model.bundle_bits(SequenceBundle(frozenset()))
        self._seq_bits_cache: Dict[int, int] = {}
        self._budget = model.budget_bits(n)

    def _seq_bits(self, seq_len: int) -> int:
        """Bit cost of one length-``seq_len`` ID sequence."""
        bits = self._seq_bits_cache.get(seq_len)
        if bits is None:
            bits = self._size_model.sequence_bits((0,) * seq_len)
            self._seq_bits_cache[seq_len] = bits
        return bits

    @property
    def compiled_nbytes(self) -> int:
        """Bytes held by the compiled CSR/half-edge arrays (cache telemetry)."""
        return sum(
            arr.nbytes
            for arr in (
                self._ids, self._indptr, self._indices, self._degrees,
                self._all_v, self._he_src, self._he_dst, self._he_a,
                self._he_b, self._edge_of_he, self._owned_he, self._owners,
                self._owner_counts, self._owner_offsets,
            )
        )

    # ------------------------------------------------------------------
    # Audit helpers
    # ------------------------------------------------------------------
    def _begin_round(self, trace: ExecutionTrace, round_index: int) -> RoundStats:
        stats = RoundStats(round_index=round_index)
        trace.rounds.append(stats)
        return stats

    def _first_neighbor_id(self, v: int) -> int:
        """ID of the first receiver in reference delivery order (the
        smallest-index neighbour, as :meth:`Graph.neighbors` yields)."""
        return self._id_list[self._indices[self._indptr[v]]]

    def _record_broadcasts(
        self,
        stats: RoundStats,
        round_index: int,
        senders: np.ndarray,
        bits: np.ndarray,
        seqs: np.ndarray,
    ) -> None:
        """Aggregate-audit one round of broadcasts.

        ``senders`` must be ascending vertex indices (the reference
        scheduler's delivery order); a broadcast reaches every neighbour
        at the same cost, so the aggregates below reproduce exactly what
        per-message ``observe()`` calls would record — including which
        edge realises the maximum (first strictly-greater in delivery
        order == first occurrence of the argmax).
        """
        if not len(senders):
            return
        degs = self._degrees[senders]
        stats.messages += int(degs.sum())
        stats.total_bits += int((bits * degs).sum())
        imax = int(np.argmax(bits))
        v = int(senders[imax])
        stats.max_message_bits = int(bits[imax])
        stats.max_edge = (self._id_list[v], self._first_neighbor_id(v))
        stats.max_sequences = int(seqs.max())
        if self._strict:
            over = np.nonzero(bits > self._budget)[0]
            if len(over):
                w = int(senders[over[0]])
                raise BandwidthExceededError(
                    round_index,
                    (self._id_list[w], self._first_neighbor_id(w)),
                    int(bits[over[0]]),
                    self._budget,
                )

    def _bundle_bits(self, num_seqs: int, seq_len: int, *, tagged: bool) -> int:
        overhead = (
            self._bits_tagged_overhead if tagged else self._bits_untagged_overhead
        )
        return overhead + num_seqs * self._seq_bits(seq_len)

    # ------------------------------------------------------------------
    # Shared phase-2 machinery
    # ------------------------------------------------------------------
    def _mux(
        self,
        sending: np.ndarray,
        R: np.ndarray,
        A: np.ndarray,
        B: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized §3.1 priority rule for every node at once.

        Returns the per-node winning tag ``(bestR, bestA, bestB)`` — the
        lexicographic minimum of the node's own tag and the tags of its
        neighbours that sent this round — plus the half-edge indices
        whose sender matches the receiver's winning tag (the messages
        that survive the rule; all others are discarded).
        """
        he_src, he_dst = self._he_src, self._he_dst
        send_mask = sending[he_dst]
        cr = np.where(send_mask, R[he_dst], _INF)
        ca = np.where(send_mask, A[he_dst], _INF)
        cb = np.where(send_mask, B[he_dst], _INF)
        owners = np.concatenate([he_src, self._all_v])
        kr = np.concatenate([cr, R])
        ka = np.concatenate([ca, A])
        kb = np.concatenate([cb, B])
        order = np.lexsort((kb, ka, kr, owners))
        sorted_owners = owners[order]
        first = np.searchsorted(sorted_owners, self._all_v, side="left")
        bestR = kr[order][first]
        bestA = ka[order][first]
        bestB = kb[order][first]
        matches = np.nonzero(
            send_mask
            & (R[he_dst] == bestR[he_src])
            & (A[he_dst] == bestA[he_src])
            & (B[he_dst] == bestB[he_src])
        )[0]
        return bestR, bestA, bestB, matches

    def _gather_received(
        self, matches: np.ndarray, sent_seqs: Dict[int, list]
    ) -> Dict[int, list]:
        """Concatenate surviving senders' sequences per receiving node."""
        recv: Dict[int, list] = {}
        src = self._he_src[matches].tolist()
        dst = self._he_dst[matches].tolist()
        for v, u in zip(src, dst):
            seqs = sent_seqs.get(u)
            if not seqs:
                continue
            bucket = recv.get(v)
            if bucket is None:
                recv[v] = list(seqs)
            else:
                bucket.extend(seqs)
        return recv

    # ------------------------------------------------------------------
    # Phase 1: rank draws + selection
    # ------------------------------------------------------------------
    def _draw_edge_ranks(self, rep_seed: int) -> np.ndarray:
        """Per-edge Phase-1 ranks, bit-identical to the reference draws."""
        g = self._net.graph
        m = g.m
        hi = m * m
        edge_rank = np.zeros(m, dtype=np.int64)
        if not len(self._owners):
            return edge_rank
        seed_word = int(rep_seed) & 0x7FFFFFFF
        streams = RankStreams(seed_word, self._ids[self._owners])
        counts = self._owner_counts
        offsets = self._owner_offsets
        ranks_in_draw_order = np.zeros(len(self._owned_he), dtype=np.int64)
        for j in range(int(counts.max())):
            active = np.nonzero(counts > j)[0]
            draws = streams.integers(active, 1, hi + 1)
            ranks_in_draw_order[offsets[active] + j] = draws
        edge_rank[self._edge_of_he[self._owned_he]] = ranks_in_draw_order
        return edge_rank

    def _select_minima(
        self, edge_rank: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-node minimum incident tag ``(rank, edge)`` (round 2)."""
        n = self._net.n
        he_rank = edge_rank[self._edge_of_he]
        order = np.lexsort((self._he_b, self._he_a, he_rank, self._he_src))
        sorted_src = self._he_src[order]
        R = np.full(n, _INF, dtype=np.int64)
        A = np.full(n, _INF, dtype=np.int64)
        B = np.full(n, _INF, dtype=np.int64)
        present, first = np.unique(sorted_src, return_index=True)
        R[present] = he_rank[order][first]
        A[present] = self._he_a[order][first]
        B[present] = self._he_b[order][first]
        return R, A, B

    # ------------------------------------------------------------------
    # Chunked (cross-repetition) kernels
    # ------------------------------------------------------------------
    def _draw_edge_ranks_chunk(self, rep_seeds: List[int]) -> np.ndarray:
        """Phase-1 ranks for several repetitions in one batched pass.

        Row ``r`` is bit-identical to ``_draw_edge_ranks(rep_seeds[r])``:
        the per-``(rep, owner)`` streams are independent, so stacking
        them into one :class:`RankStreams` batch preserves every
        stream's draw order exactly.
        """
        g = self._net.graph
        m = g.m
        hi = m * m
        C = len(rep_seeds)
        edge_rank = np.zeros((C, m), dtype=np.int64)
        if not len(self._owners):
            return edge_rank
        n_own = len(self._owners)
        words = np.asarray(
            [int(s) & 0x7FFFFFFF for s in rep_seeds], dtype=np.uint64
        )
        streams = RankStreams(
            np.repeat(words, n_own), np.tile(self._ids[self._owners], C)
        )
        counts = np.tile(self._owner_counts, C)
        slots = len(self._owned_he)
        offsets = np.tile(self._owner_offsets, C) + np.repeat(
            np.arange(C, dtype=np.int64) * slots, n_own
        )
        ranks = np.zeros(C * slots, dtype=np.int64)
        for j in range(int(self._owner_counts.max())):
            active = np.nonzero(counts > j)[0]
            draws = streams.integers(active, 1, hi + 1)
            ranks[offsets[active] + j] = draws
        edge_rank[:, self._edge_of_he[self._owned_he]] = ranks.reshape(C, slots)
        return edge_rank

    def _select_minima_chunk(
        self, edge_rank: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Round-2 minimum selection for a ``(reps, edges)`` rank stack.

        One lexsort over all repetitions: the sort key prepends a
        rep-major composite owner (``r*n + src``), so the within-group
        ordering — and therefore each row of the result — matches
        :meth:`_select_minima` on that row exactly.
        """
        C = edge_rank.shape[0]
        n = self._net.n
        H = len(self._he_src)
        he_rank = edge_rank[:, self._edge_of_he].ravel()
        he_a = np.tile(self._he_a, C)
        he_b = np.tile(self._he_b, C)
        src_key = np.tile(self._he_src, C) + np.repeat(
            np.arange(C, dtype=np.int64) * n, H
        )
        order = np.lexsort((he_b, he_a, he_rank, src_key))
        sorted_key = src_key[order]
        present, first = np.unique(sorted_key, return_index=True)
        R = np.full(C * n, _INF, dtype=np.int64)
        A = np.full(C * n, _INF, dtype=np.int64)
        B = np.full(C * n, _INF, dtype=np.int64)
        R[present] = he_rank[order][first]
        A[present] = he_a[order][first]
        B[present] = he_b[order][first]
        return R.reshape(C, n), A.reshape(C, n), B.reshape(C, n)

    def _mux_chunk(
        self,
        sending: np.ndarray,
        R: np.ndarray,
        A: np.ndarray,
        B: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """§3.1 priority rule for a whole ``(reps, nodes)`` tag stack.

        The same rep-major composite-owner trick as
        :meth:`_select_minima_chunk`: one lexsort + searchsorted serves
        every repetition.  Returns the winning tags as ``(reps, nodes)``
        arrays and the surviving half-edges as a ``(reps, half_edges)``
        boolean mask (row ``r``'s nonzeros equal the serial
        :meth:`_mux` match indices for that repetition).
        """
        C, n = R.shape
        he_src, he_dst = self._he_src, self._he_dst
        H = len(he_src)
        send_mask = sending[:, he_dst]
        cr = np.where(send_mask, R[:, he_dst], _INF)
        ca = np.where(send_mask, A[:, he_dst], _INF)
        cb = np.where(send_mask, B[:, he_dst], _INF)
        rep_off = (np.arange(C, dtype=np.int64) * n)[:, None]
        owners = np.concatenate(
            [(he_src[None, :] + rep_off).ravel(),
             (self._all_v[None, :] + rep_off).ravel()]
        )
        kr = np.concatenate([cr.ravel(), R.ravel()])
        ka = np.concatenate([ca.ravel(), A.ravel()])
        kb = np.concatenate([cb.ravel(), B.ravel()])
        order = np.lexsort((kb, ka, kr, owners))
        sorted_owners = owners[order]
        first = np.searchsorted(
            sorted_owners, np.arange(C * n, dtype=np.int64), side="left"
        )
        bestR = kr[order][first].reshape(C, n)
        bestA = ka[order][first].reshape(C, n)
        bestB = kb[order][first].reshape(C, n)
        matches = (
            send_mask
            & (R[:, he_dst] == bestR[:, he_src])
            & (A[:, he_dst] == bestA[:, he_src])
            & (B[:, he_dst] == bestB[:, he_src])
        )
        return bestR, bestA, bestB, matches

    def _run_tester_chunk(self, k: int, rep_seeds: List[int], pruner) -> list:
        """Run ``len(rep_seeds)`` repetitions through the chunked
        kernels; returns per-repetition :class:`RunResult` objects
        **without** exporting their traces (the caller yields them
        lazily, so early exit exports exactly what serial would).

        Per-repetition Python sequence work and the per-round audit fold
        stay serial per repetition — they are state-dependent — but the
        rank draws, round-2 selection, and every round's priority-rule
        lexsort run once per chunk.
        """
        from ...core.algorithm1 import (
            DetectionOutcome,
            find_detection_evidence,
            process_phase2_round,
        )
        from ...core.phase1 import protocol_rounds
        from ...core.pruning import HittingSetPruner
        from ...core.sequences import sort_sequences

        self._check_k(k)
        pruner = pruner if pruner is not None else HittingSetPruner()
        prof = self._profiler
        g = self._net.graph
        n = g.n
        C = len(rep_seeds)
        ids = self._id_list
        accept = DetectionOutcome(rejects=False)
        traces = [
            ExecutionTrace(n=n, m=g.m, size_model=self._size_model)
            for _ in range(C)
        ]
        outputs = [{v: accept for v in range(n)} for _ in range(C)]

        # Round 1 — rank draws, batched across the whole chunk.
        with prof.phase("rank_draws"):
            edge_rank = self._draw_edge_ranks_chunk(rep_seeds)
        for trace in traces:
            stats = self._begin_round(trace, 1)
            if len(self._owners):
                bits = self._bits_rank_msg
                stats.messages = g.m
                stats.total_bits = bits * g.m
                stats.max_message_bits = bits
                first_owner = int(self._owners[0])
                first_he = int(self._owned_he[0])
                stats.max_edge = (ids[first_owner], int(self._he_b[first_he]))

        # Round 2 — minimum selection (one lexsort) + seed broadcast.
        with prof.phase("min_select"):
            R, A, B = self._select_minima_chunk(edge_rank)
        sending = np.broadcast_to(self._degrees > 0, (C, n)).copy()
        sender_arr = np.nonzero(self._degrees > 0)[0]
        sent_seqs = [
            {v: [(ids[v],)] for v in sender_arr.tolist()} for _ in range(C)
        ]
        seed_bits = self._bundle_bits(1, 1, tagged=True)
        with prof.phase("audit_fold"):
            for trace in traces:
                self._record_broadcasts(
                    self._begin_round(trace, 2),
                    2,
                    sender_arr,
                    np.full(len(sender_arr), seed_bits, dtype=np.int64),
                    np.ones(len(sender_arr), dtype=np.int64),
                )

        seed_shortcut = type(pruner) is HittingSetPruner

        # Rounds 3..1+⌊k/2⌋ — one chunked mux per round.
        for t in range(2, k // 2 + 1):
            with prof.phase("priority_mux"):
                bestR, bestA, bestB, match_mask = self._mux_chunk(
                    sending, R, A, B
                )
            R, A, B = bestR, bestA, bestB
            new_sending = np.zeros((C, n), dtype=bool)
            per_seq = self._seq_bits(t)
            for r in range(C):
                with prof.phase("priority_mux"):
                    matches = np.nonzero(match_mask[r])[0]
                    recv = self._gather_received(matches, sent_seqs[r])
                new_sent: Dict[int, list] = {}
                with prof.phase("round_apply"):
                    if t == 2 and seed_shortcut:
                        keep = k - 1
                        for v, lst in recv.items():
                            lst.sort()
                            my = ids[v]
                            new_sent[v] = [s + (my,) for s in lst[:keep]]
                            new_sending[r, v] = True
                    else:
                        for v, lst in recv.items():
                            send = process_phase2_round(
                                ids[v], sort_sequences(lst), k, t, pruner
                            )
                            if send:
                                new_sent[v] = send
                                new_sending[r, v] = True
                sent_seqs[r] = new_sent
                senders = np.fromiter(
                    new_sent, dtype=np.int64, count=len(new_sent)
                )
                senders.sort()
                lens = np.fromiter(
                    (len(new_sent[int(v)]) for v in senders),
                    dtype=np.int64,
                    count=len(senders),
                )
                with prof.phase("audit_fold"):
                    self._record_broadcasts(
                        self._begin_round(traces[r], t + 1),
                        t + 1,
                        senders,
                        self._bits_tagged_overhead + lens * per_seq,
                        lens,
                    )
            sending = new_sending

        # Final decision per repetition (no further communication).
        with prof.phase("priority_mux"):
            bestR, bestA, bestB, match_mask = self._mux_chunk(sending, R, A, B)
        runs = []
        for r in range(C):
            with prof.phase("priority_mux"):
                matches = np.nonzero(match_mask[r])[0]
                recv = self._gather_received(matches, sent_seqs[r])
            with prof.phase("decision"):
                for v, lst in recv.items():
                    received = sort_sequences(lst)
                    own = sent_seqs[r].get(v, [])
                    if own and not (
                        R[r, v] == bestR[r, v]
                        and A[r, v] == bestA[r, v]
                        and B[r, v] == bestB[r, v]
                    ):
                        own = []  # stale tag: the node switched executions
                    cycle = find_detection_evidence(ids[v], k, own, received)
                    if cycle is not None:
                        outputs[r][v] = DetectionOutcome(
                            rejects=True, cycle=cycle
                        )
            assert traces[r].num_rounds == protocol_rounds(k)
            runs.append(RunResult(outputs[r], traces[r]))
        return runs

    def iter_tester_chunk(self, k: int, rep_seeds, *, pruner=None):
        """Chunked tester iteration: :attr:`rep_chunk` repetitions per
        batched kernel pass, each repetition's telemetry export deferred
        to its yield.  Falls back to the serial base path for chunk size
        1, strict-bandwidth audits (the mid-repetition raise must happen
        in execution order), and edgeless graphs.
        """
        if self.rep_chunk <= 1 or self._strict or self._net.graph.m == 0:
            yield from super().iter_tester_chunk(k, rep_seeds, pruner=pruner)
            return
        seeds = [int(s) for s in rep_seeds]
        for i in range(0, len(seeds), self.rep_chunk):
            for run in self._run_tester_chunk(
                k, seeds[i: i + self.rep_chunk], pruner
            ):
                yield self._finish(run)

    # ------------------------------------------------------------------
    # Engine entry points
    # ------------------------------------------------------------------
    def run_tester_repetition(
        self, k: int, rep_seed: int, *, pruner=None
    ) -> RunResult:
        """One tester repetition, batched: vectorized rank draws and
        tag multiplexing, per-node sequence work only where messages
        survive the priority rule.  Verdict-identical to the
        reference engine under the same ``rep_seed``."""
        from ...core.algorithm1 import (
            DetectionOutcome,
            find_detection_evidence,
            process_phase2_round,
        )
        from ...core.phase1 import protocol_rounds
        from ...core.pruning import HittingSetPruner
        from ...core.sequences import sort_sequences

        self._check_k(k)
        pruner = pruner if pruner is not None else HittingSetPruner()
        prof = self._profiler
        g = self._net.graph
        n = g.n
        ids = self._id_list
        trace = ExecutionTrace(n=n, m=g.m, size_model=self._size_model)
        accept = DetectionOutcome(rejects=False)
        outputs: Dict[int, DetectionOutcome] = {v: accept for v in range(n)}
        if g.m == 0:
            # Edgeless network: every node is silent and accepts (same as
            # the reference scheduler running the programs to completion).
            for r in range(1, protocol_rounds(k) + 1):
                self._begin_round(trace, r)
            return RunResult(outputs, trace)

        # Round 1 — every owned edge's rank crosses the edge (one message).
        stats = self._begin_round(trace, 1)
        with prof.phase("rank_draws"):
            edge_rank = self._draw_edge_ranks(rep_seed)
        if len(self._owners):
            bits = self._bits_rank_msg
            stats.messages = g.m
            stats.total_bits = bits * g.m
            stats.max_message_bits = bits
            # Rank outboxes insert in ascending neighbour-ID order, so
            # the first delivery is the first owner's smallest owned ID.
            first_owner = int(self._owners[0])
            first_he = int(self._owned_he[0])
            stats.max_edge = (ids[first_owner], int(self._he_b[first_he]))
            if self._strict and bits > self._budget:
                raise BandwidthExceededError(1, stats.max_edge, bits, self._budget)

        # Round 2 — minimum selection; every non-isolated node broadcasts
        # its seed sequence under its chosen tag.
        stats = self._begin_round(trace, 2)
        with prof.phase("min_select"):
            R, A, B = self._select_minima(edge_rank)
        sending = self._degrees > 0
        sender_arr = np.nonzero(sending)[0]
        sent_seqs: Dict[int, list] = {v: [(ids[v],)] for v in sender_arr.tolist()}
        seed_bits = self._bundle_bits(1, 1, tagged=True)
        with prof.phase("audit_fold"):
            self._record_broadcasts(
                stats,
                2,
                sender_arr,
                np.full(len(sender_arr), seed_bits, dtype=np.int64),
                np.ones(len(sender_arr), dtype=np.int64),
            )

        # The round-2 send of the default pruner has a closed form: the
        # received sequences are singleton seeds (none containing the
        # receiving ID), and HittingSetPruner keeps exactly the first
        # k-1 of them in sorted order (the residues are disjoint
        # singletons, so the q = k-2 hitting-set test passes while at
        # most k-2 sequences are kept).  Skipping the generic pruner for
        # this one round removes most per-node Python work.
        seed_shortcut = type(pruner) is HittingSetPruner

        # Rounds 3..1+⌊k/2⌋ — prioritized multiplexed Phase 2.
        for t in range(2, k // 2 + 1):
            stats = self._begin_round(trace, t + 1)
            with prof.phase("priority_mux"):
                bestR, bestA, bestB, matches = self._mux(sending, R, A, B)
                recv = self._gather_received(matches, sent_seqs)
            R, A, B = bestR, bestA, bestB
            sending = np.zeros(n, dtype=bool)
            sent_seqs = {}
            with prof.phase("round_apply"):
                if t == 2 and seed_shortcut:
                    keep = k - 1
                    for v, lst in recv.items():
                        lst.sort()
                        my = ids[v]
                        sent_seqs[v] = [s + (my,) for s in lst[:keep]]
                        sending[v] = True
                else:
                    for v, lst in recv.items():
                        send = process_phase2_round(
                            ids[v], sort_sequences(lst), k, t, pruner
                        )
                        if send:
                            sent_seqs[v] = send
                            sending[v] = True
            per_seq = self._seq_bits(t)
            sender_arr = np.fromiter(sent_seqs, dtype=np.int64, count=len(sent_seqs))
            sender_arr.sort()
            lens = np.fromiter(
                (len(sent_seqs[int(v)]) for v in sender_arr),
                dtype=np.int64,
                count=len(sender_arr),
            )
            with prof.phase("audit_fold"):
                self._record_broadcasts(
                    stats,
                    t + 1,
                    sender_arr,
                    self._bits_tagged_overhead + lens * per_seq,
                    lens,
                )

        # Final decision (no further communication round).  At this
        # point sent_seqs / (R, A, B) hold the final round's non-empty
        # sends and the tags they were sent under.
        with prof.phase("priority_mux"):
            bestR, bestA, bestB, matches = self._mux(sending, R, A, B)
            recv = self._gather_received(matches, sent_seqs)
        with prof.phase("decision"):
            for v, lst in recv.items():
                received = sort_sequences(lst)
                own = sent_seqs.get(v, [])
                if own and not (
                    R[v] == bestR[v] and A[v] == bestA[v] and B[v] == bestB[v]
                ):
                    own = []  # stale tag: the node switched executions
                cycle = find_detection_evidence(ids[v], k, own, received)
                if cycle is not None:
                    outputs[v] = DetectionOutcome(rejects=True, cycle=cycle)
        assert trace.num_rounds == protocol_rounds(k)
        return self._finish(RunResult(outputs, trace))

    # ------------------------------------------------------------------
    def run_detect(
        self, k: int, edge_ids: Tuple[int, int], *, pruner=None
    ) -> RunResult:
        """Algorithm 1 for one edge over CSR arrays: frontier-based
        delivery, shared pure per-node instructions, aggregate audit."""
        from ...core.algorithm1 import (
            DetectionOutcome,
            find_detection_evidence,
            phase2_rounds,
            process_phase2_round,
        )
        from ...core.pruning import HittingSetPruner
        from ...core.sequences import sort_sequences
        from ...errors import ConfigurationError

        self._check_k(k)
        u_id, v_id = edge_ids
        if u_id == v_id:
            raise ConfigurationError("edge endpoints must differ")
        pruner = pruner if pruner is not None else HittingSetPruner()
        prof = self._profiler
        g = self._net.graph
        n = g.n
        ids = self._id_list
        indptr, indices = self._indptr, self._indices
        trace = ExecutionTrace(n=n, m=g.m, size_model=self._size_model)
        accept = DetectionOutcome(rejects=False)
        outputs: Dict[int, DetectionOutcome] = {v: accept for v in range(n)}

        # Round 1: the endpoints broadcast their singleton sequences.
        stats = self._begin_round(trace, 1)
        sent: Dict[int, list] = {}
        for nid in (u_id, v_id):
            vtx = self._net.vertex_of(nid)
            if self._degrees[vtx] > 0:
                sent[vtx] = [(nid,)]
        with prof.phase("audit_fold"):
            self._record_broadcasts(
                stats,
                1,
                np.array(sorted(sent), dtype=np.int64),
                np.full(
                    len(sent),
                    self._bundle_bits(1, 1, tagged=False),
                    dtype=np.int64,
                ),
                np.ones(len(sent), dtype=np.int64),
            )

        def deliver(senders: Dict[int, list]) -> Dict[int, list]:
            recv: Dict[int, list] = {}
            for s in senders:
                seqs = senders[s]
                for w in indices[indptr[s]: indptr[s + 1]].tolist():
                    bucket = recv.get(w)
                    if bucket is None:
                        recv[w] = list(seqs)
                    else:
                        bucket.extend(seqs)
            return recv

        # Rounds 2..⌊k/2⌋: receive, prune, append, broadcast.
        for t in range(2, phase2_rounds(k) + 1):
            stats = self._begin_round(trace, t)
            with prof.phase("priority_mux"):
                recv = deliver(sent)
            sent = {}
            with prof.phase("round_apply"):
                for v, lst in recv.items():
                    send = process_phase2_round(
                        ids[v], sort_sequences(lst), k, t, pruner
                    )
                    if send:
                        sent[v] = send
            per_seq = self._seq_bits(t)
            sender_arr = np.fromiter(sent, dtype=np.int64, count=len(sent))
            sender_arr.sort()
            lens = np.fromiter(
                (len(sent[int(v)]) for v in sender_arr),
                dtype=np.int64,
                count=len(sender_arr),
            )
            with prof.phase("audit_fold"):
                self._record_broadcasts(
                    stats,
                    t,
                    sender_arr,
                    self._bits_untagged_overhead + lens * per_seq,
                    lens,
                )

        # Final decision from the last round's deliveries.
        with prof.phase("priority_mux"):
            recv = deliver(sent)
        with prof.phase("decision"):
            for v, lst in recv.items():
                received = sort_sequences(lst)
                cycle = find_detection_evidence(
                    ids[v], k, sent.get(v, []), received
                )
                if cycle is not None:
                    outputs[v] = DetectionOutcome(rejects=True, cycle=cycle)
        return self._finish(RunResult(outputs, trace))

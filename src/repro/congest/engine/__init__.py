"""Pluggable CONGEST execution engines.

One protocol, interchangeable backends (see
:class:`~repro.congest.engine.base.CongestEngine` for the contract):

* ``reference`` — the original per-node lock-step simulation, with a
  per-message bit audit.  Always available.
* ``fast`` — batched numpy execution over CSR adjacency arrays with an
  aggregate (per-sender) bit audit.  Requires numpy
  (``pip install repro-cycles[fast]``) and node IDs below ``2**32``.

Select a backend by name::

    from repro.congest.engine import create_engine

    engine = create_engine("fast", network, strict_bandwidth=True)
    run = engine.run_tester_repetition(k=5, rep_seed=42)

or end to end through ``CkFreenessTester(..., engine="fast")``,
``detect_cycle_through_edge(..., engine="fast")``, the CLI's
``--engine`` flag, and the campaign runner's ``engines`` factor.

Both backends are verdict-equivalent under fixed seeds; see
``docs/engines.md`` and :func:`repro.testing.engine_equivalence_report`.
"""

from __future__ import annotations

from typing import Tuple

from ...errors import ConfigurationError, EngineUnavailableError
from ..network import Network
from .base import CongestEngine

__all__ = [
    "ENGINE_NAMES",
    "CongestEngine",
    "available_engines",
    "create_engine",
    "ensure_engine_available",
]

#: All backend names, in preference order for documentation/CLI listings.
ENGINE_NAMES: Tuple[str, ...] = ("reference", "fast")


def _numpy_missing() -> str:
    """Import-check numpy; return an empty string or the failure reason."""
    try:
        import numpy  # noqa: F401
    except ImportError as exc:  # pragma: no cover - numpy ships in [test]
        return str(exc)
    return ""


def ensure_engine_available(name: str) -> None:
    """Validate an engine name and this environment's ability to run it.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    and :class:`~repro.errors.EngineUnavailableError` when the backend's
    dependencies are missing (e.g. ``fast`` without numpy).
    """
    if name not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {', '.join(ENGINE_NAMES)}"
        )
    if name == "fast":
        reason = _numpy_missing()
        if reason:
            raise EngineUnavailableError(
                "the 'fast' engine requires numpy, which is not installed "
                f"({reason}); install it with `pip install repro-cycles[fast]` "
                "or run with --engine reference"
            )


def available_engines() -> Tuple[str, ...]:
    """The subset of :data:`ENGINE_NAMES` that can run here."""
    out = []
    for name in ENGINE_NAMES:
        try:
            ensure_engine_available(name)
        except ConfigurationError:
            continue
        out.append(name)
    return tuple(out)


def create_engine(name: str, network: Network, **kwargs) -> CongestEngine:
    """Instantiate the named backend for ``network``.

    ``kwargs`` are forwarded to the engine constructor (``size_model``,
    ``strict_bandwidth``, ``faults`` — the last only honoured by the
    reference backend).
    """
    ensure_engine_available(name)
    if name == "reference":
        from .reference import ReferenceEngine

        return ReferenceEngine(network, **kwargs)
    from .fast import FastEngine

    return FastEngine(network, **kwargs)

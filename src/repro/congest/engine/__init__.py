"""Pluggable CONGEST execution engines.

One protocol, interchangeable backends (see
:class:`~repro.congest.engine.base.CongestEngine` for the contract):

* ``reference`` — the original per-node lock-step simulation, with a
  per-message bit audit.  Always available.
* ``fast`` — batched numpy execution over CSR adjacency arrays with an
  aggregate (per-sender) bit audit.  Requires numpy
  (``pip install repro-cycles[fast]``) and node IDs below ``2**32``.
* ``sharded`` — the fast engine's kernels partitioned into contiguous
  node-range shards over ``multiprocessing.shared_memory``, optionally
  driven by a persistent ``fork`` worker pool, for 10^5–10^6-node
  graphs.  Requires numpy and ``multiprocessing.shared_memory``.

Select a backend by name::

    from repro.congest.engine import create_engine

    engine = create_engine("fast", network, strict_bandwidth=True)
    run = engine.run_tester_repetition(k=5, rep_seed=42)

or end to end through ``CkFreenessTester(..., engine="fast")``,
``detect_cycle_through_edge(..., engine="fast")``, the CLI's
``--engine`` flag, and the campaign runner's ``engines`` factor.  The
sharded backend additionally accepts a shard count, spelled
``"sharded:4"`` in any engine-name position (or ``--shards 4`` on the
CLI), and both numpy backends accept a repetition chunk size for the
batched tester kernels, spelled ``"fast:chunk=8"`` /
``"sharded:4,chunk=8"`` (or ``--rep-chunk 8``);
:func:`parse_engine_spec` is the one parser for that syntax.

All backends are verdict-equivalent under fixed seeds; see
``docs/engines.md`` and :func:`repro.testing.engine_equivalence_report`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ...errors import ConfigurationError, EngineUnavailableError
from ..network import Network
from .base import CongestEngine
from .profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    validate_profile,
)

__all__ = [
    "ENGINE_NAMES",
    "NULL_PROFILER",
    "CongestEngine",
    "NullProfiler",
    "PhaseProfiler",
    "available_engines",
    "create_engine",
    "ensure_engine_available",
    "parse_engine_spec",
    "validate_profile",
]

#: All backend names, in preference order for documentation/CLI listings.
ENGINE_NAMES: Tuple[str, ...] = ("reference", "fast", "sharded")


def _numpy_missing() -> str:
    """Import-check numpy; return an empty string or the failure reason."""
    try:
        import numpy  # noqa: F401
    except ImportError as exc:  # pragma: no cover - numpy ships in [test]
        return str(exc)
    return ""


def _shared_memory_missing() -> str:
    """Import-check ``multiprocessing.shared_memory``; '' or the reason."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError as exc:  # pragma: no cover - stdlib since 3.8
        return str(exc)
    return ""


def parse_engine_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split an engine spec string into ``(name, constructor_kwargs)``.

    Plain names (``"reference"``, ``"fast"``, ``"sharded"``) pass
    through with no options.  After a ``:`` come comma-separated
    options:

    * a bare integer is a shard count (sharded only) —
      ``"sharded:4"`` → ``("sharded", {"shards": 4})``;
    * ``chunk=C`` is the repetition chunk size of the batched tester
      kernels (fast and sharded) — ``"fast:chunk=8"`` →
      ``("fast", {"rep_chunk": 8})``, ``"sharded:4,chunk=8"`` →
      ``("sharded", {"shards": 4, "rep_chunk": 8})``.

    These spellings are accepted anywhere an engine name is (the CLI's
    ``--engine``, the campaign ``engines`` factor, service session
    specs).  Raises :class:`~repro.errors.ConfigurationError` for
    unknown names, options on engines that take none, repeated options,
    and non-positive or non-integer counts.
    """
    name, sep, opts = str(spec).partition(":")
    if name not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {', '.join(ENGINE_NAMES)}"
        )
    if not sep:
        return name, {}
    if name == "reference":
        raise ConfigurationError(
            f"engine 'reference' takes no options (got {spec!r}); "
            "'fast'/'sharded' accept chunk=C, and 'sharded' a shard "
            "count, e.g. 'sharded:4,chunk=8'"
        )
    kwargs: Dict[str, Any] = {}
    for item in opts.split(","):
        key, eq, value = item.partition("=")
        if not eq:
            if name != "sharded":
                raise ConfigurationError(
                    f"engine {name!r} takes no shard count (got {spec!r}); "
                    "only 'sharded' accepts one, e.g. 'sharded:4'"
                )
            if "shards" in kwargs:
                raise ConfigurationError(
                    f"shard count given twice in engine spec {spec!r}"
                )
            try:
                shards = int(item)
            except ValueError:
                raise ConfigurationError(
                    f"bad option {item!r} in engine spec {spec!r}; expected "
                    "a shard count or chunk=C, e.g. 'sharded:4,chunk=8'"
                ) from None
            if shards < 1:
                raise ConfigurationError(f"shards must be >= 1, got {shards}")
            kwargs["shards"] = shards
        elif key == "chunk":
            if "rep_chunk" in kwargs:
                raise ConfigurationError(
                    f"chunk given twice in engine spec {spec!r}"
                )
            try:
                chunk = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad chunk size in engine spec {spec!r}; expected an "
                    "integer, e.g. 'fast:chunk=8'"
                ) from None
            if chunk < 1:
                raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
            kwargs["rep_chunk"] = chunk
        else:
            raise ConfigurationError(
                f"unknown option {key!r} in engine spec {spec!r}; "
                "supported: a shard count (sharded) and chunk=C"
            )
    return name, kwargs


def ensure_engine_available(spec: str) -> None:
    """Validate an engine spec and this environment's ability to run it.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    or malformed specs and
    :class:`~repro.errors.EngineUnavailableError` when the backend's
    dependencies are missing (e.g. ``fast`` without numpy).
    """
    name, _ = parse_engine_spec(spec)
    if name in ("fast", "sharded"):
        reason = _numpy_missing()
        if reason:
            raise EngineUnavailableError(
                f"the {name!r} engine requires numpy, which is not installed "
                f"({reason}); install it with `pip install repro-cycles[fast]` "
                "or run with --engine reference"
            )
    if name == "sharded":
        reason = _shared_memory_missing()
        if reason:
            raise EngineUnavailableError(
                "the 'sharded' engine requires multiprocessing.shared_memory "
                f"(Python >= 3.8), which is unavailable here ({reason}); "
                "run with --engine fast or --engine reference"
            )


def available_engines() -> Tuple[str, ...]:
    """The subset of :data:`ENGINE_NAMES` that can run here."""
    out = []
    for name in ENGINE_NAMES:
        try:
            ensure_engine_available(name)
        except ConfigurationError:
            continue
        out.append(name)
    return tuple(out)


def create_engine(spec: str, network: Network, **kwargs) -> CongestEngine:
    """Instantiate the backend named by ``spec`` for ``network``.

    ``spec`` is an engine name or spec string (see
    :func:`parse_engine_spec`); options embedded in the spec may not be
    repeated in ``kwargs``.  ``kwargs`` are forwarded to the engine
    constructor (``size_model``, ``strict_bandwidth``, ``faults`` — the
    last only honoured by the reference backend — ``telemetry`` and
    ``profiler`` (a :class:`PhaseProfiler` attributing wall time to
    protocol phases), plus ``rep_chunk`` for the numpy backends and
    ``shards`` / ``use_pool`` for the sharded backend).
    """
    ensure_engine_available(spec)
    name, opts = parse_engine_spec(spec)
    for key in opts:
        if key in kwargs:
            raise ConfigurationError(
                f"engine option {key!r} given both in the spec {spec!r} "
                "and as a keyword argument"
            )
    kwargs = {**opts, **kwargs}
    if name == "reference":
        from .reference import ReferenceEngine

        return ReferenceEngine(network, **kwargs)
    if name == "sharded":
        from .sharded import ShardedEngine

        return ShardedEngine(network, **kwargs)
    from .fast import FastEngine

    return FastEngine(network, **kwargs)

"""Bounded cache of compiled engine instances, keyed by graph content.

Every :func:`~repro.congest.engine.create_engine` call re-compiles the
network into the backend's execution form (CSR adjacency, half-edge
tables, shared-memory segments for the sharded backend).  Compilation is
pure — it depends only on the graph's content, the engine spec and the
bandwidth mode — so repeated detect/tester calls against the *same*
graph version can reuse one compiled instance.  :class:`EngineCache` is
that reuse point: a small LRU keyed by
``(spec, strict_bandwidth, graph.content_hash())``.

Three properties keep cached execution bit-identical to uncached:

* **Snapshot isolation.**  A cache miss compiles a *copy* of the caller's
  graph (:meth:`~repro.graphs.graph.Graph.copy`), never the live object:
  dynamic workloads mutate graphs in place, and a cached engine must
  stay consistent with the content hash it is filed under.
* **Rebinding.**  Engines hold references to the telemetry registry and
  phase profiler they were created with; a cache hit rebinds both to the
  *caller's* before returning, so traces and counters land exactly where
  a freshly created engine would put them.
* **Global-only cache metrics.**  Hit/miss/eviction counters and the
  resident-bytes gauge are recorded on the process-global registry
  (:func:`~repro.obs.resolve_telemetry` of ``None``), never on a
  caller-supplied registry.  Campaign rows summarise their own private
  registries into the result store; keeping cache bookkeeping out of
  them preserves the serial == parallel byte-identity of campaign JSONL.

The cache also memoises plain CSR exports (:meth:`EngineCache.csr`) for
the dynamic monitor's ⌊k/2⌋-ball extraction, under the same LRU bound
and the same content-hash keying.

Engines compiled with a fault model are never cached: fault models are
stateful (they carry their own RNG stream), so two runs through one
instance would not be independent.  Callers enforce this by bypassing
the cache whenever ``faults is not None``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ...errors import ConfigurationError
from ...graphs.graph import Graph
from ..network import Network
from . import create_engine, parse_engine_spec
from .base import CongestEngine

__all__ = ["EngineCache", "global_engine_cache"]


class EngineCache:
    """LRU cache of compiled :class:`CongestEngine` instances.

    Parameters
    ----------
    max_entries:
        Maximum resident entries (compiled engines plus memoised CSR
        exports).  The least recently used entry is evicted first;
        evicted engines exposing ``close()`` (the sharded backend's
        shared-memory teardown) are closed.
    """

    def __init__(self, max_entries: int = 8) -> None:
        max_entries = int(max_entries)
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._pid = os.getpid()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _check_fork(self) -> None:
        """Drop entries inherited across a ``fork`` boundary.

        A forked child (campaign pool worker) inherits the parent's
        cache by memory image.  Inherited engines are unusable there —
        a sharded engine's pipes and shard processes belong to the
        parent — so the child starts empty.  Entries are dropped, not
        closed: their resources are the parent's to release.
        """
        if os.getpid() != self._pid:
            self._entries.clear()
            self._pid = os.getpid()

    # ------------------------------------------------------------------
    def get(
        self,
        spec: str,
        graph: Graph,
        *,
        strict_bandwidth: bool = False,
        telemetry=None,
        profiler=None,
    ) -> CongestEngine:
        """A compiled engine for ``spec`` on the current ``graph`` content.

        On a hit the cached instance is rebound to the caller's
        ``telemetry``/``profiler`` and returned; on a miss a fresh engine
        is compiled for a snapshot copy of ``graph`` (identity node IDs,
        as ``Network(graph)`` assigns).  Never pass a fault model through
        this path — fault runs must bypass the cache.
        """
        from ...obs import resolve_telemetry
        from .profiler import NULL_PROFILER

        self._check_fork()
        parse_engine_spec(spec)  # surface bad specs before hashing
        key = ("engine", str(spec), bool(strict_bandwidth), graph.content_hash())
        eng = self._entries.get(key)
        if eng is not None:
            self._entries.move_to_end(key)
            eng._telemetry = resolve_telemetry(telemetry)
            eng._profiler = profiler if profiler is not None else NULL_PROFILER
            self._record(hit=True)
            return eng  # type: ignore[return-value]
        eng = create_engine(
            spec,
            Network(graph.copy()),
            strict_bandwidth=strict_bandwidth,
            telemetry=telemetry,
            profiler=profiler,
        )
        self._insert(key, eng)
        self._record(hit=False)
        return eng

    def csr(self, graph: Graph, *, key=None) -> Tuple[np.ndarray, np.ndarray]:
        """Memoised ``(indptr, indices)`` CSR export of ``graph``.

        Keyed by content hash like engine entries; the arrays are
        consistent snapshots, safe to hold across later mutations of
        ``graph``.  A caller that already knows a unique identity for
        the current content (e.g. the dynamic monitor's never-reused
        version tokens) may pass it as ``key`` to skip the hash; the
        caller then owns the correctness of that keying.
        """
        self._check_fork()
        key = ("csr", graph.content_hash() if key is None else key)
        arrays = self._entries.get(key)
        if arrays is not None:
            self._entries.move_to_end(key)
            self._record(hit=True)
            return arrays  # type: ignore[return-value]
        arrays = graph.to_csr()
        self._insert(key, arrays)
        self._record(hit=False)
        return arrays

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Evict every entry (closing engines that support it)."""
        self._check_fork()
        while self._entries:
            _, entry = self._entries.popitem(last=False)
            self._close(entry)
        self._publish_bytes()

    @property
    def nbytes(self) -> int:
        """Bytes resident across all cached entries."""
        total = 0
        for entry in self._entries.values():
            total += self._entry_nbytes(entry)
        return total

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"EngineCache(entries={len(self._entries)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )

    # ------------------------------------------------------------------
    def _insert(self, key: tuple, entry: object) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self._close(evicted)
            self.evictions += 1
            self._record_eviction()

    @staticmethod
    def _entry_nbytes(entry: object) -> int:
        if isinstance(entry, CongestEngine):
            return entry.compiled_nbytes
        indptr, indices = entry  # type: ignore[misc]
        return int(indptr.nbytes + indices.nbytes)

    @staticmethod
    def _close(entry: object) -> None:
        close = getattr(entry, "close", None)
        if callable(close):
            close()

    # ------------------------------------------------------------------
    # Cache metrics: process-global registry only (see module docstring).
    # ------------------------------------------------------------------
    def _record(self, *, hit: bool) -> None:
        from ...obs import resolve_telemetry

        if hit:
            self.hits += 1
        else:
            self.misses += 1
        tel = resolve_telemetry(None)
        if tel.enabled:
            name = (
                "repro_engine_cache_hits_total"
                if hit
                else "repro_engine_cache_misses_total"
            )
            verb = "served from" if hit else "compiled into"
            tel.counter(
                name, f"Engine-cache lookups {verb} the cache."
            ).inc()
            self._publish_bytes(tel)

    def _record_eviction(self) -> None:
        from ...obs import resolve_telemetry

        tel = resolve_telemetry(None)
        if tel.enabled:
            tel.counter(
                "repro_engine_cache_evictions_total",
                "Entries evicted from the engine cache (LRU order).",
            ).inc()

    def _publish_bytes(self, tel=None) -> None:
        from ...obs import resolve_telemetry

        tel = tel if tel is not None else resolve_telemetry(None)
        if tel.enabled:
            tel.gauge(
                "repro_engine_cache_bytes",
                "Bytes resident in the compiled-engine cache.",
            ).set(self.nbytes)


_GLOBAL_CACHE: Optional[EngineCache] = None


def global_engine_cache() -> EngineCache:
    """The process-wide shared :class:`EngineCache` (created lazily)."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = EngineCache()
    return _GLOBAL_CACHE

"""Engine phase profiler: wall-time attribution to named protocol phases.

``/metrics`` can say a run was slow; the profiler says *where*: Phase-1
rank draws vs. the priority mux vs. the per-round apply vs. the audit
fold — and, for the sharded backend, per-shard compute vs. halo routing
vs. the parent-side fold (shard wall times already travel back through
the worker Pipe protocol, so the parent folds them in without any new
IPC).

The default is :data:`NULL_PROFILER`, whose :meth:`~NullProfiler.phase`
returns one shared no-op context manager — entering it allocates
nothing and touches no clock, so profiling is zero-overhead when off
and can never perturb verdicts (the same bit-identity stance as
:mod:`repro.obs.telemetry`).

A live :class:`PhaseProfiler` aggregates ``{calls, seconds}`` per phase
and exports the schema-validated ``PROFILE.json`` artifact consumed by
``repro obs profile``::

    profiler = PhaseProfiler()
    engine = create_engine("fast", network, profiler=profiler)
    engine.run_tester_repetition(k=5, rep_seed=42)
    profiler.write("PROFILE.json", engine="fast")
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Union

from ...errors import ConfigurationError

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "PROFILE_SCHEMA",
    "PhaseProfiler",
    "validate_profile",
]

#: Schema identifier stamped into (and required of) every PROFILE.json.
PROFILE_SCHEMA = "repro.profile/v1"


class _NullPhase:
    """Shared no-op context manager handed out by :class:`NullProfiler`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_PHASE = _NullPhase()


class NullProfiler:
    """Disabled profiler: every operation is a cheap no-op."""

    enabled = False

    __slots__ = ()

    def phase(self, name: str) -> _NullPhase:
        """The shared no-op phase."""
        return _NULL_PHASE

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Discarded."""

    def report(self, engine: str = "") -> Dict[str, Any]:
        """Always empty (no phases)."""
        return {}


#: The shared disabled instance (every engine's default).
NULL_PROFILER = NullProfiler()


class _Phase:
    """One live timed phase; context manager from :meth:`PhaseProfiler.phase`."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._t0)


class PhaseProfiler:
    """Accumulates wall seconds and call counts per named phase.

    Phases are timed with ``with profiler.phase("round_apply"):`` or
    folded in externally via :meth:`add` (how the sharded parent
    attributes the wall times its workers ship back over the Pipe).
    Phase order is first-use order, which :meth:`report` preserves.
    """

    enabled = True

    def __init__(self) -> None:
        self._phases: Dict[str, list] = {}

    def phase(self, name: str) -> _Phase:
        """A context manager timing one occurrence of phase ``name``."""
        return _Phase(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold externally measured ``seconds`` into phase ``name``."""
        entry = self._phases.get(name)
        if entry is None:
            self._phases[name] = [float(seconds), int(calls)]
        else:
            entry[0] += float(seconds)
            entry[1] += int(calls)

    def clear(self) -> None:
        """Drop every accumulated phase (reuse between runs)."""
        self._phases.clear()

    # ------------------------------------------------------------------
    def report(self, engine: str = "") -> Dict[str, Any]:
        """The ``PROFILE.json`` document for the phases seen so far."""
        phases = {
            name: {"calls": calls, "seconds": round(seconds, 6)}
            for name, (seconds, calls) in self._phases.items()
        }
        return {
            "schema": PROFILE_SCHEMA,
            "engine": engine,
            "phases": phases,
            "total_seconds": round(
                sum(seconds for seconds, _ in self._phases.values()), 6
            ),
        }

    def write(
        self, path: Union[str, Path], *, engine: str = ""
    ) -> Dict[str, Any]:
        """Validate and write the profile document to ``path``; returns it."""
        doc = validate_profile(self.report(engine=engine))
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return doc


def validate_profile(doc: Any) -> Dict[str, Any]:
    """Check a ``PROFILE.json`` document against the v1 schema.

    Requires the :data:`PROFILE_SCHEMA` marker, a string ``engine``, a
    numeric ``total_seconds`` and a ``phases`` mapping whose values are
    ``{"calls": int >= 1, "seconds": float >= 0}``.  Raises
    :class:`~repro.errors.ConfigurationError` with the first violation;
    returns the document unchanged when valid.
    """
    if not isinstance(doc, dict):
        raise ConfigurationError(
            f"profile must be a JSON object, got {type(doc).__name__}"
        )
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ConfigurationError(
            f"profile schema must be {PROFILE_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("engine"), str):
        raise ConfigurationError("profile 'engine' must be a string")
    total = doc.get("total_seconds")
    if not isinstance(total, (int, float)) or total < 0:
        raise ConfigurationError(
            "profile 'total_seconds' must be a non-negative number"
        )
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        raise ConfigurationError("profile 'phases' must be an object")
    for name, entry in phases.items():
        if not isinstance(entry, dict):
            raise ConfigurationError(f"phase {name!r} must be an object")
        calls = entry.get("calls")
        seconds = entry.get("seconds")
        if not isinstance(calls, int) or calls < 1:
            raise ConfigurationError(
                f"phase {name!r}: 'calls' must be a positive integer"
            )
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ConfigurationError(
                f"phase {name!r}: 'seconds' must be a non-negative number"
            )
        unknown = sorted(set(entry) - {"calls", "seconds"})
        if unknown:
            raise ConfigurationError(
                f"phase {name!r}: unknown field(s) {', '.join(unknown)}"
            )
    return doc

"""Engine interface: one protocol, pluggable execution strategies.

An *engine* executes the paper's two CONGEST protocols on a fixed
network — Algorithm 1 for one edge (:meth:`CongestEngine.run_detect`)
and one full repetition of the multiplexed tester
(:meth:`CongestEngine.run_tester_repetition`) — and returns the same
:class:`~repro.congest.scheduler.RunResult` either way: per-vertex
:class:`~repro.core.algorithm1.DetectionOutcome` outputs plus a
bit-audited :class:`~repro.congest.instrumentation.ExecutionTrace`.

Three backends ship with the reproduction:

``reference``
    The per-node message-passing simulation
    (:class:`~repro.congest.scheduler.SynchronousScheduler` driving
    :class:`~repro.core.phase1.MultiplexedCkProgram` /
    :class:`~repro.core.algorithm1.DetectCkProgram`).  Every message is
    an object, every delivery is audited individually.  This is the
    executable specification.

``fast``
    Batched numpy execution over CSR adjacency arrays
    (:mod:`repro.congest.engine.fast`): same verdicts, same round
    counts, same per-round aggregate audit, at array speed.

``sharded``
    The fast engine's kernels partitioned into contiguous node-range
    shards over ``multiprocessing.shared_memory``
    (:mod:`repro.congest.engine.sharded`), optionally driven by a
    persistent ``fork`` worker pool — the 10^5–10^6-node scaling
    backend.

Engines are constructed per network (so backends can compile/cach
topology) and are required to produce **bit-identical verdicts** for
identical ``(network, k, seed)`` inputs — the contract is enforced by
``repro.testing.engine_equivalence_report`` and
``tests/test_engines.py``.  New backends (async, GPU) plug in by
subclassing :class:`CongestEngine` and registering a factory in
:mod:`repro.congest.engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

from ...errors import ConfigurationError
from ..message import SizeModel
from ..network import Network
from ..scheduler import RunResult

__all__ = ["CongestEngine"]


class CongestEngine(ABC):
    """Executes the paper's protocols on one fixed network.

    Parameters
    ----------
    network:
        The CONGEST network (topology + ID assignment) to run on.
    size_model:
        Bit-cost model for the audit; defaults to the network's own.
    strict_bandwidth:
        Raise :class:`~repro.errors.BandwidthExceededError` if any
        message exceeds the CONGEST budget.
    faults:
        Optional :class:`~repro.congest.faults.FaultModel` deciding the
        fate of every delivery.  Only the ``reference`` backend simulates
        unreliable links; other backends must reject a non-``None``
        model with a clear :class:`~repro.errors.ConfigurationError`.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; ``None`` resolves to the
        process global (disabled by default).  Completed runs export
        their trace aggregates into it via
        :func:`~repro.congest.instrumentation.export_trace`.
    profiler:
        Optional :class:`~repro.congest.engine.profiler.PhaseProfiler`
        attributing wall time to named protocol phases; ``None`` means
        the shared zero-overhead :data:`~repro.congest.engine.profiler
        .NULL_PROFILER`.  Profiling never touches RNG state, so it
        shares telemetry's bit-identity guarantee.
    rep_chunk:
        Tester repetitions per batched kernel pass (spec spelling
        ``chunk=C``, e.g. ``"fast:chunk=8"``).  Backends without batched
        kernels accept and ignore it (this base class iterates
        serially); backends with them must keep every chunk size
        verdict-, trace- and telemetry-identical to serial execution —
        see :meth:`iter_tester_chunk`.
    """

    #: Stable backend name (the value of ``--engine``).
    name: str = "abstract"

    def __init__(
        self,
        network: Network,
        *,
        size_model: Optional[SizeModel] = None,
        strict_bandwidth: bool = False,
        faults=None,
        telemetry=None,
        profiler=None,
        rep_chunk: int = 1,
    ) -> None:
        from ...obs import resolve_telemetry
        from .profiler import NULL_PROFILER

        rep_chunk = int(rep_chunk)
        if rep_chunk < 1:
            raise ConfigurationError(f"rep_chunk must be >= 1, got {rep_chunk}")
        self._net = network
        self._size_model = (
            size_model if size_model is not None else network.default_size_model()
        )
        self._strict = strict_bandwidth
        self._faults = faults
        self._telemetry = resolve_telemetry(telemetry)
        self._profiler = profiler if profiler is not None else NULL_PROFILER
        self.rep_chunk = rep_chunk

    @property
    def network(self) -> Network:
        """The network this engine was compiled for."""
        return self._net

    @property
    def compiled_nbytes(self) -> int:
        """Bytes held by compiled per-network state (cache accounting).

        Zero for backends that compile nothing; the numpy backends
        report their CSR/half-edge arrays (plus shared memory for the
        sharded engine).
        """
        return 0

    # ------------------------------------------------------------------
    @abstractmethod
    def run_tester_repetition(
        self, k: int, rep_seed: int, *, pruner=None
    ) -> RunResult:
        """One repetition of the tester: Phase-1 rank exchange, minimum
        selection, and the prioritized multiplexed Phase 2
        (``1 + ⌊k/2⌋`` communication rounds)."""

    @abstractmethod
    def run_detect(
        self, k: int, edge_ids: Tuple[int, int], *, pruner=None
    ) -> RunResult:
        """Algorithm 1 for a fixed edge, given as a pair of node IDs
        (``⌊k/2⌋`` communication rounds)."""

    def iter_tester_chunk(self, k: int, rep_seeds, *, pruner=None):
        """Lazily yield one :class:`RunResult` per seed in ``rep_seeds``.

        This is the tester's engine entry point.  The base
        implementation is the serial loop (one
        :meth:`run_tester_repetition` per yield); backends with batched
        kernels override it to compute :attr:`rep_chunk` repetitions per
        kernel pass, **deferring each repetition's telemetry export to
        its yield** so that a consumer stopping early (first reject)
        leaves exactly the same exported aggregates as serial execution
        — repetitions computed but never consumed export nothing.
        """
        for rep_seed in rep_seeds:
            yield self.run_tester_repetition(k, int(rep_seed), pruner=pruner)

    # ------------------------------------------------------------------
    def _finish(self, run: RunResult) -> RunResult:
        """Export a completed run's trace aggregates to telemetry."""
        if self._telemetry.enabled:
            from ..instrumentation import export_trace

            export_trace(run.trace, self._telemetry, engine=self.name)
        return run

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")

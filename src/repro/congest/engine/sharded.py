"""The sharded engine: multi-process numpy execution over shared memory.

This backend scales the :mod:`fast <repro.congest.engine.fast>` engine's
batched CSR execution to 10^5–10^6-node graphs by partitioning the node
range into ``P`` contiguous shards and running every per-round kernel
(Phase-1 rank draws, minimum selection, the §3.1 priority multiplexing,
and the per-node sequence work) shard-by-shard — either inline in the
parent process or on a persistent ``fork``-based worker pool.

Design, and why determinism survives the sharding:

* **Contiguous node ranges, balanced by half-edge count.**  Shard ``s``
  owns nodes ``[lo_s, hi_s)`` and therefore the contiguous CSR half-edge
  slice ``[indptr[lo_s], indptr[hi_s])``.  Cut points are chosen so each
  shard carries roughly ``2m/P`` half-edges.
* **Mutable round state lives in ``multiprocessing.shared_memory``.**
  The per-edge rank array, the per-node execution tags ``(R, A, B)``
  (double-buffered against ``bestR/bestA/bestB``), and the
  sending/sending-next flags are numpy views over one shared block, so
  workers read any neighbour's tag directly and write only their own
  node range — disjoint slices, no locks needed.
* **RNG cannot be perturbed by shard boundaries.**  Phase-1 ranks come
  from :class:`~repro.congest.engine.fastrng.RankStreams`, which derives
  one independent ``SeedSequence((rep_seed & 0x7FFFFFFF, node_id))``
  stream per node.  A shard draws exactly the streams of the owners it
  holds, in the same per-owner order as the fast engine — the draws are
  bit-identical no matter how the owners are split.
* **Audits merge with a fixed shard-order reduction.**  Per-round
  message/bit aggregates are summed shard-by-shard in ascending shard
  order; because shards hold ascending disjoint vertex ranges, "first
  shard achieving the strict maximum" reproduces the reference
  scheduler's first-occurrence-of-argmax delivery order, and the first
  strict-bandwidth violation is the globally first one.  The parent —
  not a worker — raises :class:`~repro.errors.BandwidthExceededError`,
  so the error path never crosses a process boundary.
* **Sequences cross shard boundaries through the parent.**  Per-node
  sequence dicts are worker-local; after each round every worker returns
  the sends of its *boundary* nodes (nodes with a neighbour outside the
  shard) and the parent routes them to the shards that hold those nodes
  in their halo.  Round-2 seed sequences are synthesized in-worker
  (every non-isolated node sends ``[(id,)]``), so the first routed round
  is round 3.

The worker pool uses the ``fork`` start method only: workers inherit the
compiled CSR arrays and the shared-memory views at no serialization
cost.  Where ``fork`` is unavailable (or for a non-picklable custom
pruner) the engine transparently runs the same kernels inline, in shard
order, with identical results — the pool changes wall-clock, never
bits.  Verdict/trace equivalence against ``reference``/``fast`` is
asserted by :func:`repro.testing.engine_equivalence_report` and
``tests/test_sharded.py``.

Requirements: numpy, ``multiprocessing.shared_memory`` (Python ≥ 3.8),
and node IDs below ``2**32`` (inherited from the fast engine).
"""

from __future__ import annotations

import os
import pickle
import time
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import (
    BandwidthExceededError,
    CongestError,
    ConfigurationError,
    EngineUnavailableError,
)
from ..instrumentation import ExecutionTrace
from ..network import Network
from ..scheduler import RunResult
from .base import CongestEngine
from .fast import _INF, FastEngine
from .fastrng import RankStreams

__all__ = ["ShardedEngine", "default_shard_count"]

#: Upper bound for the automatic shard count (beyond this the routing
#: overhead on random graphs outweighs the extra parallelism).
_MAX_AUTO_SHARDS = 4


def default_shard_count() -> int:
    """The automatic shard count: ``min(4, cpu_count)``."""
    return max(1, min(_MAX_AUTO_SHARDS, os.cpu_count() or 1))


def _fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _worker_main(worker: "_ShardWorker", conn) -> None:
    """Pool worker loop: receive a command, run the kernel, reply.

    Any kernel exception is stringified and shipped back — the parent
    re-raises it as :class:`~repro.errors.CongestError` — so a worker
    never dies silently mid-protocol.
    """
    while True:
        msg = conn.recv()
        if msg[0] == "stop":
            conn.close()
            return
        try:
            conn.send(("ok", worker.dispatch(msg)))
        except BaseException as exc:  # pragma: no cover - defensive
            import traceback

            conn.send(
                ("error", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            )


def _release_resources(res: Dict[str, Any]) -> None:
    """Tear down pool processes and unlink shared memory (idempotent).

    Fork-safe: an engine inherited by a forked process (campaign pool
    workers fork while cached engines are alive) merely drops its copies
    of the handles — only the creating process may stop and join the
    shard workers or unlink the shared-memory segment.  Sending ``stop``
    from a fork child would kill the *parent's* workers through the
    inherited pipes.
    """
    owns = res.get("owner_pid") == os.getpid()
    for proc, conn in res.get("pool") or ():
        if owns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if not owns:
            continue
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join(timeout=1.0)
    res["pool"] = None
    shm = res.get("shm")
    if shm is not None:
        res["shm"] = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - live numpy views remain
            pass  # the mapping stays until the views die; unlink regardless
        if owns:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class _ShardWorker:
    """Per-shard kernels over the shared round state.

    One instance per shard; in pool mode the instance is inherited by a
    forked worker process (no pickling), in inline mode the parent calls
    it directly.  All mutable protocol state it *writes* is confined to
    its node range ``[lo, hi)`` of the shared arrays; reads may touch
    any index (neighbour tags).
    """

    def __init__(
        self,
        index: int,
        lo: int,
        hi: int,
        engine: "ShardedEngine",
        state: Dict[str, np.ndarray],
    ) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.m = engine.network.graph.m
        self.ids = engine._ids
        self.id_list = engine._id_list
        self.indptr = engine._indptr
        self.indices = engine._indices
        self.degrees = engine._degrees
        self.he_src = engine._he_src
        self.he_dst = engine._he_dst
        self.he_a = engine._he_a
        self.he_b = engine._he_b
        self.edge_of_he = engine._edge_of_he
        self.h0 = int(self.indptr[lo])
        self.h1 = int(self.indptr[hi])
        # Owned-edge draw schedule restricted to this shard's owners.
        # ``_owned_he`` is grouped by ascending owner, so the restriction
        # is a contiguous slice and preserves the global draw order.
        owners, counts = engine._owners, engine._owner_counts
        i0, i1 = np.searchsorted(owners, [lo, hi])
        self.owners_s = owners[i0:i1]
        self.counts_s = counts[i0:i1]
        self.offsets_s = (
            np.concatenate(([0], np.cumsum(self.counts_s[:-1])))
            if len(self.counts_s)
            else np.zeros(0, dtype=np.int64)
        )
        slot0 = int(engine._owner_offsets[i0]) if i0 < len(owners) else 0
        self.owned_he_s = engine._owned_he[slot0: slot0 + int(self.counts_s.sum())]
        # Boundary mask over [lo, hi): nodes with a neighbour outside.
        outside = (self.he_dst[self.h0: self.h1] < lo) | (
            self.he_dst[self.h0: self.h1] >= hi
        )
        boundary = np.zeros(hi - lo, dtype=bool)
        boundary[self.he_src[self.h0: self.h1][outside] - lo] = True
        self.boundary = boundary
        # Audit constants (identical to the fast engine's).
        self.size_model = engine._size_model
        self.bits_tagged_overhead = engine._bits_tagged_overhead
        self.bits_untagged_overhead = engine._bits_untagged_overhead
        self.budget = engine._budget
        self._seq_bits_cache: Dict[int, int] = {}
        # Shared mutable state (numpy views over one shm block).
        self.edge_rank = state["edge_rank"]
        self.R = state["R"]
        self.A = state["A"]
        self.B = state["B"]
        self.bestR = state["bestR"]
        self.bestA = state["bestA"]
        self.bestB = state["bestB"]
        self.sending = state["sending"]
        self.sending_next = state["sending_next"]
        # Per-repetition worker-local state.
        self.k = 0
        self.pruner = None
        self.seed_shortcut = False
        self.sent_seqs: Dict[int, list] = {}

    # ------------------------------------------------------------------
    def dispatch(self, msg: Tuple) -> Tuple[float, Any]:
        """Run one kernel command; return ``(wall_seconds, payload)``."""
        t0 = time.perf_counter()
        cmd = msg[0]
        if cmd == "begin":
            out = self.begin_rep(*msg[1:])
        elif cmd == "beginc":
            out = self.begin_chunk(*msg[1:])
        elif cmd == "select":
            out = self.select_and_seed(*msg[1:])
        elif cmd == "round":
            out = self.phase2_round(*msg[1:])
        elif cmd == "fin":
            out = self.finalize_tester(*msg[1:])
        elif cmd == "dstart":
            out = self.detect_start(*msg[1:])
        elif cmd == "dround":
            out = self.detect_round(*msg[1:])
        elif cmd == "dfin":
            out = self.detect_final(*msg[1:])
        else:  # pragma: no cover - protocol bug
            raise CongestError(f"unknown shard command {cmd!r}")
        return time.perf_counter() - t0, out

    # ------------------------------------------------------------------
    def _seq_bits(self, seq_len: int) -> int:
        """Bit cost of one length-``seq_len`` ID sequence (cached)."""
        bits = self._seq_bits_cache.get(seq_len)
        if bits is None:
            bits = self.size_model.sequence_bits((0,) * seq_len)
            self._seq_bits_cache[seq_len] = bits
        return bits

    def _audit(
        self, senders: np.ndarray, bits: np.ndarray, seqs: np.ndarray
    ) -> Optional[Tuple[int, int, int, int, int, Optional[Tuple[int, int]]]]:
        """This shard's aggregate-audit contribution for one round.

        ``senders`` must be ascending vertex indices within the shard.
        Returns ``(messages, total_bits, max_bits, argmax_vertex,
        max_seqs, first_violation)`` — the fixed shard-order reduction in
        the parent folds these into :class:`RoundStats` exactly as the
        fast engine's :meth:`_record_broadcasts` would.
        """
        if not len(senders):
            return None
        degs = self.degrees[senders]
        imax = int(np.argmax(bits))
        violation = None
        over = np.nonzero(bits > self.budget)[0]
        if len(over):
            violation = (int(senders[over[0]]), int(bits[over[0]]))
        return (
            int(degs.sum()),
            int((bits * degs).sum()),
            int(bits[imax]),
            int(senders[imax]),
            int(seqs.max()),
            violation,
        )

    def _resolve_pruner(self, pruner) -> None:
        from ...core.pruning import HittingSetPruner

        self.pruner = pruner if pruner is not None else HittingSetPruner()
        self.seed_shortcut = type(self.pruner) is HittingSetPruner

    # ------------------------------------------------------------------
    # Tester kernels
    # ------------------------------------------------------------------
    def begin_rep(self, k: int, rep_seed: int, pruner) -> None:
        """Reset per-repetition state and draw this shard's edge ranks.

        The draws replay :meth:`FastEngine._draw_edge_ranks` restricted
        to this shard's owners: per-node streams are independent, so the
        restriction is bit-exact.
        """
        self.k = k
        self._resolve_pruner(pruner)
        self.sent_seqs = {}
        if not len(self.owners_s):
            return None
        hi_rank = self.m * self.m
        seed_word = int(rep_seed) & 0x7FFFFFFF
        streams = RankStreams(seed_word, self.ids[self.owners_s])
        ranks = np.zeros(len(self.owned_he_s), dtype=np.int64)
        counts, offsets = self.counts_s, self.offsets_s
        for j in range(int(counts.max())):
            active = np.nonzero(counts > j)[0]
            draws = streams.integers(active, 1, hi_rank + 1)
            ranks[offsets[active] + j] = draws
        self.edge_rank[0, self.edge_of_he[self.owned_he_s]] = ranks
        return None

    def begin_chunk(self, k: int, rep_seeds: Sequence[int], pruner) -> None:
        """Draw this shard's edge ranks for a whole repetition chunk.

        One batched :class:`RankStreams` pass covers every
        ``(repetition, owner)`` stream; row ``r`` of the shared rank
        stack ends up bit-identical to ``begin_rep(k, rep_seeds[r])``
        because the per-stream draw order is unchanged.
        """
        self.k = k
        self._resolve_pruner(pruner)
        self.sent_seqs = {}
        if not len(self.owners_s):
            return None
        hi_rank = self.m * self.m
        C = len(rep_seeds)
        n_own = len(self.owners_s)
        words = np.asarray(
            [int(s) & 0x7FFFFFFF for s in rep_seeds], dtype=np.uint64
        )
        streams = RankStreams(
            np.repeat(words, n_own), np.tile(self.ids[self.owners_s], C)
        )
        counts = np.tile(self.counts_s, C)
        slots = len(self.owned_he_s)
        offsets = np.tile(self.offsets_s, C) + np.repeat(
            np.arange(C, dtype=np.int64) * slots, n_own
        )
        ranks = np.zeros(C * slots, dtype=np.int64)
        for j in range(int(self.counts_s.max())):
            active = np.nonzero(counts > j)[0]
            draws = streams.integers(active, 1, hi_rank + 1)
            ranks[offsets[active] + j] = draws
        cols = self.edge_of_he[self.owned_he_s]
        self.edge_rank[:C, cols] = ranks.reshape(C, slots)
        return None

    def select_and_seed(self, rep: int = 0):
        """Round 2 for this shard: per-node minimum incident tag, then
        every non-isolated node broadcasts its singleton seed.  ``rep``
        names the row of the shared rank stack to read (chunked runs
        pre-draw several repetitions' ranks)."""
        lo, hi, h0, h1 = self.lo, self.hi, self.h0, self.h1
        src = self.he_src[h0:h1]
        he_rank = self.edge_rank[rep, self.edge_of_he[h0:h1]]
        order = np.lexsort((self.he_b[h0:h1], self.he_a[h0:h1], he_rank, src))
        sorted_src = src[order]
        self.R[lo:hi] = _INF
        self.A[lo:hi] = _INF
        self.B[lo:hi] = _INF
        present, first = np.unique(sorted_src, return_index=True)
        self.R[present] = he_rank[order][first]
        self.A[present] = self.he_a[h0:h1][order][first]
        self.B[present] = self.he_b[h0:h1][order][first]
        send_local = self.degrees[lo:hi] > 0
        self.sending[lo:hi] = send_local
        senders = np.nonzero(send_local)[0] + lo
        self.sent_seqs = {
            int(v): [(self.id_list[v],)] for v in senders.tolist()
        }
        seed_bits = self.bits_tagged_overhead + self._seq_bits(1)
        return self._audit(
            senders,
            np.full(len(senders), seed_bits, dtype=np.int64),
            np.ones(len(senders), dtype=np.int64),
        )

    def _mux_local(self):
        """§3.1 priority rule restricted to this shard's receivers.

        Neighbour tags are read straight from the shared arrays (they
        may live in other shards); winners are written back only for
        ``[lo, hi)``.  Returns the surviving half-edge matches as
        ``(receivers, senders)`` plus the local winning tags.
        """
        lo, hi, h0, h1 = self.lo, self.hi, self.h0, self.h1
        src = self.he_src[h0:h1]
        dst = self.he_dst[h0:h1]
        R, A, B = self.R, self.A, self.B
        send_mask = self.sending[dst]
        cr = np.where(send_mask, R[dst], _INF)
        ca = np.where(send_mask, A[dst], _INF)
        cb = np.where(send_mask, B[dst], _INF)
        local = np.arange(lo, hi, dtype=np.int64)
        owners = np.concatenate([src, local])
        kr = np.concatenate([cr, R[lo:hi]])
        ka = np.concatenate([ca, A[lo:hi]])
        kb = np.concatenate([cb, B[lo:hi]])
        order = np.lexsort((kb, ka, kr, owners))
        sorted_owners = owners[order]
        first = np.searchsorted(sorted_owners, local, side="left")
        bR = kr[order][first]
        bA = ka[order][first]
        bB = kb[order][first]
        matches = np.nonzero(
            send_mask
            & (R[dst] == bR[src - lo])
            & (A[dst] == bA[src - lo])
            & (B[dst] == bB[src - lo])
        )[0]
        return src[matches], dst[matches], bR, bA, bB

    def _gather(
        self, receivers: np.ndarray, senders: np.ndarray, halo
    ) -> Dict[int, list]:
        """Bucket surviving senders' sequences per receiving node.

        ``halo`` maps out-of-shard senders to their sequences; ``None``
        means round 2's closed form (every sender's send is its
        singleton seed), which needs no routing at all.
        """
        lo, hi = self.lo, self.hi
        recv: Dict[int, list] = {}
        for v, u in zip(receivers.tolist(), senders.tolist()):
            if lo <= u < hi:
                seqs = self.sent_seqs.get(u)
            elif halo is None:
                seqs = [(self.id_list[u],)]
            else:
                seqs = halo.get(u)
            if not seqs:
                continue
            bucket = recv.get(v)
            if bucket is None:
                recv[v] = list(seqs)
            else:
                bucket.extend(seqs)
        return recv

    def _boundary_out(self) -> Dict[int, list]:
        """The subset of this round's sends other shards may need."""
        lo = self.lo
        boundary = self.boundary
        return {v: s for v, s in self.sent_seqs.items() if boundary[v - lo]}

    def phase2_round(self, t: int, halo):
        """One multiplexed Phase-2 round for this shard's receivers."""
        from ...core.algorithm1 import process_phase2_round
        from ...core.sequences import sort_sequences

        lo, hi = self.lo, self.hi
        receivers, senders, bR, bA, bB = self._mux_local()
        recv = self._gather(receivers, senders, halo)
        self.bestR[lo:hi] = bR
        self.bestA[lo:hi] = bA
        self.bestB[lo:hi] = bB
        new_sent: Dict[int, list] = {}
        send_next = np.zeros(hi - lo, dtype=bool)
        if t == 2 and self.seed_shortcut:
            keep = self.k - 1
            for v, lst in recv.items():
                lst.sort()
                my = self.id_list[v]
                new_sent[v] = [s + (my,) for s in lst[:keep]]
                send_next[v - lo] = True
        else:
            for v, lst in recv.items():
                send = process_phase2_round(
                    self.id_list[v], sort_sequences(lst), self.k, t, self.pruner
                )
                if send:
                    new_sent[v] = send
                    send_next[v - lo] = True
        self.sending_next[lo:hi] = send_next
        self.sent_seqs = new_sent
        per_seq = self._seq_bits(t)
        sender_arr = np.fromiter(new_sent, dtype=np.int64, count=len(new_sent))
        sender_arr.sort()
        lens = np.fromiter(
            (len(new_sent[int(v)]) for v in sender_arr),
            dtype=np.int64,
            count=len(sender_arr),
        )
        audit = self._audit(
            sender_arr, self.bits_tagged_overhead + lens * per_seq, lens
        )
        return audit, self._boundary_out()

    def finalize_tester(self, halo):
        """The final (communication-free) decision for this shard."""
        from ...core.algorithm1 import find_detection_evidence
        from ...core.sequences import sort_sequences

        lo = self.lo
        receivers, senders, bR, bA, bB = self._mux_local()
        recv = self._gather(receivers, senders, halo)
        R, A, B = self.R, self.A, self.B
        rejects: Dict[int, tuple] = {}
        for v, lst in recv.items():
            received = sort_sequences(lst)
            own = self.sent_seqs.get(v, [])
            if own and not (
                R[v] == bR[v - lo] and A[v] == bA[v - lo] and B[v] == bB[v - lo]
            ):
                own = []  # stale tag: the node switched executions
            cycle = find_detection_evidence(self.id_list[v], self.k, own, received)
            if cycle is not None:
                rejects[int(v)] = cycle
        return rejects

    # ------------------------------------------------------------------
    # Detect (Algorithm 1) kernels
    # ------------------------------------------------------------------
    def detect_start(self, k: int, endpoints: Sequence[Tuple[int, int]], pruner):
        """Round 1 of Algorithm 1: endpoints in this shard broadcast."""
        self.k = k
        self._resolve_pruner(pruner)
        sent: Dict[int, list] = {}
        for vtx, nid in endpoints:
            if self.lo <= vtx < self.hi and self.degrees[vtx] > 0:
                sent[vtx] = [(nid,)]
        self.sent_seqs = sent
        bits = self.bits_untagged_overhead + self._seq_bits(1)
        audit = self._audit(
            np.array(sorted(sent), dtype=np.int64),
            np.full(len(sent), bits, dtype=np.int64),
            np.ones(len(sent), dtype=np.int64),
        )
        return audit, self._boundary_out()

    def _deliver(self, halo) -> Dict[int, list]:
        """Flood local + halo senders' sequences to in-shard receivers."""
        lo, hi = self.lo, self.hi
        indptr, indices = self.indptr, self.indices
        recv: Dict[int, list] = {}
        sources = [self.sent_seqs] if halo is None else [self.sent_seqs, halo]
        for seq_map in sources:
            for s, seqs in seq_map.items():
                for w in indices[indptr[s]: indptr[s + 1]].tolist():
                    if not lo <= w < hi:
                        continue
                    bucket = recv.get(w)
                    if bucket is None:
                        recv[w] = list(seqs)
                    else:
                        bucket.extend(seqs)
        return recv

    def detect_round(self, t: int, halo):
        """One Phase-2 round of Algorithm 1 for this shard."""
        from ...core.algorithm1 import process_phase2_round
        from ...core.sequences import sort_sequences

        recv = self._deliver(halo)
        new_sent: Dict[int, list] = {}
        for v, lst in recv.items():
            send = process_phase2_round(
                self.id_list[v], sort_sequences(lst), self.k, t, self.pruner
            )
            if send:
                new_sent[v] = send
        self.sent_seqs = new_sent
        per_seq = self._seq_bits(t)
        sender_arr = np.fromiter(new_sent, dtype=np.int64, count=len(new_sent))
        sender_arr.sort()
        lens = np.fromiter(
            (len(new_sent[int(v)]) for v in sender_arr),
            dtype=np.int64,
            count=len(sender_arr),
        )
        audit = self._audit(
            sender_arr, self.bits_untagged_overhead + lens * per_seq, lens
        )
        return audit, self._boundary_out()

    def detect_final(self, halo):
        """Final decision of Algorithm 1 for this shard's receivers."""
        from ...core.algorithm1 import find_detection_evidence
        from ...core.sequences import sort_sequences

        recv = self._deliver(halo)
        rejects: Dict[int, tuple] = {}
        for v, lst in recv.items():
            received = sort_sequences(lst)
            cycle = find_detection_evidence(
                self.id_list[v], self.k, self.sent_seqs.get(v, []), received
            )
            if cycle is not None:
                rejects[int(v)] = cycle
        return rejects


class ShardedEngine(FastEngine):
    """Sharded shared-memory execution (same verdicts, multi-process).

    Extra parameters on top of :class:`FastEngine`:

    shards:
        Number of contiguous node-range shards (``None`` → automatic,
        :func:`default_shard_count`; clamped to ``n``).  Must be ≥ 1.
    use_pool:
        ``None`` (default) runs a ``fork`` worker pool when the platform
        supports it and more than one shard exists, and falls back to
        inline execution otherwise.  ``True`` requires the pool (raises
        :class:`~repro.errors.EngineUnavailableError` without ``fork``);
        ``False`` forces inline execution.  Pool or inline, the results
        are bit-identical.
    """

    name = "sharded"

    def __init__(
        self,
        network: Network,
        *,
        shards: Optional[int] = None,
        use_pool: Optional[bool] = None,
        **kwargs,
    ) -> None:
        super().__init__(network, **kwargs)
        if shards is None:
            shards = default_shard_count()
        shards = int(shards)
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        n = network.graph.n
        self._requested_shards = shards
        if use_pool is None:
            self._use_pool = shards > 1 and _fork_available()
        else:
            if use_pool and not _fork_available():
                raise EngineUnavailableError(
                    "the sharded engine's worker pool needs the 'fork' "
                    "start method, which this platform lacks; run with "
                    "use_pool=False (inline) or another engine"
                )
            self._use_pool = bool(use_pool)
        self._bounds = self._plan_shards(min(shards, max(n, 1)))
        self._state, self._shm, self._shm_bytes = self._alloc_state(n)
        self._workers = [
            _ShardWorker(i, int(lo), int(hi), self, self._state)
            for i, (lo, hi) in enumerate(self._bounds)
        ]
        # Halo membership per shard: outside nodes adjacent to the shard.
        self._halo_masks: List[np.ndarray] = []
        for (lo, hi), w in zip(self._bounds, self._workers):
            mask = np.zeros(n, dtype=bool)
            ext = self._he_dst[w.h0: w.h1]
            mask[ext[(ext < lo) | (ext >= hi)]] = True
            self._halo_masks.append(mask)
        self._pool: Optional[List[Tuple[Any, Any]]] = None
        self._res: Dict[str, Any] = {
            "pool": None, "shm": self._shm, "owner_pid": os.getpid(),
        }
        self._finalizer = weakref.finalize(self, _release_resources, self._res)
        if self._telemetry.enabled:
            self._telemetry.gauge(
                "repro_shard_shm_bytes",
                "Shared-memory block size allocated by the sharded "
                "engine, in bytes (high-water mark).",
            ).set_max(self._shm_bytes)
            self._telemetry.gauge(
                "repro_shard_count",
                "Effective shard count of the most recent sharded-engine "
                "compile.",
            ).set(len(self._workers))

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """The effective shard count (requested, clamped to ``n``)."""
        return len(self._workers)

    @property
    def uses_pool(self) -> bool:
        """Whether dispatches may run on the fork worker pool."""
        return self._use_pool

    @property
    def compiled_nbytes(self) -> int:
        """Compiled CSR bytes plus the shared-memory round state."""
        return super().compiled_nbytes + self._shm_bytes

    def _plan_shards(self, shards: int) -> List[Tuple[int, int]]:
        """Cut ``[0, n)`` into contiguous ranges balanced by half-edges."""
        n = self._net.graph.n
        if n == 0 or shards <= 1:
            return [(0, max(n, 0))] if n else [(0, 0)]
        total = int(self._indptr[-1])
        targets = [total * s // shards for s in range(1, shards)]
        cuts = np.searchsorted(self._indptr, targets, side="left")
        bounds = np.unique(np.concatenate(([0], cuts, [n])))
        return [
            (int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1)
        ]

    def _alloc_state(self, n: int):
        """One shared-memory block holding all mutable round state.

        The rank array is a ``(rep_chunk, m)`` stack so chunked runs can
        pre-draw a whole chunk of repetitions' ranks in one worker pass;
        serial runs use row 0 only.
        """
        from multiprocessing import shared_memory

        m = self._net.graph.m
        cap = max(1, self.rep_chunk)
        self._rep_capacity = cap
        int_fields = ("R", "A", "B", "bestR", "bestA", "bestB")
        nbytes = 8 * (cap * m + 6 * n) + 2 * n
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        state: Dict[str, np.ndarray] = {}
        state["edge_rank"] = np.ndarray(
            (cap, m), dtype=np.int64, buffer=shm.buf, offset=0
        )
        off = 8 * cap * m
        for field in int_fields:
            count = n
            state[field] = np.ndarray(
                (count,), dtype=np.int64, buffer=shm.buf, offset=off
            )
            off += 8 * count
        for field in ("sending", "sending_next"):
            state[field] = np.ndarray(
                (n,), dtype=np.bool_, buffer=shm.buf, offset=off
            )
            off += n
        for arr in state.values():
            arr[:] = 0
        return state, shm, off

    # ------------------------------------------------------------------
    # Pool + dispatch machinery
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        import multiprocessing

        if self._pool is not None:
            return
        ctx = multiprocessing.get_context("fork")
        pool = []
        for w in self._workers:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(w, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            pool.append((proc, parent_conn))
        self._pool = pool
        self._res["pool"] = pool
        if self._telemetry.enabled:
            self._telemetry.counter(
                "repro_shard_pool_spawns_total",
                "Worker processes spawned by sharded-engine pools.",
            ).inc(len(pool))

    def _pool_for(self, pruner) -> bool:
        """Whether this run's dispatches can use the worker pool.

        A custom pruner must cross the pipe, so it has to pickle; when
        it does not, the run silently executes inline (identical bits).
        """
        if not self._use_pool:
            return False
        if pruner is None:
            return True
        try:
            pickle.dumps(pruner)
        except Exception:
            return False
        return True

    def _dispatch(self, kind: str, cmds: Sequence[Tuple], pooled: bool):
        """Run one command per shard; collect replies in shard order."""
        tel = self._telemetry
        if tel.enabled:
            tel.counter(
                "repro_shard_dispatch_total",
                "Kernel dispatches to shard workers, by command kind.",
                ("kind",),
            ).inc(len(cmds), kind=kind)
        replies = []
        if pooled:
            self._ensure_pool()
            assert self._pool is not None
            for (_, conn), cmd in zip(self._pool, cmds):
                conn.send(cmd)
            for proc, conn in self._pool:
                status, payload = conn.recv()
                if status != "ok":
                    raise CongestError(f"sharded worker failed: {payload}")
                replies.append(payload)
        else:
            for worker, cmd in zip(self._workers, cmds):
                replies.append(worker.dispatch(cmd))
        if tel.enabled:
            hist = tel.histogram(
                "repro_shard_round_seconds",
                "Per-shard kernel wall time, by shard index.",
                ("shard",),
                buckets=_LATENCY_BUCKETS,
            )
            for i, (wall, _) in enumerate(replies):
                hist.observe(wall, shard=str(i))
        if self._profiler.enabled:
            # Worker kernels time themselves and ship the wall seconds
            # back with each reply (the existing Pipe protocol), so
            # per-shard compute is attributed without extra IPC.
            for i, (wall, _) in enumerate(replies):
                self._profiler.add(f"shard{i}_compute", wall)
        return [payload for _, payload in replies]

    def close(self) -> None:
        """Shut down the worker pool and release shared memory."""
        self._res["pool"] = self._pool
        self._pool = None
        self._finalizer()

    def __enter__(self) -> "ShardedEngine":
        """Context-manager entry (returns the engine itself)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: always :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _fold_audits(self, stats, round_index: int, parts) -> None:
        """Fold per-shard audit contributions in fixed shard order.

        Ascending shards hold ascending vertex ranges, so summing in
        shard order and keeping the *first* strict maximum reproduces
        the reference scheduler's delivery-order argmax, and the first
        recorded violation is the globally first over-budget sender.
        The parent raises the strict-mode error so the exception never
        needs to cross a process boundary.
        """
        with self._profiler.phase("parent_fold"):
            best_bits = -1
            best_v = -1
            max_seqs = 0
            violation = None
            for part in parts:
                if part is None:
                    continue
                messages, total, mb, mv, ms, pv = part
                stats.messages += messages
                stats.total_bits += total
                if mb > best_bits:
                    best_bits, best_v = mb, mv
                if ms > max_seqs:
                    max_seqs = ms
                if violation is None and pv is not None:
                    violation = pv
            if best_v >= 0:
                stats.max_message_bits = best_bits
                stats.max_edge = (
                    self._id_list[best_v],
                    self._first_neighbor_id(best_v),
                )
                stats.max_sequences = max_seqs
        if self._strict and violation is not None:
            w, wbits = violation
            raise BandwidthExceededError(
                round_index,
                (self._id_list[w], self._first_neighbor_id(w)),
                wbits,
                self._budget,
            )

    def _route_halos(self, boundary_parts) -> List[Dict[int, list]]:
        """Route boundary sends to every shard holding the sender in its
        halo (parent-side; shard key ranges are disjoint)."""
        with self._profiler.phase("halo_routing"):
            merged: Dict[int, list] = {}
            for part in boundary_parts:
                merged.update(part)
            per_shard: List[Dict[int, list]] = []
            if not merged:
                return [{} for _ in self._workers]
            us = np.fromiter(merged, dtype=np.int64, count=len(merged))
            for mask in self._halo_masks:
                sel = us[mask[us]]
                per_shard.append(
                    {int(u): merged[int(u)] for u in sel.tolist()}
                )
            return per_shard

    def _swap_state(self) -> None:
        """Publish the round's winners: best tags and next-round senders
        become current (one parent-side copy, after the barrier)."""
        st = self._state
        np.copyto(st["R"], st["bestR"])
        np.copyto(st["A"], st["bestA"])
        np.copyto(st["B"], st["bestB"])
        np.copyto(st["sending"], st["sending_next"])

    # ------------------------------------------------------------------
    # Engine entry points
    # ------------------------------------------------------------------
    def run_tester_repetition(
        self, k: int, rep_seed: int, *, pruner=None
    ) -> RunResult:
        """One tester repetition, sharded: rank draws, selection and the
        multiplexed rounds run shard-by-shard (pooled or inline), audits
        merge in fixed shard order.  Verdict- and trace-identical to the
        ``reference``/``fast`` engines under the same ``rep_seed``."""
        from ...core.algorithm1 import DetectionOutcome
        from ...core.phase1 import protocol_rounds

        self._check_k(k)
        g = self._net.graph
        n = g.n
        trace = ExecutionTrace(n=n, m=g.m, size_model=self._size_model)
        accept = DetectionOutcome(rejects=False)
        outputs: Dict[int, DetectionOutcome] = {v: accept for v in range(n)}
        if g.m == 0:
            for r in range(1, protocol_rounds(k) + 1):
                self._begin_round(trace, r)
            return RunResult(outputs, trace)

        pooled = self._pool_for(pruner)
        P = len(self._workers)
        self._dispatch("begin", [("begin", k, rep_seed, pruner)] * P, pooled)
        return self._finish(self._run_tester_rounds(k, 0, pooled))

    def _run_tester_rounds(self, k: int, rep: int, pooled: bool) -> RunResult:
        """Rounds 1..fin of one repetition whose ranks are already drawn
        into row ``rep`` of the shared rank stack.  Returns the raw
        (unexported) :class:`RunResult`."""
        from ...core.algorithm1 import DetectionOutcome
        from ...core.phase1 import protocol_rounds

        g = self._net.graph
        n = g.n
        trace = ExecutionTrace(n=n, m=g.m, size_model=self._size_model)
        accept = DetectionOutcome(rejects=False)
        outputs: Dict[int, DetectionOutcome] = {v: accept for v in range(n)}
        P = len(self._workers)

        # Round 1 — ranks cross every edge; the audit is uniform, so the
        # parent records it directly (exactly as the fast engine does).
        stats = self._begin_round(trace, 1)
        bits = self._bits_rank_msg
        stats.messages = g.m
        stats.total_bits = bits * g.m
        stats.max_message_bits = bits
        first_owner = int(self._owners[0])
        first_he = int(self._owned_he[0])
        stats.max_edge = (self._id_list[first_owner], int(self._he_b[first_he]))
        if self._strict and bits > self._budget:
            raise BandwidthExceededError(1, stats.max_edge, bits, self._budget)

        # Round 2 — minimum selection + seed broadcast, per shard.
        stats = self._begin_round(trace, 2)
        parts = self._dispatch("select", [("select", rep)] * P, pooled)
        self._fold_audits(stats, 2, parts)

        halos: Optional[List[Dict[int, list]]] = None  # None → seed round
        for t in range(2, k // 2 + 1):
            stats = self._begin_round(trace, t + 1)
            cmds = [
                ("round", t, None if halos is None else halos[i])
                for i in range(P)
            ]
            replies = self._dispatch("round", cmds, pooled)
            self._fold_audits(stats, t + 1, [audit for audit, _ in replies])
            self._swap_state()
            halos = self._route_halos([bout for _, bout in replies])

        cmds = [
            ("fin", None if halos is None else halos[i]) for i in range(P)
        ]
        for rejects in self._dispatch("fin", cmds, pooled):
            for v, cycle in rejects.items():
                outputs[v] = DetectionOutcome(rejects=True, cycle=cycle)
        assert trace.num_rounds == protocol_rounds(k)
        return RunResult(outputs, trace)

    def iter_tester_chunk(self, k: int, rep_seeds, *, pruner=None):
        """Chunked tester iteration: each shard pre-draws a whole chunk
        of repetitions' ranks in one batched worker pass (``beginc``),
        then the rounds replay per repetition against the pre-drawn
        rank rows.  Telemetry export is deferred to each yield; the
        serial base path handles chunk size 1, strict audits, and
        edgeless graphs.  Note: the per-chunk ``beginc`` dispatch
        replaces per-repetition ``begin`` dispatches, so the
        engine-internal ``repro_shard_dispatch_total`` diagnostics
        differ from serial runs; protocol-level counters and traces do
        not.
        """
        chunk = min(self.rep_chunk, self._rep_capacity)
        if chunk <= 1 or self._strict or self._net.graph.m == 0:
            yield from CongestEngine.iter_tester_chunk(
                self, k, rep_seeds, pruner=pruner
            )
            return
        self._check_k(k)
        seeds = [int(s) for s in rep_seeds]
        pooled = self._pool_for(pruner)
        P = len(self._workers)
        for i in range(0, len(seeds), chunk):
            batch = seeds[i: i + chunk]
            self._dispatch(
                "beginc", [("beginc", k, batch, pruner)] * P, pooled
            )
            for r in range(len(batch)):
                yield self._finish(self._run_tester_rounds(k, r, pooled))

    # ------------------------------------------------------------------
    def run_detect(
        self, k: int, edge_ids: Tuple[int, int], *, pruner=None
    ) -> RunResult:
        """Algorithm 1 for one edge, sharded: frontier floods run per
        shard with parent-routed boundary sequences."""
        from ...core.algorithm1 import DetectionOutcome, phase2_rounds

        self._check_k(k)
        u_id, v_id = edge_ids
        if u_id == v_id:
            raise ConfigurationError("edge endpoints must differ")
        g = self._net.graph
        n = g.n
        endpoints = [(self._net.vertex_of(nid), nid) for nid in (u_id, v_id)]
        trace = ExecutionTrace(n=n, m=g.m, size_model=self._size_model)
        accept = DetectionOutcome(rejects=False)
        outputs: Dict[int, DetectionOutcome] = {v: accept for v in range(n)}

        pooled = self._pool_for(pruner)
        P = len(self._workers)
        stats = self._begin_round(trace, 1)
        replies = self._dispatch(
            "dstart", [("dstart", k, endpoints, pruner)] * P, pooled
        )
        self._fold_audits(stats, 1, [audit for audit, _ in replies])
        halos = self._route_halos([bout for _, bout in replies])

        for t in range(2, phase2_rounds(k) + 1):
            stats = self._begin_round(trace, t)
            replies = self._dispatch(
                "dround", [("dround", t, halos[i]) for i in range(P)], pooled
            )
            self._fold_audits(stats, t, [audit for audit, _ in replies])
            halos = self._route_halos([bout for _, bout in replies])

        for rejects in self._dispatch(
            "dfin", [("dfin", halos[i]) for i in range(P)], pooled
        ):
            for v, cycle in rejects.items():
                outputs[v] = DetectionOutcome(rejects=True, cycle=cycle)
        return self._finish(RunResult(outputs, trace))


#: Latency-style histogram buckets for per-shard kernel timings.
_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

"""Vectorized replication of numpy's per-node random streams.

The reference engine gives every node its own
``np.random.default_rng(SeedSequence((rep_seed, my_id)))`` and draws one
bounded integer per owned edge (``Generator.integers(1, m**2 + 1)``).
Constructing *n* Generator objects per repetition costs tens of
milliseconds at n = 2000 — more than the fast engine's entire round
budget.  This module re-implements the exact same pipeline as batched
numpy array operations over all nodes at once:

1. **SeedSequence hashing** — O'Neill's ``seed_seq`` entropy-pool mix
   (the algorithm behind :class:`numpy.random.SeedSequence`), vectorized
   across nodes.  The hash-constant schedule is data-independent, so the
   per-step multipliers are scalars and the pool updates are plain
   uint32 array arithmetic.
2. **PCG64 initialization and stepping** — the 128-bit LCG state is kept
   as four 32-bit limbs in uint64 arrays; ``state * MULT + inc`` is a
   4-limb schoolbook multiply, and the XSL-RR output function produces
   one uint64 per node per step.
3. **Bounded draws** — numpy's ``Generator.integers`` bounded paths,
   including Lemire rejection sampling (32-bit buffered and 64-bit
   variants) and the power-of-two special cases, with the same
   buffered-halves consumption order as ``pcg64_next32``.

Every path is asserted bit-identical to numpy in
``tests/test_engines.py`` (``TestFastRngExactness``); the fast engine's
verdict-equivalence guarantee rests on this module.

Scope: entropy values must fit in one 32-bit word (node IDs < 2**32 and
the masked repetition seed, which is always < 2**31).  Callers fall back
to per-node Generators outside that range.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["RankStreams", "MAX_UINT32_ENTROPY"]

# --- SeedSequence constants (O'Neill seed_seq / numpy bit_generator) ---
_INIT_A = np.uint64(0x43B0D7E5)
_MULT_A = np.uint64(0x931E8875)
_INIT_B = np.uint64(0x8B51F9DD)
_MULT_B = np.uint64(0x58F38DED)
_MIX_MULT_L = np.uint64(0xCA01F9DD)
_MIX_MULT_R = np.uint64(0x4973F715)
_XSHIFT = np.uint64(16)
_POOL_SIZE = 4
_U32 = np.uint64(0xFFFFFFFF)

# --- PCG64 constants ---
#: PCG_DEFAULT_MULTIPLIER_128 split into four 32-bit limbs, little-endian.
_PCG_MULT = (0x9FCCF645, 0x4385DF64, 0x1FC65DA4, 0x2360ED05)

MAX_UINT32_ENTROPY = 1 << 32


def _u32_arr(x) -> np.ndarray:
    return np.asarray(x, dtype=np.uint64) & _U32


class _HashConst:
    """The data-independent hash-constant schedule of seed_seq."""

    def __init__(self, init: np.uint64) -> None:
        self._c = np.uint64(init)

    def step(self) -> np.uint64:
        """Return the post-update constant (seed_seq multiplies first)."""
        self._c = (self._c * _MULT_A) & _U32
        return self._c


def _hashmix(value: np.ndarray, const: _HashConst) -> np.ndarray:
    """seed_seq's ``hashmix``: value ^= c; c *= MULT_A; value *= c; xshift."""
    value = value ^ const._c
    c = const.step()
    value = (value * c) & _U32
    value ^= value >> _XSHIFT
    return value


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    res = ((x * _MIX_MULT_L) - (y * _MIX_MULT_R)) & _U32
    res ^= res >> _XSHIFT
    return res


def _seed_pools(seed_word, ids: np.ndarray) -> np.ndarray:
    """Entropy pools of ``SeedSequence((seed_word, id))`` for every id.

    ``seed_word`` is either one shared first entropy word or an array of
    per-stream words (one per id) — the latter is how the chunked rank
    kernels stack several repetitions' streams into one batch.  Returns
    an ``(n, 4)`` uint64 array of 32-bit pool words.
    """
    n = len(ids)
    if np.ndim(seed_word) == 0:
        word0 = np.full(n, int(seed_word) & 0xFFFFFFFF, dtype=np.uint64)
    else:
        word0 = _u32_arr(seed_word)
    entropy = [word0, _u32_arr(ids)]
    pool = np.zeros((n, _POOL_SIZE), dtype=np.uint64)
    const = _HashConst(_INIT_A)
    for i in range(_POOL_SIZE):
        src = entropy[i] if i < len(entropy) else np.zeros(n, dtype=np.uint64)
        pool[:, i] = _hashmix(src, const)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[:, i_dst] = _mix(pool[:, i_dst], _hashmix(pool[:, i_src], const))
    # entropy fits inside the pool (2 words <= 4): no tail loop needed.
    return pool


def _generate_state_words(pool: np.ndarray, n_words64: int) -> np.ndarray:
    """``SeedSequence.generate_state(n_words64, np.uint64)`` for all pools.

    Returns ``(n, n_words64)`` uint64.
    """
    n = pool.shape[0]
    n32 = n_words64 * 2
    out32 = np.zeros((n, n32), dtype=np.uint64)
    hash_const = np.uint64(_INIT_B)
    for i_dst in range(n32):
        data = pool[:, i_dst % _POOL_SIZE].copy()
        data ^= hash_const
        hash_const = (hash_const * _MULT_B) & _U32
        data = (data * hash_const) & _U32
        data ^= data >> _XSHIFT
        out32[:, i_dst] = data
    # uint32 pairs viewed as uint64, little-endian: low word first.
    out = np.empty((n, n_words64), dtype=np.uint64)
    for j in range(n_words64):
        out[:, j] = out32[:, 2 * j] | (out32[:, 2 * j + 1] << np.uint64(32))
    return out


# ---------------------------------------------------------------------------
# PCG64 as 32-bit limbs
# ---------------------------------------------------------------------------
def _mul128(limbs: np.ndarray, const_limbs: Tuple[int, ...]) -> np.ndarray:
    """``(n, 4)`` limb arrays times a 128-bit constant, mod 2**128."""
    out = np.zeros_like(limbs)
    carry = np.zeros(limbs.shape[0], dtype=np.uint64)
    for k in range(4):
        acc = carry.copy()
        carry = np.zeros_like(carry)
        for i in range(k + 1):
            p = limbs[:, i] * np.uint64(const_limbs[k - i])
            acc += p & _U32
            carry += p >> np.uint64(32)
        carry += acc >> np.uint64(32)
        out[:, k] = acc & _U32
    return out


def _add128(limbs: np.ndarray, other: np.ndarray) -> np.ndarray:
    out = np.zeros_like(limbs)
    carry = np.zeros(limbs.shape[0], dtype=np.uint64)
    for k in range(4):
        s = limbs[:, k] + other[:, k] + carry
        out[:, k] = s & _U32
        carry = s >> np.uint64(32)
    return out


def _limbs_from_words(high: np.ndarray, low: np.ndarray) -> np.ndarray:
    """(n,) high/low uint64 words -> (n, 4) little-endian 32-bit limbs."""
    n = len(high)
    limbs = np.empty((n, 4), dtype=np.uint64)
    limbs[:, 0] = low & _U32
    limbs[:, 1] = low >> np.uint64(32)
    limbs[:, 2] = high & _U32
    limbs[:, 3] = high >> np.uint64(32)
    return limbs


class RankStreams:
    """Batched, bit-exact equivalents of per-node numpy Generators.

    Parameters
    ----------
    seed_word:
        The shared first entropy word (the tester uses
        ``rep_seed & 0x7FFFFFFF``), or an array of one word per stream —
        the chunked kernels pass ``repeat(rep_words, owners)`` to run
        several repetitions' streams side by side in one batch.
    ids:
        One CONGEST ID per stream; stream *i* replicates
        ``np.random.default_rng(np.random.SeedSequence((seed_word, ids[i])))``
        (with ``seed_word[i]`` in the per-stream-word form).
    """

    def __init__(self, seed_word, ids: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.uint64)
        if ids.size and int(ids.max()) >= MAX_UINT32_ENTROPY:
            raise ValueError("RankStreams requires IDs < 2**32")
        words = _generate_state_words(_seed_pools(seed_word, ids), 4)
        initstate = _limbs_from_words(words[:, 0], words[:, 1])
        initseq = _limbs_from_words(words[:, 2], words[:, 3])
        # pcg_setseq_128_srandom: inc = (initseq << 1) | 1;
        # state = ((0 * M + inc) + initstate) * M + inc.
        inc = np.zeros_like(initseq)
        carry = np.zeros(len(ids), dtype=np.uint64)
        for k in range(4):
            shifted = ((initseq[:, k] << np.uint64(1)) & _U32) | carry
            carry = initseq[:, k] >> np.uint64(31)
            inc[:, k] = shifted
        inc[:, 0] |= np.uint64(1)
        self._inc = inc
        state = _add128(inc, initstate)
        state = _add128(_mul128(state, _PCG_MULT), inc)
        self._state = state
        # pcg64_next32 buffering: low half first, high half stored.
        self._has32 = np.zeros(len(ids), dtype=bool)
        self._buf32 = np.zeros(len(ids), dtype=np.uint64)

    def __len__(self) -> int:
        return len(self._has32)

    # ------------------------------------------------------------------
    def _next64(self, idx: np.ndarray) -> np.ndarray:
        """Advance streams ``idx`` and return their XSL-RR outputs."""
        st = _add128(_mul128(self._state[idx], _PCG_MULT), self._inc[idx])
        self._state[idx] = st
        low = st[:, 0] | (st[:, 1] << np.uint64(32))
        high = st[:, 2] | (st[:, 3] << np.uint64(32))
        x = high ^ low
        rot = st[:, 3] >> np.uint64(26)  # top 6 bits of the 128-bit state
        return (x >> rot) | (x << ((np.uint64(64) - rot) & np.uint64(63)))

    def _next32(self, idx: np.ndarray) -> np.ndarray:
        """Buffered 32-bit halves, exactly like ``pcg64_next32``."""
        out = np.empty(len(idx), dtype=np.uint64)
        has = self._has32[idx]
        buffered = idx[has]
        out[has] = self._buf32[buffered]
        self._has32[buffered] = False
        fresh = idx[~has]
        if len(fresh):
            raw = self._next64(fresh)
            out[~has] = raw & _U32
            self._buf32[fresh] = raw >> np.uint64(32)
            self._has32[fresh] = True
        return out

    # ------------------------------------------------------------------
    def integers(self, idx: np.ndarray, low: int, high: int) -> np.ndarray:
        """One draw of ``Generator.integers(low, high)`` per stream in ``idx``.

        Bit-identical to numpy's bounded int64 paths (Lemire rejection
        with the 32-bit buffered optimization for ranges below 2**32).
        """
        rng = high - 1 - low  # inclusive range width, as in numpy
        if rng < 0:
            raise ValueError("high must exceed low")
        if rng == 0:
            return np.full(len(idx), low, dtype=np.int64)
        if rng <= 0xFFFFFFFF:
            if rng == 0xFFFFFFFF:
                return (low + self._next32(idx)).astype(np.int64)
            return (low + self._lemire32(idx, rng)).astype(np.int64)
        if rng == 0xFFFFFFFFFFFFFFFF:
            return (low + self._next64(idx)).astype(np.int64)
        return (low + self._lemire64(idx, rng)).astype(np.int64)

    def _lemire32(self, idx: np.ndarray, rng: int) -> np.ndarray:
        rng_excl = np.uint64(rng + 1)
        threshold = np.uint64((0xFFFFFFFF - rng) % (rng + 1))
        out = np.zeros(len(idx), dtype=np.uint64)
        pending = np.arange(len(idx))
        while len(pending):
            m = self._next32(idx[pending]) * rng_excl
            accept = (m & _U32) >= threshold
            out[pending[accept]] = m[accept] >> np.uint64(32)
            pending = pending[~accept]
        return out

    def _lemire64(self, idx: np.ndarray, rng: int) -> np.ndarray:
        rng_excl = rng + 1
        re_lo = np.uint64(rng_excl & 0xFFFFFFFF)
        re_hi = np.uint64(rng_excl >> 32)
        threshold = np.uint64((0xFFFFFFFFFFFFFFFF - rng) % rng_excl)
        out = np.zeros(len(idx), dtype=np.uint64)
        pending = np.arange(len(idx))
        while len(pending):
            v = self._next64(idx[pending])
            v_lo = v & _U32
            v_hi = v >> np.uint64(32)
            # 64 x 64 -> 128 via 32-bit limbs: leftover = low 64, out = high 64.
            p0 = v_lo * re_lo
            p1 = v_lo * re_hi
            p2 = v_hi * re_lo
            p3 = v_hi * re_hi
            mid = (p0 >> np.uint64(32)) + (p1 & _U32) + (p2 & _U32)
            leftover = (p0 & _U32) | ((mid & _U32) << np.uint64(32))
            high = p3 + (p1 >> np.uint64(32)) + (p2 >> np.uint64(32)) + (
                mid >> np.uint64(32)
            )
            accept = leftover >= threshold
            out[pending[accept]] = high[accept]
            pending = pending[~accept]
        return out

"""Identifier assignment strategies.

The CONGEST model gives nodes "arbitrary distinct identities in a range
polynomial in n".  Algorithms must work for *every* such assignment, so the
test-suite exercises several:

* :class:`IdentityIds` — ID(v) = v (the friendly default);
* :class:`RandomPermutationIds` — a random injection into ``[0, n^2)``;
* :class:`ReverseIds` — ID(v) = n-1-v (flips every smaller-endpoint
  decision of Phase 1);
* :class:`SpreadIds` — deterministic multiplicative spread in a poly range.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "IdAssigner",
    "IdentityIds",
    "RandomPermutationIds",
    "ReverseIds",
    "SpreadIds",
]


class IdAssigner(ABC):
    """Maps vertex indices ``0..n-1`` to distinct CONGEST IDs."""

    @abstractmethod
    def assign(self, n: int) -> List[int]:
        """Return the ID of each vertex; must be n distinct non-negatives."""

    def id_space(self, n: int) -> int:
        """Upper bound (exclusive) on assigned IDs, for bit accounting."""
        return max(2, n)


class IdentityIds(IdAssigner):
    """ID(v) = v."""

    def assign(self, n: int) -> List[int]:
        """Vertex index i gets ID i."""
        return list(range(n))


class ReverseIds(IdAssigner):
    """ID(v) = n - 1 - v."""

    def assign(self, n: int) -> List[int]:
        """Vertex index i gets ID n-1-i (order-reversing)."""
        return list(range(n - 1, -1, -1))


class RandomPermutationIds(IdAssigner):
    """Random distinct IDs drawn from ``[0, n^2)`` (polynomial range)."""

    def __init__(self, seed=None):
        self._seed = seed

    def assign(self, n: int) -> List[int]:
        """A seeded uniform permutation of 0..n-1."""
        if n == 0:
            return []
        rng = np.random.default_rng(self._seed)
        space = max(2, n * n)
        ids = rng.choice(space, size=n, replace=False)
        return [int(x) for x in ids]

    def id_space(self, n: int) -> int:
        """IDs stay within 0..n-1."""
        return max(2, n * n)


class SpreadIds(IdAssigner):
    """Deterministic spread: ID(v) = (a*v + b) mod p for a prime p > n^2.

    Gives "random-looking" but reproducible IDs without an RNG.
    """

    def __init__(self, a: int = 48271, b: int = 11):
        if a <= 0:
            raise ConfigurationError("multiplier must be positive")
        self._a = a
        self._b = b

    def assign(self, n: int) -> List[int]:
        """IDs spread across a polynomial range (stride * index + offset)."""
        p = _next_prime(max(2, n * n))
        seen: Dict[int, int] = {}
        out = []
        for v in range(n):
            x = (self._a * v + self._b) % p
            # p > n^2 >= n and a is invertible mod p, so collisions cannot
            # happen; assert to be safe.
            if x in seen:  # pragma: no cover
                raise ConfigurationError("ID collision in SpreadIds")
            seen[x] = v
            out.append(x)
        return out

    def id_space(self, n: int) -> int:
        """The polynomial range the spread IDs live in."""
        return _next_prime(max(2, n * n))


def _next_prime(x: int) -> int:
    """Smallest prime >= x (trial division; fine for the sizes used)."""
    candidate = max(2, x)
    while True:
        if _is_prime(candidate):
            return candidate
        candidate += 1


def _is_prime(x: int) -> bool:
    if x < 2:
        return False
    if x % 2 == 0:
        return x == 2
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True

"""Network: a graph plus an ID assignment, ready to run programs on.

Separates the *topology* (vertex indices) from the *names* (CONGEST IDs):
node programs only ever see IDs, exactly as in the model, while the
simulator routes by index internally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CongestError
from ..graphs.graph import Graph
from .ids import IdAssigner, IdentityIds
from .message import SizeModel
from .node import NodeContext

__all__ = ["Network"]


class Network:
    """An n-node CONGEST network over an undirected simple graph.

    Parameters
    ----------
    graph:
        The topology.  The paper assumes connected graphs; we allow
        disconnected ones (useful in tests) since the algorithms are
        oblivious to it.
    id_assigner:
        Strategy mapping vertex indices to CONGEST IDs.
    """

    def __init__(
        self,
        graph: Graph,
        id_assigner: Optional[IdAssigner] = None,
    ) -> None:
        self._graph = graph
        assigner = id_assigner if id_assigner is not None else IdentityIds()
        ids = assigner.assign(graph.n)
        if len(ids) != graph.n or len(set(ids)) != graph.n:
            raise CongestError("ID assignment must give n distinct IDs")
        if any(i < 0 for i in ids):
            raise CongestError("IDs must be non-negative")
        self._ids: List[int] = ids
        self._index_of: Dict[int, int] = {nid: v for v, nid in enumerate(ids)}
        self._id_space = assigner.id_space(graph.n)
        self._contexts: List[NodeContext] = [
            NodeContext(
                my_id=ids[v],
                neighbor_ids=tuple(sorted(ids[w] for w in graph.neighbors(v))),
                n_hint=graph.n,
                m_hint=graph.m,
            )
            for v in graph.vertices()
        ]

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying topology."""
        return self._graph

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._graph.n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._graph.m

    @property
    def id_space(self) -> int:
        """Exclusive upper bound of the ID range."""
        return self._id_space

    def node_id(self, vertex: int) -> int:
        """CONGEST ID of a vertex index."""
        return self._ids[vertex]

    def vertex_of(self, node_id: int) -> int:
        """Vertex index of a CONGEST ID."""
        try:
            return self._index_of[node_id]
        except KeyError:
            raise CongestError(f"unknown node ID {node_id}") from None

    def ids(self) -> Tuple[int, ...]:
        """All IDs, indexed by vertex."""
        return tuple(self._ids)

    def context(self, vertex: int) -> NodeContext:
        """The (immutable) context handed to the program at this vertex."""
        return self._contexts[vertex]

    def edge_ids(self, u: int, v: int) -> Tuple[int, int]:
        """The ID pair of an edge given by vertex indices, sorted by ID."""
        a, b = self._ids[u], self._ids[v]
        return (a, b) if a < b else (b, a)

    def default_size_model(self) -> SizeModel:
        """Bit-cost model matching this network's ID space."""
        return SizeModel.for_network(self.n, self.m, id_space=self._id_space)

    def __repr__(self) -> str:
        return f"Network(n={self.n}, m={self.m}, id_space={self._id_space})"

"""Fault injection for the CONGEST simulator.

The paper assumes a reliable synchronous network.  These wrappers let the
test-suite probe what happens when that assumption is violated:

* :class:`DropFaults` — each delivery is dropped independently with a
  fixed probability (crash-free lossy links);
* :class:`TargetedFaults` — an adversary silences chosen directed links
  for chosen rounds (worst-case censorship).

The interesting, *testable* consequences (see
``tests/test_faults.py``):

1. **Soundness is fault-tolerant.** Dropping messages can only remove
   sequences; every rejection is still backed by genuine cycle evidence
   (Lemma 1 is preserved under message loss).  The tester never gains
   false alarms, however hostile the adversary.
2. **Completeness is not.** A single well-placed drop can hide the only
   witness — the deterministic guarantee of Lemma 2 genuinely needs
   reliable links, and the fault harness demonstrates it constructively.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .instrumentation import Instrumentation
from .message import SizeModel
from .network import Network
from .node import NodeProgram
from .scheduler import RunResult, SynchronousScheduler

__all__ = ["FaultModel", "DropFaults", "TargetedFaults", "FaultyScheduler"]


class FaultModel(ABC):
    """Decides the fate of each (round, sender, receiver) delivery."""

    @abstractmethod
    def delivers(self, round_index: int, sender_id: int, receiver_id: int) -> bool:
        """Return False to drop the message."""

    def reset(self) -> None:
        """Called at the start of each run (stateful models override)."""


class DropFaults(FaultModel):
    """I.i.d. message loss with probability ``p`` per delivery."""

    def __init__(self, p: float, seed=None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"drop probability must be in [0,1], got {p}")
        self.p = p
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.dropped = 0
        self.delivered = 0

    def reset(self) -> None:
        """Re-seed the drop stream so a run can be replayed exactly."""
        self._rng = np.random.default_rng(self._seed)
        self.dropped = 0
        self.delivered = 0

    def delivers(self, round_index: int, sender_id: int, receiver_id: int) -> bool:
        """Whether this (round, edge) delivery survives the fault model."""
        if self.p > 0.0 and self._rng.random() < self.p:
            self.dropped += 1
            return False
        self.delivered += 1
        return True


class TargetedFaults(FaultModel):
    """Adversarial censorship of specific directed links.

    ``blocked`` is a set of ``(round_index, sender_id, receiver_id)``
    triples; ``round_index = None`` entries block the link in every round.
    """

    def __init__(
        self,
        blocked: Set[Tuple[Optional[int], int, int]],
    ) -> None:
        self._exact = {b for b in blocked if b[0] is not None}
        self._always = {(s, r) for (rd, s, r) in blocked if rd is None}
        self.dropped = 0

    def reset(self) -> None:
        """Clear per-run state (the schedule itself is static)."""
        self.dropped = 0

    def delivers(self, round_index: int, sender_id: int, receiver_id: int) -> bool:
        """Whether this delivery is outside the targeted outage."""
        if (round_index, sender_id, receiver_id) in self._exact or (
            sender_id,
            receiver_id,
        ) in self._always:
            self.dropped += 1
            return False
        return True


class FaultyScheduler(SynchronousScheduler):
    """A scheduler whose deliveries pass through a :class:`FaultModel`.

    Dropped messages are still *charged* to the sender's bandwidth (they
    were sent), but never reach the receiver's inbox.
    """

    def __init__(
        self,
        network: Network,
        faults: FaultModel,
        *,
        size_model: Optional[SizeModel] = None,
        strict_bandwidth: bool = False,
    ) -> None:
        super().__init__(
            network, size_model=size_model, strict_bandwidth=strict_bandwidth
        )
        self._faults = faults

    def run(self, make_program, num_rounds: int) -> RunResult:
        """Run like the synchronous scheduler, dropping faulted deliveries."""
        self._faults.reset()
        return super().run(make_program, num_rounds)

    def _deliver(self, outboxes, instr: Instrumentation, round_index: int):
        inboxes = super()._deliver(outboxes, instr, round_index)
        net = self._net
        for w, inbox in enumerate(inboxes):
            if not inbox:
                continue
            receiver_id = net.node_id(w)
            doomed = [
                sender
                for sender in inbox
                if not self._faults.delivers(round_index, sender, receiver_id)
            ]
            for sender in doomed:
                del inbox[sender]
        return inboxes

"""Fault injection for the CONGEST simulator.

The paper assumes a reliable synchronous network.  These wrappers let the
test-suite probe what happens when that assumption is violated:

* :class:`DropFaults` — each delivery is dropped independently with a
  fixed probability (crash-free lossy links);
* :class:`TargetedFaults` — an adversary silences chosen directed links
  for chosen rounds (worst-case censorship).

The interesting, *testable* consequences (see
``tests/test_faults.py``):

1. **Soundness is fault-tolerant.** Dropping messages can only remove
   sequences; every rejection is still backed by genuine cycle evidence
   (Lemma 1 is preserved under message loss).  The tester never gains
   false alarms, however hostile the adversary.
2. **Completeness is not.** A single well-placed drop can hide the only
   witness — the deterministic guarantee of Lemma 2 genuinely needs
   reliable links, and the fault harness demonstrates it constructively.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional, Set, Tuple

import numpy as np

from ..errors import ConfigurationError
from .instrumentation import Instrumentation
from .message import SizeModel
from .network import Network
from .scheduler import RunResult, SynchronousScheduler

__all__ = [
    "FAULT_NAMES",
    "FaultModel",
    "DropFaults",
    "TargetedFaults",
    "FaultyScheduler",
    "build_fault_model",
    "parse_fault_spec",
]


class FaultModel(ABC):
    """Decides the fate of each (round, sender, receiver) delivery."""

    @abstractmethod
    def delivers(self, round_index: int, sender_id: int, receiver_id: int) -> bool:
        """Return False to drop the message."""

    def reset(self) -> None:
        """Called at the start of each run (stateful models override)."""


class DropFaults(FaultModel):
    """I.i.d. message loss with probability ``p`` per delivery."""

    def __init__(self, p: float, seed=None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"drop probability must be in [0,1], got {p}")
        self.p = p
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.dropped = 0
        self.delivered = 0

    def reset(self) -> None:
        """Re-seed the drop stream so a run can be replayed exactly."""
        self._rng = np.random.default_rng(self._seed)
        self.dropped = 0
        self.delivered = 0

    def delivers(self, round_index: int, sender_id: int, receiver_id: int) -> bool:
        """Whether this (round, edge) delivery survives the fault model."""
        if self.p > 0.0 and self._rng.random() < self.p:
            self.dropped += 1
            return False
        self.delivered += 1
        return True


class TargetedFaults(FaultModel):
    """Adversarial censorship of specific directed links.

    ``blocked`` is a set of ``(round_index, sender_id, receiver_id)``
    triples; ``round_index = None`` entries block the link in every round.
    """

    def __init__(
        self,
        blocked: Set[Tuple[Optional[int], int, int]],
    ) -> None:
        self._exact = {b for b in blocked if b[0] is not None}
        self._always = {(s, r) for (rd, s, r) in blocked if rd is None}
        self.dropped = 0

    def reset(self) -> None:
        """Clear per-run state (the schedule itself is static)."""
        self.dropped = 0

    def delivers(self, round_index: int, sender_id: int, receiver_id: int) -> bool:
        """Whether this delivery is outside the targeted outage."""
        if (round_index, sender_id, receiver_id) in self._exact or (
            sender_id,
            receiver_id,
        ) in self._always:
            self.dropped += 1
            return False
        return True


class FaultyScheduler(SynchronousScheduler):
    """A scheduler whose deliveries pass through a :class:`FaultModel`.

    Dropped messages are still *charged* to the sender's bandwidth (they
    were sent), but never reach the receiver's inbox.
    """

    def __init__(
        self,
        network: Network,
        faults: FaultModel,
        *,
        size_model: Optional[SizeModel] = None,
        strict_bandwidth: bool = False,
    ) -> None:
        super().__init__(
            network, size_model=size_model, strict_bandwidth=strict_bandwidth
        )
        self._faults = faults

    def run(self, make_program, num_rounds: int) -> RunResult:
        """Run like the synchronous scheduler, dropping faulted deliveries."""
        self._faults.reset()
        return super().run(make_program, num_rounds)

    def _deliver(self, outboxes, instr: Instrumentation, round_index: int):
        inboxes = super()._deliver(outboxes, instr, round_index)
        net = self._net
        for w, inbox in enumerate(inboxes):
            if not inbox:
                continue
            receiver_id = net.node_id(w)
            doomed = [
                sender
                for sender in inbox
                if not self._faults.delivers(round_index, sender, receiver_id)
            ]
            for sender in doomed:
                del inbox[sender]
        return inboxes


# ---------------------------------------------------------------------------
# Declarative fault specs (campaign factor / CLI flag)
# ---------------------------------------------------------------------------
#: Fault-model names a spec string may start with; ``none`` is the
#: reliable network (no model at all).
FAULT_NAMES: Tuple[str, ...] = ("none", "drop", "targeted")


def parse_fault_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Parse a compact fault spec string into ``(name, params)``.

    Grammar (mirrors the stream-scenario specs)::

        none                       reliable links (no fault model)
        drop:0.05                  i.i.d. loss, shorthand for p=0.05
        drop:p=0.05                i.i.d. loss with probability p
        targeted:u=3,v=7           censor the directed links 3->7 and
                                   7->3 (node IDs) in every round
        targeted:u=3,v=7,round=2   same, but only in round 2

    Raises :class:`~repro.errors.ConfigurationError` on anything
    malformed, so campaign validation fails before any row executes.
    """
    if not isinstance(spec, str) or not spec:
        raise ConfigurationError(
            f"fault spec must be a non-empty string, got {spec!r}"
        )
    name, _, tail = spec.partition(":")
    name = name.strip()
    if name not in FAULT_NAMES:
        raise ConfigurationError(
            f"unknown fault model {name!r}; choose from "
            f"{', '.join(FAULT_NAMES)}"
        )
    params: Dict[str, Any] = {}
    if name == "none":
        if tail:
            raise ConfigurationError("fault spec 'none' takes no parameters")
        return name, params
    if name == "drop":
        body = tail.strip()
        if body.startswith("p="):
            body = body[2:]
        try:
            p = float(body)
        except ValueError:
            raise ConfigurationError(
                f"fault spec {spec!r}: expected drop:p=<float>"
            ) from None
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(
                f"fault spec {spec!r}: drop probability must be in [0,1]"
            )
        params["p"] = p
        return name, params
    # targeted
    for item in tail.split(","):
        key, eq, value = item.partition("=")
        key = key.strip()
        if not eq or key not in ("u", "v", "round") or not value.strip():
            raise ConfigurationError(
                f"fault spec {spec!r}: expected targeted:u=<id>,v=<id>"
                f"[,round=<r>], got {item!r}"
            )
        try:
            params[key] = int(value)
        except ValueError:
            raise ConfigurationError(
                f"fault spec {spec!r}: non-integer value in {item!r}"
            ) from None
    if "u" not in params or "v" not in params:
        raise ConfigurationError(
            f"fault spec {spec!r}: targeted needs both u= and v="
        )
    return name, params


def build_fault_model(spec: Optional[str], *, seed=None) -> Optional[FaultModel]:
    """Instantiate the fault model named by ``spec`` (``None``/'none' →
    no model).

    ``seed`` drives the :class:`DropFaults` stream so faulted campaign
    rows replay identically under resume.
    """
    if spec is None:
        return None
    name, params = parse_fault_spec(spec)
    if name == "none":
        return None
    if name == "drop":
        return DropFaults(params["p"], seed=seed)
    blocked = {
        (params.get("round"), params["u"], params["v"]),
        (params.get("round"), params["v"], params["u"]),
    }
    return TargetedFaults(blocked)

"""Node-program interface for the synchronous CONGEST scheduler.

A *node program* is the per-node code of a distributed algorithm.  The
scheduler instantiates one program state per node and drives the rounds:

1. ``on_start(ctx)`` — round 1's send (nodes have no inbox yet);
2. ``on_round(ctx, r, inbox)`` for rounds ``r = 2..T`` — the inbox holds
   the messages *sent at round r-1*, keyed by sender ID;
3. ``on_finish(ctx, inbox)`` — called after the last round with the final
   inbox; returns the node's output.

Outboxes map neighbour ID -> message; returning :class:`Broadcast` sends
the same message to every neighbour (the common case in this paper).
Returning ``None`` sends nothing.

The context object tells a program its own ID and its neighbours' IDs
(the KT1 knowledge assumption, standard for CONGEST in Peleg's book and
needed by Phase 1's smaller-endpoint rule).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["Broadcast", "NodeContext", "NodeProgram", "Outbox"]

M = TypeVar("M")  # message type


@dataclass(frozen=True)
class Broadcast(Generic[M]):
    """Send the same message to every neighbour."""

    message: M


#: What a program may return from a round: nothing, a broadcast, or a
#: per-neighbour mapping (keyed by neighbour ID).
Outbox = Optional["Broadcast[M] | Mapping[int, M]"]


@dataclass(frozen=True)
class NodeContext:
    """Immutable per-node view of the network.

    Attributes
    ----------
    my_id:
        This node's CONGEST identifier.
    neighbor_ids:
        IDs of adjacent nodes, ascending (deterministic iteration).
    n_hint / m_hint:
        Global n and m.  The paper's Phase 1 uses m (rank range [1, m²]);
        knowing n up to a polynomial is the standard CONGEST assumption
        that makes O(log n)-bit messages meaningful.
    """

    my_id: int
    neighbor_ids: Tuple[int, ...]
    n_hint: int
    m_hint: int

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbor_ids)


class NodeProgram(ABC):
    """Base class for per-node algorithm state.

    One instance exists per node; the scheduler owns the lifecycle.  All
    randomness must come through the generator passed at construction time
    so that runs are reproducible.
    """

    @abstractmethod
    def on_start(self, ctx: NodeContext) -> Outbox:
        """Compute the round-1 send."""

    @abstractmethod
    def on_round(
        self, ctx: NodeContext, round_index: int, inbox: Dict[int, Any]
    ) -> Outbox:
        """Process round ``round_index`` (>= 2): receive then send."""

    @abstractmethod
    def on_finish(self, ctx: NodeContext, inbox: Dict[int, Any]) -> Any:
        """Consume the final inbox and return this node's output."""

"""repro — reproduction of *Distributed Detection of Cycles*
(Fraigniaud & Olivetti, SPAA 2017).

The library provides, from the bottom up:

* :mod:`repro.graphs` — graph substrate, generators, exact oracles and
  ε-farness certification;
* :mod:`repro.congest` — a bit-audited synchronous CONGEST simulator;
* :mod:`repro.combinatorics` — hitting sets and Erdős–Hajnal–Moon
  representative families (the mathematical core of the pruning rule);
* :mod:`repro.core` — Algorithm 1, Phase 1 and the O(1/ε)-round tester;
* :mod:`repro.baselines` — naive/congesting comparators;
* :mod:`repro.sequential` — centralized twins (Monien k-path via
  representative families, color coding);
* :mod:`repro.dynamic` — edge-stream mutations and incremental
  C_k-freeness monitoring with verdict caching;
* :mod:`repro.analysis` — experiment runners behind the benchmarks.

Quickstart::

    from repro import Graph, test_ck_freeness, detect_cycle_through_edge
    from repro.graphs import planted_epsilon_far_graph

    g, far = planted_epsilon_far_graph(n=120, k=5, eps=0.1, seed=0)
    result = test_ck_freeness(g, k=5, epsilon=0.1, seed=1)
    print(result)            # reject, with cycle evidence
    print(result.evidence)   # the witnessed 5-cycle (node IDs)
"""

from ._version import __version__
from .congest import (
    Network,
    SequenceBundle,
    SizeModel,
    SynchronousScheduler,
)
from .core import (
    CkFreenessTester,
    DetectCkProgram,
    ExplicitPruner,
    HittingSetPruner,
    MultiplexedCkProgram,
    TesterResult,
    detect_cycle_through_edge,
    test_ck_freeness,
)
from .graphs import Graph
from .dynamic import CkMonitor, DynamicGraph, Mutation

__all__ = [
    "__version__",
    "CkFreenessTester",
    "CkMonitor",
    "DetectCkProgram",
    "DynamicGraph",
    "ExplicitPruner",
    "Graph",
    "HittingSetPruner",
    "MultiplexedCkProgram",
    "Mutation",
    "Network",
    "SequenceBundle",
    "SizeModel",
    "SynchronousScheduler",
    "TesterResult",
    "detect_cycle_through_edge",
    "test_ck_freeness",
]

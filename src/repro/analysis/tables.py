"""Fixed-width table rendering shared by benchmarks, examples and the CLI.

The paper has no numerical tables; the experiment harness prints its
derived tables (see DESIGN.md §4) in a uniform format so EXPERIMENTS.md
can quote them verbatim.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["Table", "format_float"]


def format_float(x: Any, digits: int = 4) -> str:
    """Human-friendly numeric formatting used in table cells."""
    if isinstance(x, bool):
        return "yes" if x else "no"
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 10_000 or abs(x) < 1e-3:
            return f"{x:.{digits}g}"
        return f"{x:.{digits}g}"
    return str(x)


class Table:
    """A tiny eager table builder with aligned text output."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; values are formatted at render time."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([format_float(c) for c in cells])

    def render(self) -> str:
        """The fixed-width table as a single string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

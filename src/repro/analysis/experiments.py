"""Experiment runners behind the benchmark suite (DESIGN.md §4).

Each ``run_*`` function performs one experiment and returns structured
rows plus a rendered :class:`~repro.analysis.tables.Table`, so benchmarks,
examples, the CLI and EXPERIMENTS.md all share a single implementation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.naive import naive_detect_cycle_through_edge
from ..core.algorithm1 import detect_cycle_through_edge, phase2_rounds
from ..core.bounds import (
    exact_distinct_rank_probability,
    lemma3_bound,
    lemma5_bound,
    max_sequences_any_round,
    repetitions_needed,
    rounds_per_repetition,
)
from ..core.tester import CkFreenessTester
from ..graphs import generators
from ..graphs.behrend import behrend_cycle_graph
from ..graphs.cycles import has_cycle_through_edge
from ..graphs.farness import greedy_cycle_packing, lemma4_bound
from ..graphs.graph import Graph
from .tables import Table

__all__ = [
    "ExperimentResult",
    "wilson_interval",
    "run_round_complexity",
    "run_message_bound",
    "run_detection_rates",
    "run_phase1_statistics",
    "run_farness_packing",
    "run_pruning_vs_naive",
    "run_through_edge_exactness",
    "run_scalability",
]


@dataclass
class ExperimentResult:
    """Uniform container: named rows plus a rendered table."""

    experiment: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    table: Optional[Table] = None

    def render(self) -> str:
        """Rendered table plus any notes, ready for printing."""
        return self.table.render() if self.table is not None else self.experiment


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


# ---------------------------------------------------------------------------
# T1 — round complexity (Theorem 1)
# ---------------------------------------------------------------------------
def run_round_complexity(
    *,
    ns: Sequence[int] = (64, 128, 256, 512, 1024),
    ks: Sequence[int] = (3, 4, 5, 6, 7, 8),
    epsilons: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
) -> ExperimentResult:
    """Theorem 1: total rounds = reps(ε) · (1 + ⌊k/2⌋) — independent of n.

    Round counts in this model are *deterministic functions* of (k, ε), so
    the table simply tabulates the protocol arithmetic next to an actual
    simulated run to confirm the simulator agrees.
    """
    table = Table(
        ["n", "k", "eps", "reps", "rounds/rep", "total rounds", "simulated"],
        title="T1 - Theorem 1 round complexity (constant in n, O(1/eps))",
    )
    result = ExperimentResult("T1", table=table)
    for eps in epsilons:
        reps = repetitions_needed(eps)
        for k in ks:
            per = rounds_per_repetition(k)
            for n in ns:
                g, _ = generators.planted_epsilon_far_graph(
                    n, k, min(eps, 0.5 / k), seed=0
                )
                tester = CkFreenessTester(k, eps, repetitions=1)
                run = tester.run(g, seed=1, keep_traces=True)
                simulated = run.traces[0].num_rounds if run.traces else per
                table.add_row(n, k, eps, reps, per, reps * per, simulated)
                result.rows.append(
                    dict(n=n, k=k, eps=eps, reps=reps, per=per,
                         total=reps * per, simulated=simulated)
                )
    return result


# ---------------------------------------------------------------------------
# T2 — Lemma 3 message-size bound
# ---------------------------------------------------------------------------
def _message_bound_instances(
    k: int, scale: int
) -> List[Tuple[str, Graph, Tuple[int, int]]]:
    """Stress instances with many overlapping candidate paths."""
    out: List[Tuple[str, Graph, Tuple[int, int]]] = []
    flower = generators.flower_graph(scale, k)
    out.append((f"flower({scale})", flower, (0, 1)))
    blow = generators.blowup_graph(min(scale, 8), k)
    out.append((f"blowup({min(scale, 8)})", blow, (0, 1)))
    if k >= 4:
        theta = generators.theta_graph(scale, max(2, k // 2))
        edge = (0, 2) if theta.has_edge(0, 2) else next(iter(theta.edges()))
        out.append((f"theta({scale})", theta, edge))
    if k >= 3:
        m_part = max(3, scale)
        bg, planted = behrend_cycle_graph(m_part, k)
        if planted:
            c = planted[0]
            out.append((f"behrend({m_part})", bg, (c[0], c[1])))
    er = generators.erdos_renyi_gnp(8 * scale, min(0.5, 4.0 / scale), seed=3)
    if er.m:
        out.append(("gnp", er, next(iter(er.edges()))))
    return out


def run_message_bound(
    *, ks: Sequence[int] = (4, 5, 6, 7, 8, 9), scale: int = 12
) -> ExperimentResult:
    """Lemma 3: per-message sequence count <= (k-t+1)^(t-1) at round t."""
    table = Table(
        ["k", "instance", "edges", "max seqs (measured)", "bound max_t", "ok"],
        title="T2 - Lemma 3 per-message sequence bound",
    )
    result = ExperimentResult("T2", table=table)
    for k in ks:
        for name, g, edge in _message_bound_instances(k, scale):
            det = detect_cycle_through_edge(g, edge, k)
            measured_by_round = det.run.trace.max_sequences_by_round()
            ok = all(
                measured_by_round[t - 1] <= lemma3_bound(k, t)
                for t in range(1, phase2_rounds(k) + 1)
            )
            measured = det.run.trace.max_sequences_per_message
            bound = max_sequences_any_round(k)
            table.add_row(k, name, g.m, measured, bound, ok)
            result.rows.append(
                dict(k=k, instance=name, m=g.m, measured=measured,
                     bound=bound, ok=ok, by_round=measured_by_round)
            )
    return result


# ---------------------------------------------------------------------------
# T3 — detection rates (Lemma 2 + Theorem 1)
# ---------------------------------------------------------------------------
def run_detection_rates(
    *,
    k: int = 5,
    eps: float = 0.1,
    n: int = 120,
    trials: int = 40,
    seed: int = 0,
    repetitions: Optional[int] = None,
) -> ExperimentResult:
    """1-sidedness on Ck-free inputs; >=2/3 rejection on ε-far inputs."""
    rng = np.random.default_rng(seed)
    tester = CkFreenessTester(k, eps, repetitions=repetitions)

    free_accepts = 0
    for t in range(trials):
        g = generators.ck_free_graph(n, k, seed=int(rng.integers(2**31)))
        res = tester.run(g, seed=int(rng.integers(2**31)))
        free_accepts += int(res.accepted)

    far_rejects = 0
    for t in range(trials):
        g, _ = generators.planted_epsilon_far_graph(
            n, k, eps, seed=int(rng.integers(2**31))
        )
        res = tester.run(g, seed=int(rng.integers(2**31)))
        far_rejects += int(res.rejected)

    lo_free, hi_free = wilson_interval(free_accepts, trials)
    lo_far, hi_far = wilson_interval(far_rejects, trials)
    table = Table(
        ["input class", "trials", "outcome rate", "95% CI", "paper guarantee"],
        title=f"T3 - detection rates (k={k}, eps={eps}, n={n}, "
        f"reps={tester.repetitions})",
    )
    table.add_row(
        "Ck-free (accept)", trials, free_accepts / trials,
        f"[{lo_free:.3f},{hi_free:.3f}]", "= 1 (1-sided)"
    )
    table.add_row(
        "eps-far (reject)", trials, far_rejects / trials,
        f"[{lo_far:.3f},{hi_far:.3f}]", ">= 2/3"
    )
    result = ExperimentResult("T3", table=table)
    result.rows = [
        dict(cls="free", rate=free_accepts / trials, lo=lo_free, hi=hi_free),
        dict(cls="far", rate=far_rejects / trials, lo=lo_far, hi=hi_far),
    ]
    return result


# ---------------------------------------------------------------------------
# T4 — Phase 1 statistics (Lemma 5)
# ---------------------------------------------------------------------------
def run_phase1_statistics(
    *, ms: Sequence[int] = (4, 16, 64, 256, 1024), trials: int = 4000, seed: int = 0
) -> ExperimentResult:
    """Lemma 5: P[all m ranks distinct] >= 1/e²; empirical check."""
    rng = np.random.default_rng(seed)
    table = Table(
        ["m", "trials", "P[distinct] empirical", "exact", "lemma5 bound", "ok"],
        title="T4 - Lemma 5 rank-collision statistics",
    )
    result = ExperimentResult("T4", table=table)
    for m in ms:
        hits = 0
        for _ in range(trials):
            ranks = rng.integers(1, m * m + 1, size=m)
            hits += int(len(np.unique(ranks)) == m)
        emp = hits / trials
        exact = exact_distinct_rank_probability(m)
        ok = exact >= lemma5_bound()
        table.add_row(m, trials, emp, exact, lemma5_bound(), ok)
        result.rows.append(dict(m=m, empirical=emp, exact=exact, ok=ok))
    return result


# ---------------------------------------------------------------------------
# T5 — Lemma 4 packing
# ---------------------------------------------------------------------------
def run_farness_packing(
    *,
    k: int = 5,
    eps: float = 0.1,
    ns: Sequence[int] = (50, 100, 200, 400),
    seed: int = 0,
) -> ExperimentResult:
    """Lemma 4: ε-far graphs carry >= εm/k edge-disjoint k-cycles."""
    table = Table(
        ["n", "m", "certified eps", "packing found", "lemma4 bound", "ok"],
        title=f"T5 - Lemma 4 edge-disjoint packing (k={k}, target eps={eps})",
    )
    result = ExperimentResult("T5", table=table)
    for n in ns:
        g, certified = generators.planted_epsilon_far_graph(n, k, eps, seed=seed)
        packing = greedy_cycle_packing(g, k)
        bound = lemma4_bound(g.m, k, certified)
        ok = len(packing) >= bound - 1e-9
        table.add_row(n, g.m, certified, len(packing), bound, ok)
        result.rows.append(
            dict(n=n, m=g.m, certified=certified, packing=len(packing),
                 bound=bound, ok=ok)
        )
    return result


# ---------------------------------------------------------------------------
# F1 — pruning vs naive forwarding
# ---------------------------------------------------------------------------
def run_pruning_vs_naive(
    *,
    k: int = 9,
    widths: Sequence[int] = (2, 4, 6, 8),
    cap: int = 10_000,
) -> ExperimentResult:
    """Fig.-1 discussion: naive forwarding blows up where pruning stays
    within the Lemma-3 constant.

    Uses the layered :func:`repro.graphs.generators.blowup_graph`, where a
    layer-t vertex legitimately lies on ``width^(t-1)`` distinct candidate
    paths from the probe edge.  The naive forwarder ships all of them; the
    pruned algorithm ships at most ``(k-t+1)^(t-1)`` and still detects.
    """
    table = Table(
        ["width", "m", "naive max seqs", "pruned max seqs", "lemma3 bound",
         "both detect"],
        title=f"F1 - pruned vs naive message load on blowup graphs (k={k})",
    )
    result = ExperimentResult("F1", table=table)
    for w in widths:
        g = generators.blowup_graph(w, k)
        edge = (0, 1)
        truth = has_cycle_through_edge(g, edge, k)
        naive = naive_detect_cycle_through_edge(g, edge, k, max_sequences_cap=cap)
        pruned = detect_cycle_through_edge(g, edge, k)
        bound = max_sequences_any_round(k)
        table.add_row(
            w, g.m,
            f"{naive.max_sequences_per_message}{'(cap)' if naive.cap_tripped else ''}",
            pruned.run.trace.max_sequences_per_message,
            bound,
            (naive.detected == truth) and (pruned.detected == truth),
        )
        result.rows.append(
            dict(width=w, m=g.m, naive=naive.max_sequences_per_message,
                 pruned=pruned.run.trace.max_sequences_per_message,
                 bound=bound, truth=truth,
                 naive_ok=naive.detected == truth,
                 pruned_ok=pruned.detected == truth)
        )
    return result


# ---------------------------------------------------------------------------
# F2 — exact through-edge detection
# ---------------------------------------------------------------------------
def run_through_edge_exactness(
    *,
    ks: Sequence[int] = (3, 4, 5, 6, 7, 8, 9, 10),
    n: int = 60,
    trials_per_k: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """§1.2: Phase 2 detects even a single planted cycle, deterministically."""
    rng = np.random.default_rng(seed)
    table = Table(
        ["k", "trials", "detected", "false positives"],
        title="F2 - deterministic through-edge detection of a single planted cycle",
    )
    result = ExperimentResult("F2", table=table)
    for k in ks:
        found = 0
        false_pos = 0
        for _ in range(trials_per_k):
            g, cyc = generators.planted_cycle_graph(
                n, k, seed=int(rng.integers(2**31)), extra_edge_prob=0.02
            )
            edge = (cyc[0], cyc[1])
            det = detect_cycle_through_edge(g, edge, k)
            found += int(det.detected)
            # Also probe a tree-ish control: remove one cycle edge.
            h = g.copy()
            h.remove_edge(cyc[2], cyc[3] if k > 3 else cyc[0])
            if not has_cycle_through_edge(h, edge, k):
                if detect_cycle_through_edge(h, edge, k).detected:
                    false_pos += 1
        table.add_row(k, trials_per_k, found, false_pos)
        result.rows.append(
            dict(k=k, trials=trials_per_k, detected=found, false_pos=false_pos)
        )
    return result


# ---------------------------------------------------------------------------
# F3 — simulator scalability
# ---------------------------------------------------------------------------
def run_scalability(
    *,
    k: int = 5,
    ns: Sequence[int] = (100, 200, 400, 800, 1600),
    avg_degree: float = 4.0,
    seed: int = 0,
) -> ExperimentResult:
    """Wall-clock per simulated round vs network size (one repetition)."""
    table = Table(
        ["n", "m", "rounds", "wall s", "s/round", "s/(round*m) x1e6"],
        title=f"F3 - simulator scaling (k={k}, one tester repetition)",
    )
    result = ExperimentResult("F3", table=table)
    for n in ns:
        m_target = int(avg_degree * n / 2)
        g = generators.erdos_renyi_gnm(n, m_target, seed=seed)
        tester = CkFreenessTester(k, 0.1, repetitions=1)
        t0 = time.perf_counter()
        run = tester.run(g, seed=seed, keep_traces=True)
        dt = time.perf_counter() - t0
        rounds = run.traces[0].num_rounds if run.traces else rounds_per_repetition(k)
        per_round = dt / max(rounds, 1)
        table.add_row(n, g.m, rounds, dt, per_round, per_round / max(g.m, 1) * 1e6)
        result.rows.append(
            dict(n=n, m=g.m, rounds=rounds, seconds=dt, per_round=per_round)
        )
    return result

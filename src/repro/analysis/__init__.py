"""Experiment harness shared by benchmarks, examples and the CLI.

Three layers, from raw runs to rendered artefacts:

* :mod:`repro.analysis.experiments` — one ``run_*`` function per
  DESIGN.md §4 experiment (T1–T5 validations, F1–F3 figures): each
  builds its instances, drives the tester/Algorithm 1, and returns an
  :class:`ExperimentResult` holding structured rows plus a rendered
  table.  The CLI's ``repro experiment`` command and the benchmark
  suite both dispatch here, so printed artefacts and committed
  ``benchmarks/results/*.txt`` files always agree.
* :mod:`repro.analysis.sweeps` — parameter sweeps beyond the paper's
  tables: the repetition-boosting curve and the ε / k scaling data
  (A5–A7), plus :func:`wilson_interval` re-exported for confidence
  bounds on detection rates.
* :mod:`repro.analysis.tables` — fixed-width :class:`Table` rendering
  used by every experiment, campaign report and benchmark artefact.

One-off analyses should go through :mod:`repro.runner` campaigns
instead; this package is for the *named*, reproducible experiments that
documents cite.
"""

from .experiments import (
    ExperimentResult,
    run_detection_rates,
    run_farness_packing,
    run_message_bound,
    run_phase1_statistics,
    run_pruning_vs_naive,
    run_round_complexity,
    run_scalability,
    run_through_edge_exactness,
    wilson_interval,
)
from .sweeps import run_boosting_curve, run_epsilon_sweep, run_k_sweep
from .tables import Table, format_float

__all__ = [
    "ExperimentResult",
    "Table",
    "format_float",
    "run_detection_rates",
    "run_farness_packing",
    "run_message_bound",
    "run_phase1_statistics",
    "run_pruning_vs_naive",
    "run_round_complexity",
    "run_scalability",
    "run_boosting_curve",
    "run_epsilon_sweep",
    "run_k_sweep",
    "run_through_edge_exactness",
    "wilson_interval",
]

"""Experiment harness shared by benchmarks, examples and the CLI."""

from .experiments import (
    ExperimentResult,
    run_detection_rates,
    run_farness_packing,
    run_message_bound,
    run_phase1_statistics,
    run_pruning_vs_naive,
    run_round_complexity,
    run_scalability,
    run_through_edge_exactness,
    wilson_interval,
)
from .sweeps import run_boosting_curve, run_epsilon_sweep, run_k_sweep
from .tables import Table, format_float

__all__ = [
    "ExperimentResult",
    "Table",
    "format_float",
    "run_detection_rates",
    "run_farness_packing",
    "run_message_bound",
    "run_phase1_statistics",
    "run_pruning_vs_naive",
    "run_round_complexity",
    "run_scalability",
    "run_boosting_curve",
    "run_epsilon_sweep",
    "run_k_sweep",
    "run_through_edge_exactness",
    "wilson_interval",
]

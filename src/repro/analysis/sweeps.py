"""Parameter sweeps: the boosting curve and the ε / k scaling data.

These extend the §3.5 analysis empirically:

* :func:`run_boosting_curve` — empirical rejection probability as a
  function of the repetition count r, against the theoretical lower
  bound ``1 − (1 − ε/e²)^r``.  Shows where the paper's pessimistic
  per-repetition bound sits relative to reality.
* :func:`run_epsilon_sweep` — repetitions/rounds as ε varies (the
  O(1/ε) curve as data).
* :func:`run_k_sweep` — per-repetition rounds, Lemma-3 ceiling and
  realised message loads as k varies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.bounds import (
    max_sequences_any_round,
    per_repetition_detection_bound,
    repetitions_needed,
    rounds_per_repetition,
)
from ..core.tester import CkFreenessTester
from ..graphs import generators
from .experiments import ExperimentResult, wilson_interval
from .tables import Table

__all__ = ["run_boosting_curve", "run_epsilon_sweep", "run_k_sweep"]


def run_boosting_curve(
    *,
    k: int = 5,
    eps: float = 0.1,
    n: int = 60,
    rep_counts: Sequence[int] = (1, 2, 4, 8, 16),
    trials: int = 30,
    seed: int = 0,
) -> ExperimentResult:
    """Empirical P[reject] vs repetitions on ε-far instances (A5)."""
    rng = np.random.default_rng(seed)
    table = Table(
        ["reps", "trials", "P[reject] empirical", "95% CI", "theory lower bound"],
        title=f"A5 - boosting curve (k={k}, eps={eps}, n={n})",
    )
    result = ExperimentResult("A5", table=table)
    p_single = per_repetition_detection_bound(eps)
    for r in rep_counts:
        tester = CkFreenessTester(k, eps, repetitions=r)
        hits = 0
        for _ in range(trials):
            g, _ = generators.planted_epsilon_far_graph(
                n, k, eps, seed=int(rng.integers(2**31))
            )
            res = tester.run(g, seed=int(rng.integers(2**31)))
            hits += int(res.rejected)
        rate = hits / trials
        lo, hi = wilson_interval(hits, trials)
        bound = 1.0 - (1.0 - p_single) ** r
        table.add_row(r, trials, rate, f"[{lo:.3f},{hi:.3f}]", bound)
        result.rows.append(dict(reps=r, rate=rate, lo=lo, hi=hi, bound=bound))
    return result


def run_epsilon_sweep(
    *, k: int = 5, epsilons: Sequence[float] = (0.4, 0.2, 0.1, 0.05, 0.025)
) -> ExperimentResult:
    """Repetitions and total rounds as ε shrinks (A6): the O(1/ε) line."""
    table = Table(
        ["eps", "1/eps", "reps", "total rounds", "rounds * eps"],
        title=f"A6 - O(1/eps) scaling (k={k})",
    )
    result = ExperimentResult("A6", table=table)
    per = rounds_per_repetition(k)
    for eps in epsilons:
        reps = repetitions_needed(eps)
        total = reps * per
        table.add_row(eps, 1 / eps, reps, total, total * eps)
        result.rows.append(dict(eps=eps, reps=reps, total=total))
    return result


def run_k_sweep(
    *, ks: Sequence[int] = (3, 4, 5, 6, 7, 8, 9, 10), width: int = 6
) -> ExperimentResult:
    """Per-repetition rounds and message ceilings as k grows (A7)."""
    from ..core.algorithm1 import detect_cycle_through_edge

    table = Table(
        ["k", "rounds/rep", "lemma3 ceiling", "measured max seqs (blowup)"],
        title="A7 - k scaling: rounds stay floor(k/2)+1, ceilings grow",
    )
    result = ExperimentResult("A7", table=table)
    for k in ks:
        g = generators.blowup_graph(width, k)
        det = detect_cycle_through_edge(g, (0, 1), k)
        measured = det.run.trace.max_sequences_per_message
        table.add_row(k, rounds_per_repetition(k), max_sequences_any_round(k), measured)
        result.rows.append(
            dict(k=k, rounds=rounds_per_repetition(k),
                 ceiling=max_sequences_any_round(k), measured=measured)
        )
    return result

"""Shared type aliases and tiny helpers used across the library.

The whole code base indexes nodes by contiguous integers ``0..n-1`` (the
*vertex index*), while the CONGEST layer speaks in terms of *identifiers*
(IDs) drawn from a polynomial range, as the model prescribes.  Keeping the
two vocabularies distinct at the type level avoids a whole class of bugs
when an adversarial or randomized ID assignment is in force.
"""

from __future__ import annotations

from typing import Tuple

#: Vertex index in a :class:`repro.graphs.Graph` (contiguous, 0-based).
Vertex = int

#: CONGEST identifier of a node (arbitrary distinct integer, poly(n) range).
NodeId = int

#: Undirected edge as an ordered pair of vertex indices (u < v canonical).
Edge = Tuple[int, int]

#: A Phase-2 message sequence: ordered tuple of node IDs forming a path.
IdSequence = Tuple[int, ...]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical (sorted) representation of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loop ({u},{v}) is not a valid edge")
    return (u, v) if u < v else (v, u)

"""Dynamic graphs: an evolving :class:`~repro.graphs.graph.Graph` with an
append-only mutation log and content-hashed snapshots.

A :class:`DynamicGraph` owns a private working copy of its base graph and
applies :class:`~repro.dynamic.mutations.Mutation` objects to it, logging
every update.  The log is append-only, so

* ``version`` (the number of applied mutations) names every historical
  state unambiguously,
* any past state can be rebuilt exactly (:meth:`as_of`), and
* a scenario replayed from the same base and log prefix is byte-identical
  everywhere (the property the incremental/naive parity gates rely on).

Snapshots (:meth:`snapshot`) pair a frozen copy with its
:meth:`~repro.graphs.graph.Graph.content_hash`, so two histories that
reach the same graph state are detectably equal without edge-by-edge
comparison.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import GraphError
from ..graphs.graph import Graph
from .mutations import ADD_EDGE, ADD_VERTEX, REMOVE_EDGE, Mutation

__all__ = ["DynamicGraph", "Snapshot", "apply_mutation"]


def apply_mutation(graph: Graph, mutation: Mutation) -> None:
    """Apply one mutation to ``graph`` in place.

    Validity is enforced by the underlying :class:`Graph` operations:
    duplicate insertions, deletions of absent edges, self-loops and
    out-of-range endpoints all raise :class:`~repro.errors.GraphError`.
    """
    if mutation.op == ADD_EDGE:
        graph.add_edge(mutation.u, mutation.v)
    elif mutation.op == REMOVE_EDGE:
        graph.remove_edge(mutation.u, mutation.v)
    elif mutation.op == ADD_VERTEX:
        graph.add_vertex()
    else:  # pragma: no cover - Mutation.__post_init__ rejects unknown ops
        raise GraphError(f"unknown mutation op {mutation.op!r}")


@dataclass(frozen=True)
class Snapshot:
    """A frozen state of a dynamic graph: version, content hash, copy."""

    version: int
    content_hash: str
    graph: Graph


class DynamicGraph:
    """An evolving graph with an append-only mutation log.

    Parameters
    ----------
    base:
        The initial graph.  Copied on construction — later changes to the
        caller's object do not leak into the history.
    """

    def __init__(self, base: Graph) -> None:
        self._base = base.copy()
        self._graph = base.copy()
        self._log: List[Mutation] = []
        # Guards the (graph, log) pair so snapshot()/as_of() observe a
        # single consistent version even when another thread is applying
        # mutations (the service harness runs its event loop on a
        # different thread than test/benchmark callers).  Reentrant so
        # apply_all -> apply nests without deadlock.
        self._state_lock = threading.RLock()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The current graph state (treat as read-only; mutate via
        :meth:`apply`)."""
        return self._graph

    @property
    def base(self) -> Graph:
        """A copy of the version-0 graph."""
        return self._base.copy()

    @property
    def version(self) -> int:
        """Number of applied mutations; names the current state."""
        return len(self._log)

    @property
    def log(self) -> Tuple[Mutation, ...]:
        """The applied mutations, oldest first."""
        return tuple(self._log)

    @property
    def n(self) -> int:
        """Current vertex count."""
        return self._graph.n

    @property
    def m(self) -> int:
        """Current edge count."""
        return self._graph.m

    def content_hash(self) -> str:
        """Content hash of the current state (see
        :meth:`Graph.content_hash <repro.graphs.graph.Graph.content_hash>`)."""
        with self._state_lock:
            return self._graph.content_hash()

    def snapshot(self) -> Snapshot:
        """A frozen copy of the current state with its version and hash.

        The version is read and the graph copied under one lock
        acquisition, and the content hash is computed from the *copy*
        (``Graph.__hash__`` is ``None`` — content identity is explicit,
        never Python object hashing), so the ``(version, content_hash,
        graph)`` triple is mutually consistent even when mutations race
        the snapshot from another thread.
        """
        with self._state_lock:
            version = len(self._log)
            frozen = self._graph.copy()
        return Snapshot(
            version=version,
            content_hash=frozen.content_hash(),
            graph=frozen,
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, mutation: Mutation) -> Mutation:
        """Apply one mutation and log it; returns the canonical mutation.

        An invalid mutation raises :class:`~repro.errors.GraphError` and
        leaves both the graph and the log untouched.
        """
        canonical = mutation.canonical()
        with self._state_lock:
            apply_mutation(self._graph, canonical)
            self._log.append(canonical)
        return canonical

    def apply_all(self, mutations: Iterable[Mutation]) -> List[Mutation]:
        """Apply a mutation sequence in order; returns the canonical list."""
        return [self.apply(m) for m in mutations]

    def add_edge(self, u: int, v: int) -> Mutation:
        """Insert edge ``{u, v}`` through the log."""
        return self.apply(Mutation(ADD_EDGE, u, v))

    def remove_edge(self, u: int, v: int) -> Mutation:
        """Delete edge ``{u, v}`` through the log."""
        return self.apply(Mutation(REMOVE_EDGE, u, v))

    def add_vertex(self) -> Mutation:
        """Append a fresh isolated vertex through the log."""
        return self.apply(Mutation(ADD_VERTEX))

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------
    def as_of(self, version: int) -> Graph:
        """Rebuild the graph exactly as it was at ``version``.

        ``version`` counts applied mutations: 0 is the base graph, the
        current :attr:`version` is the present state.
        """
        with self._state_lock:
            if not 0 <= version <= self.version:
                raise GraphError(
                    f"version {version} out of range [0, {self.version}]"
                )
            prefix = self._log[:version]
        g = self._base.copy()
        for mutation in prefix:
            apply_mutation(g, mutation)
        return g

    @classmethod
    def replay(cls, base: Graph, mutations: Sequence[Mutation]) -> "DynamicGraph":
        """Construct a dynamic graph by applying ``mutations`` to ``base``."""
        dyn = cls(base)
        dyn.apply_all(mutations)
        return dyn

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self.n}, m={self.m}, version={self.version})"
        )

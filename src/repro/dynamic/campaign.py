"""Temporal-campaign execution: stream rows for the campaign runner.

The campaign runner executes rows; for temporal rows (``stream`` factor
set) the unit of work is a whole scenario replay rather than one
detection.  This module provides the two replay strategies a temporal
row can name as its ``algorithm``:

* ``monitor`` → :func:`run_monitor_stream` — the incremental
  :class:`~repro.dynamic.monitor.CkMonitor` (verdict caching, locality
  rechecks, rare full re-tests);
* ``tester``  → :func:`run_naive_stream` — naive per-step from-scratch
  re-detection (:func:`~repro.dynamic.monitor.full_redetect` at every
  mutation), the baseline the monitor's speedup is measured against.

Both return flat, deterministic outcome dicts (protocol-determined
integers plus derived float rates), so campaign stores and benchmark
artifacts can gate on them exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..graphs.graph import Graph
from ..runner.runtable import derive_seed
from .monitor import CkMonitor, full_redetect
from .streams import build_stream

__all__ = ["run_monitor_stream", "run_naive_stream"]


def run_monitor_stream(
    base: Graph,
    stream_spec: str,
    k: int,
    *,
    engine: str = "reference",
    seed: int = 0,
    epsilon: float = 0.1,
    faults=None,
    telemetry=None,
) -> Dict[str, Any]:
    """Replay a scenario through the incremental monitor; summary record.

    The returned dict contains the decision counters (cache hits, local
    rechecks, full re-tests), verdict trajectory statistics, and the
    final state fingerprint — everything integer-deterministic under the
    given seed.
    """
    stream = build_stream(stream_spec, base, seed=seed, k=k)
    monitor = CkMonitor(
        stream.base, k, engine=engine, epsilon=epsilon, seed=seed,
        faults=faults, telemetry=telemetry,
    )
    records = monitor.run_stream(stream.mutations)
    out: Dict[str, Any] = {
        "strategy": "monitor",
        "scenario": stream.scenario,
        "final_accepted": monitor.accepted,
        "reject_steps": sum(1 for r in records if not r.accepted),
        "final_n": monitor.graph.n,
        "final_m": monitor.graph.m,
        "final_hash": monitor.dynamic.content_hash(),
    }
    out.update(monitor.stats.as_dict())
    return out


def run_naive_stream(
    base: Graph,
    stream_spec: str,
    k: int,
    *,
    engine: str = "reference",
    seed: int = 0,
    epsilon: float = 0.1,
    faults=None,
    tester_repetitions: Optional[int] = 8,
    telemetry=None,
) -> Dict[str, Any]:
    """Replay a scenario with naive per-step re-detection; summary record.

    Runs :func:`~repro.dynamic.monitor.full_redetect` from scratch after
    every mutation, on the same per-step seed schedule as the monitor —
    so ``reject_steps``/``verdict_flips``/``final_accepted`` must agree
    with :func:`run_monitor_stream` exactly (asserted by the ``dynamic``
    benchmarks) while the work done per step is maximal.
    """
    stream = build_stream(stream_spec, base, seed=seed, k=k)
    graph = stream.base.copy()
    from .graph import apply_mutation

    accepted, _ = full_redetect(
        graph, k, engine=engine, seed=derive_seed(seed, "monitor-step", 0),
        epsilon=epsilon, tester_repetitions=tester_repetitions, faults=faults,
        telemetry=telemetry,
    )
    reject_steps = 0
    flips = 0
    for step, mutation in enumerate(stream.mutations, start=1):
        apply_mutation(graph, mutation)
        now_accepted, _ = full_redetect(
            graph, k, engine=engine,
            seed=derive_seed(seed, "monitor-step", step),
            epsilon=epsilon, tester_repetitions=tester_repetitions,
            faults=faults, telemetry=telemetry,
        )
        if not now_accepted:
            reject_steps += 1
        if now_accepted != accepted:
            flips += 1
        accepted = now_accepted
    return {
        "strategy": "naive",
        "scenario": stream.scenario,
        "steps": len(stream.mutations),
        "final_accepted": accepted,
        "reject_steps": reject_steps,
        "verdict_flips": flips,
        "final_n": graph.n,
        "final_m": graph.m,
        "final_hash": graph.content_hash(),
    }

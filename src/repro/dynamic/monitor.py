"""Incremental C_k-freeness monitoring with verdict caching.

:class:`CkMonitor` keeps an *exact* answer to "does the current graph
contain a k-cycle?" current across an edge stream, paying full
re-detection only when a mutation can actually change the answer.  Its
cached state is the verdict plus — on YES instances — one witness cycle
(Lemma-1 style evidence: k distinct vertices in cyclic order whose
closing edges are all present).

Decision table, per mutation:

=================  ==============  =======================================
mutation           cached verdict  action
=================  ==============  =======================================
``add_vertex``     any             **cache hit** — an isolated vertex
                                   changes no cycle
``add_edge``       NO k-cycle      **local recheck** — any new k-cycle
                                   must pass through the new edge; run
                                   Algorithm 1 through it, restricted to
                                   the ⌊k/2⌋-neighbourhood ball of its
                                   endpoints (every k-cycle through the
                                   edge lives inside that ball)
``add_edge``       k-cycle cached  **cache hit** — insertions never
                                   destroy the cached witness
``remove_edge``    NO k-cycle      **cache hit** — deletions never create
                                   cycles
``remove_edge``    witness misses  **cache hit** — the cached witness
                   the edge        survives, evidence still valid
``remove_edge``    witness uses    **full re-test** — any other k-cycle
                   the edge        may exist anywhere; fall back to
                                   from-scratch detection
=================  ==============  =======================================

Full re-detection (:func:`full_redetect`, also the naive per-step
baseline the benchmarks compare against) first runs the seeded
:class:`~repro.core.tester.CkFreenessTester` as a fast probabilistic
path — if it rejects, its evidence is a genuine cycle (1-sided error)
and we are done — then certifies the ACCEPT side exactly by running
Algorithm 1 through every edge (deterministic completeness, paper §1.2).

Because the monitor's verdict is exact and the tester has 1-sided error,
monitor ACCEPT implies every from-scratch tester run accepts (with
probability 1), and a from-scratch tester REJECT implies the monitor
rejects.  The equivalence gate (:mod:`repro.dynamic.equivalence`)
asserts full verdict identity against seeded from-scratch tester runs at
every timestep, for both engines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..congest.engine.cache import EngineCache, global_engine_cache
from ..core.algorithm1 import detect_cycle_through_edge
from ..core.tester import CkFreenessTester
from ..errors import ConfigurationError
from ..graphs.graph import Graph
from ..runner.runtable import derive_seed
from .graph import DynamicGraph
from .mutations import ADD_EDGE, ADD_VERTEX, REMOVE_EDGE, Mutation

__all__ = [
    "CACHE_HIT",
    "FULL_RETEST",
    "LOCAL_RECHECK",
    "CkMonitor",
    "MonitorStats",
    "StepRecord",
    "full_redetect",
    "k_neighborhood_ball",
]

#: Step actions (the ``action`` field of :class:`StepRecord`).
CACHE_HIT = "cache_hit"
LOCAL_RECHECK = "local_recheck"
FULL_RETEST = "full_retest"


def k_neighborhood_ball(
    graph: Graph, edge: Tuple[int, int], radius: int
) -> List[int]:
    """Vertices within ``radius`` hops of either endpoint of ``edge``.

    Returned sorted.  Every k-cycle through ``edge = {u, v}`` lies inside
    the ball of radius ``⌊k/2⌋``: walking the cycle from the edge, each
    vertex is at hop distance at most ``⌊(k-1)/2⌋`` from ``u`` or ``v``.
    """
    u, v = edge
    seen = {u: 0, v: 0}
    frontier = [u, v]
    depth = 0
    while frontier and depth < radius:
        depth += 1
        nxt: List[int] = []
        for w in frontier:
            for x in graph.neighbors(w):
                if x not in seen:
                    seen[x] = depth
                    nxt.append(x)
        frontier = nxt
    return sorted(seen)


def _csr_ball(
    indptr: np.ndarray, indices: np.ndarray, edge: Tuple[int, int], radius: int
) -> np.ndarray:
    """:func:`k_neighborhood_ball` over CSR arrays (sorted int64 array).

    Vectorised BFS: each level gathers the frontier's adjacency slices
    in one shot instead of walking Python neighbour tuples — and, unlike
    :meth:`~repro.graphs.graph.Graph.neighbors`, never touches the
    graph's whole-adjacency sorted cache (which every mutation
    invalidates, making the Python BFS O(n + m) per insertion).
    """
    dist = np.full(indptr.shape[0] - 1, -1, dtype=np.int64)
    frontier = np.array(edge, dtype=np.int64)
    dist[frontier] = 0
    for _ in range(radius):
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        neighbors = np.unique(indices[np.arange(total) + offsets])
        frontier = neighbors[dist[neighbors] < 0]
        if frontier.size == 0:
            break
        dist[frontier] = 1
    return np.nonzero(dist >= 0)[0]


def _csr_ball_subgraph(
    indptr: np.ndarray, indices: np.ndarray, ball: np.ndarray
) -> Graph:
    """Induced subgraph of the sorted ``ball``, relabelled to 0..|ball|-1.

    Array-level equivalent of ``graph.subgraph(ball)``: gather the ball
    rows of the CSR, map endpoints through the ball's position index,
    and keep each surviving edge once (``u < v``).
    """
    nb = int(ball.size)
    position = np.full(indptr.shape[0] - 1, -1, dtype=np.int64)
    position[ball] = np.arange(nb, dtype=np.int64)
    starts = indptr[ball]
    counts = indptr[ball + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return Graph(nb)
    offsets = np.repeat(
        starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    heads = position[indices[np.arange(total) + offsets]]
    tails = np.repeat(position[ball], counts)
    keep = (heads >= 0) & (tails < heads)
    return Graph.from_canonical_edge_arrays(nb, tails[keep], heads[keep])


def _detect_local(
    graph: Graph,
    edge: Tuple[int, int],
    k: int,
    *,
    engine: str,
    faults=None,
    telemetry=None,
    csr: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Optional[Tuple[int, ...]]:
    """Run Algorithm 1 through ``edge`` inside its k-neighbourhood ball.

    Returns the witness cycle as *vertex indices of ``graph``* (mapped
    back from the ball subgraph), or ``None``.  Exactness: the ball
    contains every k-cycle through the edge, the induced subgraph keeps
    all of their edges, and any cycle found in the subgraph exists in
    the full graph.

    When ``csr`` carries ``graph``'s cached ``(indptr, indices)`` CSR
    export, ball and subgraph are extracted from the arrays directly
    (same ball, same relabelling, bit-identical detection) instead of
    through the Python BFS + :meth:`~repro.graphs.graph.Graph.subgraph`
    path.
    """
    from ..obs import resolve_telemetry

    tel = resolve_telemetry(telemetry)
    if csr is not None:
        indptr, indices = csr
        ball_arr = _csr_ball(indptr, indices, edge, k // 2)
        ball: Sequence[int] = ball_arr.tolist()
        sub = _csr_ball_subgraph(indptr, indices, ball_arr)
    else:
        ball = k_neighborhood_ball(graph, edge, k // 2)
        sub = graph.subgraph(ball)
    if tel.enabled:
        tel.histogram(
            "repro_monitor_ball_size",
            "Vertices in the ⌊k/2⌋-ball of a locally rechecked edge.",
        ).observe(len(ball))
    index = {vertex: i for i, vertex in enumerate(ball)}
    det = detect_cycle_through_edge(
        sub, (index[edge[0]], index[edge[1]]), k,
        engine=engine, faults=faults, telemetry=tel,
    )
    if not det.detected:
        return None
    cycle = det.any_cycle_ids()
    if cycle is None:  # pragma: no cover - rejects always carry evidence
        return None
    # Default Network assigns identity IDs, so subgraph node IDs are
    # subgraph vertex indices; map back to the caller's vertex space.
    return tuple(ball[i] for i in cycle)


def full_redetect(
    graph: Graph,
    k: int,
    *,
    engine: str = "reference",
    seed: int = 0,
    epsilon: float = 0.1,
    tester_repetitions: Optional[int] = None,
    use_tester_fast_path: bool = True,
    faults=None,
    telemetry=None,
    cache: Optional[EngineCache] = None,
) -> Tuple[bool, Optional[Tuple[int, ...]]]:
    """From-scratch exact k-cycle detection: ``(accepted, witness)``.

    ``accepted=True`` means the graph is certifiably C_k-free; otherwise
    ``witness`` is a k-cycle in vertex indices.  The procedure is the
    paper's own machinery end to end:

    1. *(fast path)* one seeded :class:`CkFreenessTester` run — its
       rejections carry genuine cycle evidence (1-sided error), so a
       reject finishes immediately;
    2. *(exact path)* Algorithm 1 through every edge — deterministic
       completeness guarantees a k-cycle is found iff one exists.

    This is also the "naive per-step re-detection" baseline the dynamic
    benchmarks measure the monitor's caching against.  With an
    :class:`~repro.congest.engine.cache.EngineCache` the tester reuses
    its compiled engine and the exact path extracts every per-edge ball
    from one memoised CSR export instead of re-walking Python adjacency
    ``m`` times; verdicts and witnesses are identical either way.
    """
    if graph.m == 0:
        return True, None
    if use_tester_fast_path:
        tester = CkFreenessTester(
            k, epsilon, repetitions=tester_repetitions, engine=engine,
            faults=faults, telemetry=telemetry, cache=cache,
        )
        result = tester.run(graph, seed=seed)
        if result.rejected and result.evidence is not None:
            # Default networks use identity IDs: evidence is already in
            # vertex indices.
            return False, tuple(result.evidence)
    csr = cache.csr(graph) if cache is not None else None
    for edge in graph.edges():
        witness = _detect_local(
            graph, edge, k, engine=engine, faults=faults,
            telemetry=telemetry, csr=csr,
        )
        if witness is not None:
            return False, witness
    return True, None


@dataclass
class MonitorStats:
    """Decision counters of one monitor lifetime."""

    steps: int = 0
    cache_hits: int = 0
    local_rechecks: int = 0
    full_retests: int = 0
    verdict_flips: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of steps answered from cache (0.0 when no steps)."""
        return self.cache_hits / self.steps if self.steps else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dict form (campaign records, benchmark metrics)."""
        return {
            "steps": self.steps,
            "cache_hits": self.cache_hits,
            "local_rechecks": self.local_rechecks,
            "full_retests": self.full_retests,
            "verdict_flips": self.verdict_flips,
            "cache_hit_rate": round(self.cache_hit_rate, 6),
        }


@dataclass(frozen=True)
class StepRecord:
    """What the monitor did for one mutation."""

    version: int
    mutation: Mutation
    action: str
    accepted: bool
    witness: Optional[Tuple[int, ...]]
    flipped: bool


#: Monotonic source of monitor identities for version-keyed CSR caching.
_MONITOR_TOKENS = itertools.count()


class CkMonitor:
    """Exact incremental C_k-freeness verdict over a mutation stream.

    Parameters
    ----------
    graph:
        The initial state: a :class:`Graph` (wrapped into a fresh
        :class:`DynamicGraph`) or an existing :class:`DynamicGraph`
        (adopted; further mutations must go through the monitor).
    k:
        Cycle length to monitor (>= 3).
    engine:
        CONGEST backend for all detection work (``reference``/``fast``).
    epsilon, tester_repetitions:
        Parameters of the tester fast path inside full re-tests.
    seed:
        Master seed; the re-test at version ``t`` uses the derived
        ``step_seed(t)``, so a parity harness can run the identical
        from-scratch tester at every step.
    use_tester_fast_path:
        Disable to make full re-tests purely deterministic (edge scan
        only).
    faults:
        Optional fault model forwarded to every detection/tester run
        (reference engine only).  Message loss can hide witnesses, so
        with faults the monitor keeps only the tester's soundness
        guarantee, not exactness.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; ``None`` resolves to the
        process global (disabled by default).  Records step/cache-hit
        counters, ball-size histograms and ``monitor.*`` spans.
    cache:
        Compiled-instance cache policy.  ``None`` (default) gives the
        monitor a private :class:`~repro.congest.engine.cache
        .EngineCache`; ``True`` shares the process-global cache;
        ``False`` disables caching (pre-cache behaviour); an
        :class:`EngineCache` instance is used as given (e.g. one cache
        shared by all sessions of a detection service).  Caching reuses
        compiled engines inside full re-tests and extracts ⌊k/2⌋-ball
        subgraphs from memoised CSR arrays; the per-step verdict,
        witness and action stream is identical under every setting.
    """

    def __init__(
        self,
        graph,
        k: int,
        *,
        engine: str = "reference",
        epsilon: float = 0.1,
        tester_repetitions: Optional[int] = 8,
        seed: int = 0,
        use_tester_fast_path: bool = True,
        faults=None,
        telemetry=None,
        cache=None,
    ) -> None:
        from ..obs import resolve_telemetry

        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        self.k = k
        self.engine = engine
        self.epsilon = epsilon
        self.tester_repetitions = tester_repetitions
        self.seed = seed
        self.use_tester_fast_path = use_tester_fast_path
        self._faults = faults
        self._telemetry = resolve_telemetry(telemetry)
        if cache is None:
            self._cache: Optional[EngineCache] = EngineCache()
        elif cache is True:
            self._cache = global_engine_cache()
        elif cache is False:
            self._cache = None
        else:
            self._cache = cache
        # Never-reused identity for version-keyed CSR cache entries (an
        # id()-based key could collide after garbage collection when the
        # cache outlives the monitor).
        self._csr_token = next(_MONITOR_TOKENS)
        self.dynamic = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        )
        self.stats = MonitorStats()
        self.history: List[StepRecord] = []
        self._accepted, self._witness = self._full_redetect()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The current graph state."""
        return self.dynamic.graph

    @property
    def version(self) -> int:
        """Mutations applied so far."""
        return self.dynamic.version

    @property
    def accepted(self) -> bool:
        """Current verdict: ``True`` iff the graph is C_k-free."""
        return self._accepted

    @property
    def witness(self) -> Optional[Tuple[int, ...]]:
        """The cached witness k-cycle (vertex indices), when rejecting."""
        return self._witness

    def step_seed(self, version: int) -> int:
        """The tester seed a full re-test uses at ``version``.

        Deterministic in ``(self.seed, version)``; the equivalence gate
        replays from-scratch testers on exactly this schedule.
        """
        return derive_seed(self.seed, "monitor-step", version)

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def apply(self, mutation: Mutation) -> StepRecord:
        """Apply one mutation and bring the verdict up to date."""
        mutation = self.dynamic.apply(mutation)
        was_accepted = self._accepted
        hit_kind = None
        if mutation.op == ADD_VERTEX:
            action = CACHE_HIT
            hit_kind = "add_vertex"
        elif mutation.op == ADD_EDGE:
            if not self._accepted:
                action = CACHE_HIT
                hit_kind = "insert_into_reject"
            else:
                action = LOCAL_RECHECK
                witness = _detect_local(
                    self.graph, mutation.edge, self.k,
                    engine=self.engine, faults=self._faults,
                    telemetry=self._telemetry, csr=self._current_csr(),
                )
                if witness is not None:
                    self._accepted, self._witness = False, witness
        elif mutation.op == REMOVE_EDGE:
            if self._accepted:
                action = CACHE_HIT
                hit_kind = "delete_in_accept"
            elif not self._witness_uses(mutation.edge):
                action = CACHE_HIT
                hit_kind = "witness_survives"
            else:
                action = FULL_RETEST
                self._accepted, self._witness = self._full_redetect()
        else:  # pragma: no cover - Mutation validates ops
            raise ConfigurationError(f"unknown mutation {mutation!r}")
        self.stats.steps += 1
        if action == CACHE_HIT:
            self.stats.cache_hits += 1
        elif action == LOCAL_RECHECK:
            self.stats.local_rechecks += 1
        else:
            self.stats.full_retests += 1
        flipped = self._accepted != was_accepted
        if flipped:
            self.stats.verdict_flips += 1
        if self._telemetry.enabled:
            self._export_step(action, hit_kind, flipped)
        record = StepRecord(
            version=self.version,
            mutation=mutation,
            action=action,
            accepted=self._accepted,
            witness=self._witness,
            flipped=flipped,
        )
        self.history.append(record)
        return record

    def run_stream(self, mutations: Sequence[Mutation]) -> List[StepRecord]:
        """Apply a whole mutation sequence; returns the step records."""
        return [self.apply(m) for m in mutations]

    # ------------------------------------------------------------------
    def _export_step(self, action: str, hit_kind, flipped: bool) -> None:
        """Record one step's decision in the telemetry registry."""
        tel = self._telemetry
        tel.counter(
            "repro_monitor_steps_total",
            "Monitor steps processed, by decision-table action.",
            ("action",),
        ).inc(action=action)
        if hit_kind is not None:
            tel.counter(
                "repro_monitor_cache_hits_total",
                "Cache-hit steps, by decision-table row.",
                ("kind",),
            ).inc(kind=hit_kind)
        if action == FULL_RETEST:
            tel.counter(
                "repro_monitor_full_redetects_total",
                "Witness-destroying deletions forcing full re-detection.",
            ).inc()
        if flipped:
            tel.counter(
                "repro_monitor_verdict_flips_total",
                "Steps at which the cached verdict changed.",
            ).inc()

    def _witness_uses(self, edge: Tuple[int, int]) -> bool:
        """Whether the cached witness cycle traverses ``edge``."""
        if self._witness is None:  # pragma: no cover - guarded by caller
            return False
        cycle = self._witness
        k = len(cycle)
        target = edge if edge[0] < edge[1] else (edge[1], edge[0])
        for i in range(k):
            u, v = cycle[i], cycle[(i + 1) % k]
            if ((u, v) if u < v else (v, u)) == target:
                return True
        return False

    def _current_csr(self):
        """Cached CSR arrays of the current graph version (or ``None``).

        Keyed by ``(monitor identity, version)`` — unique per content
        for this monitor's lifetime — so per-insertion rechecks skip
        both the content hash and the whole-adjacency sorted-cache
        rebuild that :meth:`Graph.neighbors` would pay after every
        mutation.
        """
        if self._cache is None:
            return None
        return self._cache.csr(
            self.graph, key=("monitor-csr", self._csr_token, self.version)
        )

    def _full_redetect(self) -> Tuple[bool, Optional[Tuple[int, ...]]]:
        """From-scratch detection at the current version's step seed."""
        with self._telemetry.span(
            "monitor.full_redetect", version=self.version
        ):
            return full_redetect(
                self.graph,
                self.k,
                engine=self.engine,
                seed=self.step_seed(self.version),
                epsilon=self.epsilon,
                tester_repetitions=self.tester_repetitions,
                use_tester_fast_path=self.use_tester_fast_path,
                faults=self._faults,
                telemetry=self._telemetry,
                cache=self._cache,
            )

    def __repr__(self) -> str:
        verdict = "accept" if self._accepted else "reject"
        return (
            f"CkMonitor(k={self.k}, {verdict}, version={self.version}, "
            f"hits={self.stats.cache_hits}/{self.stats.steps})"
        )

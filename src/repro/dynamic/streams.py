"""Replayable edge-stream scenarios: named mutation-sequence generators.

A *stream scenario* turns a base graph (any family from the generator
registry, :mod:`repro.runner.registry`) plus a seed into a deterministic
mutation sequence.  Scenarios are registered by name — mirroring the
static generator registry — so temporal campaigns can sweep churn models
exactly like graph families (``CampaignSpec.streams``), the CLI can name
them (``repro dynamic run --stream ...``), and benchmarks replay the same
workload everywhere.

Built-in scenarios:

* ``uniform-churn`` — i.i.d. insert/delete of uniformly random edges;
* ``burst``         — alternating insert-only and delete-only bursts;
* ``near-cycle``    — adversarial toggling of the edges of one potential
  k-cycle, engineered to flip the verdict and invalidate cached
  witnesses as often as possible (worst case for the monitor's cache);
* ``growth``        — a degree-biased growth model (new vertices attach
  preferentially, no deletions), the monitor's best case.

Spec strings (used by campaign factors and the CLI) are compact:
``"uniform-churn"`` or ``"burst:steps=40,burst=6"`` — parsed by
:func:`parse_stream_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..graphs.graph import Graph
from .graph import apply_mutation
from .mutations import ADD_EDGE, ADD_VERTEX, REMOVE_EDGE, Mutation

__all__ = [
    "EdgeStream",
    "StreamSpec",
    "build_stream",
    "get",
    "names",
    "parse_stream_spec",
    "register",
]


@dataclass(frozen=True)
class EdgeStream:
    """A concrete scenario: base graph, mutation sequence, parameters."""

    scenario: str
    base: Graph
    mutations: Tuple[Mutation, ...]
    params: Dict[str, Any] = field(default_factory=dict)

    def final_graph(self) -> Graph:
        """The graph after applying every mutation to (a copy of) the base."""
        g = self.base.copy()
        for mutation in self.mutations:
            apply_mutation(g, mutation)
        return g

    def __repr__(self) -> str:
        return (
            f"EdgeStream({self.scenario!r}, n={self.base.n}, "
            f"m={self.base.m}, steps={len(self.mutations)})"
        )


#: A scenario factory: ``(working_graph, rng, params) -> mutations``.
#: The working graph is a private copy the factory may mutate while
#: generating (so each step can depend on the current state).
StreamFunc = Callable[[Graph, np.random.Generator, Dict[str, Any]], List[Mutation]]


@dataclass(frozen=True)
class StreamSpec:
    """A named stream scenario: factory plus declared parameters."""

    name: str
    factory: StreamFunc
    defaults: Dict[str, Any]
    description: str = ""

    def resolve_params(self, supplied: Dict[str, Any]) -> Dict[str, Any]:
        """Declared parameters only, defaulted; unknown keys raise."""
        unknown = sorted(set(supplied) - set(self.defaults))
        if unknown:
            raise ConfigurationError(
                f"stream {self.name!r} got unknown parameter(s) "
                f"{', '.join(unknown)}; declared: "
                f"{', '.join(sorted(self.defaults))}"
            )
        out = dict(self.defaults)
        for key, value in supplied.items():
            if value is not None:
                out[key] = type(self.defaults[key])(value)
        return out


_REGISTRY: Dict[str, StreamSpec] = {}


def register(spec: StreamSpec) -> StreamSpec:
    """Add a scenario to the registry (name must be new)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"stream {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> StreamSpec:
    """Look up a scenario by name; raises ConfigurationError when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown stream scenario {name!r}; known: {', '.join(names())}"
        ) from None


def names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def parse_stream_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Parse a compact stream spec string into ``(name, params)``.

    Grammar: ``name`` or ``name:key=value,key=value`` — e.g.
    ``"uniform-churn"`` or ``"burst:steps=40,burst=6"``.  The name and
    every key are validated against the registry.
    """
    if not isinstance(spec, str) or not spec:
        raise ConfigurationError(f"stream spec must be a non-empty string, "
                                 f"got {spec!r}")
    name, _, tail = spec.partition(":")
    stream = get(name.strip())
    params: Dict[str, Any] = {}
    if tail:
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise ConfigurationError(
                    f"stream spec {spec!r}: expected key=value, got {item!r}"
                )
            params[key.strip()] = value.strip()
    return stream.name, stream.resolve_params(params)


def build_stream(
    spec: str, base: Graph, *, seed: int = 0, k: int = 5
) -> EdgeStream:
    """Build the named scenario's mutation sequence for ``base``.

    ``seed`` drives all scenario randomness (deterministic across
    machines); ``k`` is the cycle length the scenario may target
    (``near-cycle`` toggles a k-cycle's edges).
    """
    name, params = parse_stream_spec(spec)
    stream = get(name)
    params = dict(params)
    params["k"] = int(k)
    rng = np.random.default_rng(seed)
    working = base.copy()
    mutations = stream.factory(working, rng, params)
    return EdgeStream(
        scenario=name,
        base=base.copy(),
        mutations=tuple(mutations),
        params={key: value for key, value in params.items() if key != "k"},
    )


# ---------------------------------------------------------------------------
# Scenario helpers
# ---------------------------------------------------------------------------
def _random_absent_edge(g: Graph, rng: np.random.Generator):
    """A uniformly random non-edge of ``g``, or ``None`` when complete."""
    max_m = g.n * (g.n - 1) // 2
    if g.n < 2 or g.m >= max_m:
        return None
    while True:  # rejection sampling; density stays well below complete
        u = int(rng.integers(g.n))
        v = int(rng.integers(g.n))
        if u != v and not g.has_edge(u, v):
            return (u, v) if u < v else (v, u)


def _random_present_edge(g: Graph, rng: np.random.Generator):
    """A uniformly random edge of ``g``, or ``None`` when edgeless."""
    if g.m == 0:
        return None
    edges = g.edge_list()
    return edges[int(rng.integers(len(edges)))]


def _log(working: Graph, out: List[Mutation], mutation: Mutation) -> None:
    """Apply ``mutation`` to the scenario's working graph and record it."""
    apply_mutation(working, mutation)
    out.append(mutation)


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------
def _uniform_churn(
    g: Graph, rng: np.random.Generator, params: Dict[str, Any]
) -> List[Mutation]:
    """I.i.d. churn: each step inserts (prob ``p``) or deletes an edge."""
    out: List[Mutation] = []
    p_insert = float(params["p"])
    for _ in range(int(params["steps"])):
        insert = bool(rng.random() < p_insert)
        edge = (_random_absent_edge if insert else _random_present_edge)(g, rng)
        if edge is None:  # saturated/empty: do the opposite operation
            insert = not insert
            edge = (_random_absent_edge if insert else
                    _random_present_edge)(g, rng)
            if edge is None:
                continue  # n < 2: nothing to mutate
        _log(g, out, Mutation(ADD_EDGE if insert else REMOVE_EDGE, *edge))
    return out


def _burst(
    g: Graph, rng: np.random.Generator, params: Dict[str, Any]
) -> List[Mutation]:
    """Alternating insert-only / delete-only bursts of length ``burst``."""
    out: List[Mutation] = []
    burst = max(1, int(params["burst"]))
    steps = int(params["steps"])
    inserting = True
    empty_phases = 0
    while len(out) < steps and empty_phases < 2:
        made = 0
        for _ in range(min(burst, steps - len(out))):
            edge = (_random_absent_edge if inserting else
                    _random_present_edge)(g, rng)
            if edge is None:
                break
            _log(g, out,
                 Mutation(ADD_EDGE if inserting else REMOVE_EDGE, *edge))
            made += 1
        # Two consecutive empty phases mean the graph can neither gain
        # nor lose an edge (n < 2): stop instead of spinning forever.
        empty_phases = 0 if made else empty_phases + 1
        inserting = not inserting
    return out


def _near_cycle(
    g: Graph, rng: np.random.Generator, params: Dict[str, Any]
) -> List[Mutation]:
    """Adversarial toggling of one potential k-cycle's edges.

    The scenario pins the vertices ``0..k-1`` as a cycle template and at
    every step toggles the presence of a random template edge.  Whenever
    all k edges are present a k-cycle exists; deleting any of them
    destroys exactly the cached witness — the worst case for verdict
    caching, forcing frequent full re-tests.
    """
    k = int(params["k"])
    steps = int(params["steps"])
    if g.n < k:
        raise ConfigurationError(
            f"near-cycle stream needs a base graph with n >= k "
            f"({g.n} < {k})"
        )
    template = [(i, (i + 1) % k) for i in range(k)]
    out: List[Mutation] = []
    for _ in range(steps):
        u, v = template[int(rng.integers(len(template)))]
        if g.has_edge(u, v):
            _log(g, out, Mutation(REMOVE_EDGE, u, v))
        else:
            _log(g, out, Mutation(ADD_EDGE, u, v))
    return out


def _growth(
    g: Graph, rng: np.random.Generator, params: Dict[str, Any]
) -> List[Mutation]:
    """Degree-biased growth: new vertices attach, edges only appear.

    With probability ``p`` a step appends a vertex and wires ``attach``
    edges from it to distinct existing vertices chosen proportionally to
    ``degree + 1`` (Barabási–Albert flavoured, reusing the same
    preferential-attachment idea as the static ``ba`` family); otherwise
    it densifies by inserting one random absent edge.  Wiring mutations
    count toward ``steps``.
    """
    out: List[Mutation] = []
    steps = int(params["steps"])
    attach = max(1, int(params["attach"]))
    p_vertex = float(params["p"])
    while len(out) < steps:
        if g.n < 2 or rng.random() < p_vertex:
            _log(g, out, Mutation(ADD_VERTEX))
            new = g.n - 1
            weights = np.array(
                [g.degree(u) + 1.0 for u in range(new)], dtype=float
            )
            weights /= weights.sum()
            picks = min(attach, new, steps - len(out))
            if picks > 0:
                targets = rng.choice(new, size=picks, replace=False, p=weights)
                for target in sorted(int(t) for t in targets):
                    _log(g, out, Mutation(ADD_EDGE, target, new))
        else:
            edge = _random_absent_edge(g, rng)
            if edge is None:
                _log(g, out, Mutation(ADD_VERTEX))
                continue
            _log(g, out, Mutation(ADD_EDGE, *edge))
    return out


for _spec in [
    StreamSpec(
        "uniform-churn", _uniform_churn,
        {"steps": 32, "p": 0.5},
        "i.i.d. random edge insert/delete churn",
    ),
    StreamSpec(
        "burst", _burst,
        {"steps": 32, "burst": 4},
        "alternating insert-only and delete-only bursts",
    ),
    StreamSpec(
        "near-cycle", _near_cycle,
        {"steps": 32},
        "adversarial toggling of one k-cycle's edges (cache worst case)",
    ),
    StreamSpec(
        "growth", _growth,
        {"steps": 32, "p": 0.4, "attach": 2},
        "degree-biased growth model (insert-only, cache best case)",
    ),
]:
    register(_spec)

"""The dynamic equivalence gate: incremental verdicts vs from-scratch runs.

:func:`monitor_equivalence_report` replays stream scenarios and, at
**every** mutation step, checks the incremental :class:`~repro.dynamic.
monitor.CkMonitor` against three independent referees:

1. **the exact oracle** — ``has_k_cycle`` on the current graph must equal
   the monitor's verdict (the monitor claims exactness; this is the hard
   ground truth);
2. **witness validity** — whenever the monitor rejects, its cached
   evidence must be a genuine k-cycle of the *current* graph (all k
   closing edges present, k distinct vertices);
3. **a from-scratch tester** — a fresh
   :class:`~repro.core.tester.CkFreenessTester` run on the current graph
   with the monitor's own step seed must produce the identical verdict.
   (Monitor ACCEPT ⟹ the graph is C_k-free ⟹ the tester accepts with
   probability 1; monitor REJECT must be confirmed by the seeded tester
   finding the cycle, which the default repetition count makes a
   deterministic certainty on the gate's instance sizes.)

Every check runs for each engine in ``engines``, so the gate doubles as
a dynamic-workload engine-equivalence sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.tester import CkFreenessTester
from ..graphs.cycles import has_k_cycle
from ..graphs.graph import Graph
from .monitor import CkMonitor
from .streams import build_stream

__all__ = [
    "DEFAULT_PARITY_GRID",
    "MonitorMismatch",
    "MonitorEquivalenceReport",
    "check_stream_parity",
    "monitor_equivalence_report",
]

#: Default parity grid: ``(stream_spec, family, family_params)`` cells.
#: Small bases keep every-step from-scratch re-testing affordable while
#: covering churn, bursts, the adversarial near-cycle toggler and growth.
DEFAULT_PARITY_GRID: Tuple[Tuple[str, str, Dict[str, Any]], ...] = (
    ("uniform-churn:steps=24,p=0.55", "gnp", {"n": 16, "p": 0.14}),
    ("burst:steps=24,burst=5", "gnp", {"n": 16, "p": 0.12}),
    ("near-cycle:steps=20", "path", {"n": 12}),
    ("growth:steps=20,p=0.45,attach=2", "cycle", {"n": 8}),
)


@dataclass(frozen=True)
class MonitorMismatch:
    """One gate violation, with everything needed to replay it."""

    stream: str
    family: str
    engine: str
    k: int
    seed: int
    step: int
    mutation: str
    check: str  # "oracle" | "witness" | "tester"
    detail: str


@dataclass
class MonitorEquivalenceReport:
    """Outcome of a dynamic equivalence sweep."""

    engines: Sequence[str] = ("reference", "fast")
    steps_checked: int = 0
    mismatches: List[MonitorMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every per-step check passed."""
        return not self.mismatches

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"MonitorEquivalenceReport({'+'.join(self.engines)}: {status}, "
            f"steps_checked={self.steps_checked})"
        )


def _witness_error(graph: Graph, witness, k: int) -> Optional[str]:
    """Why ``witness`` is not a valid k-cycle of ``graph`` (None = valid)."""
    if witness is None:
        return "rejecting with no witness"
    if len(witness) != k:
        return f"witness length {len(witness)} != k={k}"
    if len(set(witness)) != k:
        return f"witness vertices not distinct: {witness}"
    for i in range(k):
        u, v = witness[i], witness[(i + 1) % k]
        if not graph.has_edge(u, v):
            return f"witness edge ({u},{v}) not in graph"
    return None


def check_stream_parity(
    base: Graph,
    stream_spec: str,
    k: int,
    *,
    engine: str = "reference",
    seed: int = 0,
    epsilon: float = 0.1,
    tester_repetitions: Optional[int] = None,
    family: str = "?",
    check_tester: bool = True,
) -> Tuple[int, List[MonitorMismatch]]:
    """Replay one scenario under one engine, checking every step.

    Returns ``(steps_checked, mismatches)``.  The from-scratch tester at
    step ``t`` runs with the monitor's ``step_seed(t)`` and
    ``tester_repetitions`` (``None`` = the paper's count), stopping on
    first reject.
    """
    stream = build_stream(stream_spec, base, seed=seed, k=k)
    monitor = CkMonitor(stream.base, k, engine=engine, epsilon=epsilon,
                        seed=seed)
    mismatches: List[MonitorMismatch] = []

    def referee(step: int, mutation: str) -> None:
        graph = monitor.graph
        has_cycle = has_k_cycle(graph, k)
        coords = dict(stream=stream.scenario, family=family, engine=engine,
                      k=k, seed=seed, step=step, mutation=mutation)
        if monitor.accepted != (not has_cycle):
            mismatches.append(MonitorMismatch(
                check="oracle",
                detail=f"monitor accepted={monitor.accepted} but "
                       f"has_k_cycle={has_cycle}",
                **coords,
            ))
        if not monitor.accepted:
            error = _witness_error(graph, monitor.witness, k)
            if error is not None:
                mismatches.append(MonitorMismatch(
                    check="witness", detail=error, **coords,
                ))
        if check_tester:
            tester = CkFreenessTester(
                k, epsilon, repetitions=tester_repetitions, engine=engine,
            )
            result = tester.run(graph, seed=monitor.step_seed(step))
            if result.accepted != monitor.accepted:
                mismatches.append(MonitorMismatch(
                    check="tester",
                    detail=f"from-scratch tester accepted={result.accepted}, "
                           f"monitor accepted={monitor.accepted}",
                    **coords,
                ))

    referee(0, "<init>")
    for mutation in stream.mutations:
        record = monitor.apply(mutation)
        referee(record.version, mutation.to_line())
    return 1 + len(stream.mutations), mismatches


def monitor_equivalence_report(
    *,
    grid: Optional[Sequence[Tuple[str, str, Dict[str, Any]]]] = None,
    ks: Sequence[int] = (4, 5),
    seeds: Sequence[int] = (0,),
    engines: Sequence[str] = ("reference", "fast"),
    epsilon: float = 0.1,
    tester_repetitions: Optional[int] = None,
    check_tester: bool = True,
) -> MonitorEquivalenceReport:
    """Sweep scenario cells × ks × seeds × engines; check every step.

    The default grid is :data:`DEFAULT_PARITY_GRID`.  Instance graphs are
    built through the generator registry with the cell's seed, so the
    sweep is deterministic end to end.
    """
    from ..runner import registry

    cells = list(grid if grid is not None else DEFAULT_PARITY_GRID)
    report = MonitorEquivalenceReport(engines=tuple(engines))
    for stream_spec, family, params in cells:
        for k in ks:
            for seed in seeds:
                base = registry.build_graph(
                    family, seed=seed, **{**params, "k": k}
                )
                for engine in engines:
                    steps, mismatches = check_stream_parity(
                        base, stream_spec, k,
                        engine=engine, seed=seed, epsilon=epsilon,
                        tester_repetitions=tester_repetitions,
                        family=family, check_tester=check_tester,
                    )
                    report.steps_checked += steps
                    report.mismatches.extend(mismatches)
    return report

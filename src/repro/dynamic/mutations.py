"""Edge-stream mutations: the atomic update vocabulary of dynamic graphs.

A :class:`Mutation` is one of three operations on an evolving graph —
``add_edge``, ``remove_edge`` or ``add_vertex`` — expressed purely as
data so that mutation sequences can be logged, hashed, serialised
(:mod:`repro.graphs.io` edge-stream format) and replayed deterministically.

The one-line text form is::

    + 3 7      # add the undirected edge {3, 7}
    - 3 7      # remove the undirected edge {3, 7}
    +v         # append a fresh isolated vertex

This module is dependency-free by design: :mod:`repro.graphs.io` imports
it lazily for the stream format, and the rest of :mod:`repro.dynamic`
builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import GraphError

__all__ = ["ADD_EDGE", "REMOVE_EDGE", "ADD_VERTEX", "MUTATION_OPS", "Mutation"]

#: Operation tags (the ``op`` field of :class:`Mutation`).
ADD_EDGE = "add_edge"
REMOVE_EDGE = "remove_edge"
ADD_VERTEX = "add_vertex"

#: All valid operation tags.
MUTATION_OPS: Tuple[str, ...] = (ADD_EDGE, REMOVE_EDGE, ADD_VERTEX)

#: Text tokens of the one-line stream format, by operation.
_OP_TOKEN = {ADD_EDGE: "+", REMOVE_EDGE: "-", ADD_VERTEX: "+v"}
_TOKEN_OP = {token: op for op, token in _OP_TOKEN.items()}


@dataclass(frozen=True)
class Mutation:
    """One atomic update of a dynamic graph.

    ``u``/``v`` are the edge endpoints for the edge operations (stored in
    canonical ``u < v`` order by :meth:`canonical`) and ``None`` for
    ``add_vertex``.
    """

    op: str
    u: Optional[int] = None
    v: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in MUTATION_OPS:
            raise GraphError(
                f"unknown mutation op {self.op!r}; "
                f"choose from {', '.join(MUTATION_OPS)}"
            )
        if self.op == ADD_VERTEX:
            if self.u is not None or self.v is not None:
                raise GraphError("add_vertex mutation takes no endpoints")
        else:
            if self.u is None or self.v is None:
                raise GraphError(f"{self.op} mutation needs both endpoints")
            if self.u == self.v:
                raise GraphError(
                    f"self-loop mutation ({self.u},{self.v}) not allowed"
                )

    # ------------------------------------------------------------------
    @property
    def is_edge_op(self) -> bool:
        """Whether this mutation names an edge (add/remove)."""
        return self.op != ADD_VERTEX

    @property
    def edge(self) -> Optional[Tuple[int, int]]:
        """The canonical ``(u, v)`` pair, or ``None`` for add_vertex."""
        if not self.is_edge_op:
            return None
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)

    def canonical(self) -> "Mutation":
        """The same mutation with edge endpoints in ``u < v`` order."""
        if not self.is_edge_op or self.u < self.v:
            return self
        return Mutation(self.op, self.v, self.u)

    # ------------------------------------------------------------------
    # One-line text form (the edge-stream format of repro.graphs.io)
    # ------------------------------------------------------------------
    def to_line(self) -> str:
        """Serialise to the one-line stream form (``+ u v`` / ``- u v`` /
        ``+v``)."""
        if self.op == ADD_VERTEX:
            return _OP_TOKEN[ADD_VERTEX]
        u, v = self.edge
        return f"{_OP_TOKEN[self.op]} {u} {v}"

    @classmethod
    def from_line(cls, line: str, *, lineno: int = 0) -> "Mutation":
        """Parse one stream line; raises :class:`GraphError` on bad input.

        ``lineno`` (1-based) is included in error messages so malformed
        files point at the offending line.
        """
        where = f"line {lineno}: " if lineno else ""
        tokens = line.split()
        if not tokens or tokens[0] not in _TOKEN_OP:
            raise GraphError(
                f"{where}expected '+ u v', '- u v' or '+v', got {line!r}"
            )
        op = _TOKEN_OP[tokens[0]]
        if op == ADD_VERTEX:
            if len(tokens) != 1:
                raise GraphError(
                    f"{where}'+v' takes no arguments, got {line!r}"
                )
            return cls(ADD_VERTEX)
        if len(tokens) != 3:
            raise GraphError(
                f"{where}expected two endpoints after {tokens[0]!r}, "
                f"got {line!r}"
            )
        try:
            u, v = int(tokens[1]), int(tokens[2])
        except ValueError:
            raise GraphError(
                f"{where}non-integer endpoint in {line!r}"
            ) from None
        if u < 0 or v < 0:
            raise GraphError(f"{where}negative endpoint in {line!r}")
        try:
            return cls(op, u, v).canonical()
        except GraphError as exc:
            raise GraphError(f"{where}{exc}") from None

    def __repr__(self) -> str:
        return f"Mutation({self.to_line()!r})"

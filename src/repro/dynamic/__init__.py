"""Dynamic-graph subsystem: edge streams, incremental C_k monitoring.

The paper's tester answers one-shot questions on frozen graphs; this
package keeps verdicts current while the graph changes:

* :mod:`repro.dynamic.mutations` — the atomic update vocabulary
  (``add_edge``/``remove_edge``/``add_vertex``) with a one-line text
  form (the edge-stream format of :mod:`repro.graphs.io`);
* :mod:`repro.dynamic.graph` — :class:`DynamicGraph`: an evolving graph
  with an append-only mutation log, versioning and content-hashed
  snapshots;
* :mod:`repro.dynamic.streams` — named, seeded, replayable churn
  scenarios (uniform churn, bursts, adversarial near-cycle toggling,
  growth models);
* :mod:`repro.dynamic.monitor` — :class:`CkMonitor`: exact incremental
  C_k-freeness with verdict caching (cache hit / locality-limited
  recheck through the touched edge / full re-test fallback);
* :mod:`repro.dynamic.equivalence` — the mandatory gate proving monitor
  verdicts identical to from-scratch runs at every timestep;
* :mod:`repro.dynamic.campaign` — temporal-campaign execution units
  (incremental vs naive per-step strategies).

See ``docs/dynamic.md`` for the architecture and cache-invalidation
rules, and ``repro dynamic run|replay|report`` for the CLI.
"""

from .equivalence import (
    MonitorEquivalenceReport,
    MonitorMismatch,
    monitor_equivalence_report,
)
from .graph import DynamicGraph, Snapshot, apply_mutation
from .monitor import CkMonitor, MonitorStats, StepRecord, full_redetect
from .mutations import Mutation
from .streams import EdgeStream, build_stream, parse_stream_spec

__all__ = [
    "CkMonitor",
    "DynamicGraph",
    "EdgeStream",
    "MonitorEquivalenceReport",
    "MonitorMismatch",
    "MonitorStats",
    "Mutation",
    "Snapshot",
    "StepRecord",
    "apply_mutation",
    "build_stream",
    "full_redetect",
    "monitor_equivalence_report",
    "parse_stream_spec",
]

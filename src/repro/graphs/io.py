"""Plain-text graph serialisation (edge-list and edge-stream formats).

Two formats live here:

* **edge list** (a frozen graph): optional comment lines (``#``), then a
  header line ``n m``, then one ``u v`` pair per line.  Deterministic
  output (canonical edge order), round-trip safe, and tolerant of blank
  lines on input.
* **edge stream** (a mutation sequence for dynamic graphs): one
  :class:`~repro.dynamic.mutations.Mutation` per line — ``+ u v`` /
  ``- u v`` / ``+v`` — with the same comment/blank-line conventions.
  Streams pair with a base edge-list file; ``repro dynamic replay``
  reads both and replays the scenario.
"""

from __future__ import annotations

import io
import pathlib
from typing import List, Sequence, Union

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "dumps",
    "loads",
    "dumps_stream",
    "loads_stream",
    "read_edge_stream",
    "write_edge_stream",
]

PathLike = Union[str, pathlib.Path]


def dumps(g: Graph, comment: str = "") -> str:
    """Serialise to the edge-list text format."""
    buf = io.StringIO()
    if comment:
        for line in comment.splitlines():
            buf.write(f"# {line}\n")
    buf.write(f"{g.n} {g.m}\n")
    for u, v in g.edges():
        buf.write(f"{u} {v}\n")
    return buf.getvalue()


def loads(text: str) -> Graph:
    """Parse the edge-list text format."""
    header = None
    edges = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"line {lineno}: expected two integers, got {raw!r}")
        try:
            a, b = int(parts[0]), int(parts[1])
        except ValueError:
            raise GraphError(f"line {lineno}: non-integer token in {raw!r}") from None
        if header is None:
            header = (a, b)
        else:
            edges.append((a, b))
    if header is None:
        raise GraphError("empty edge-list document")
    n, m = header
    if n < 0 or m < 0:
        raise GraphError(f"invalid header n={n}, m={m}")
    g = Graph(n, edges)
    if g.m != m:
        raise GraphError(f"header claims m={m} but {g.m} edges were read")
    return g


def write_edge_list(g: Graph, path: PathLike, comment: str = "") -> None:
    """Write the graph to ``path``."""
    pathlib.Path(path).write_text(dumps(g, comment=comment))


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph from ``path``."""
    return loads(pathlib.Path(path).read_text())


# ---------------------------------------------------------------------------
# Edge-stream format (mutation sequences for dynamic graphs)
# ---------------------------------------------------------------------------
def dumps_stream(mutations: Sequence, comment: str = "") -> str:
    """Serialise a mutation sequence to the edge-stream text format.

    One mutation per line (``+ u v`` / ``- u v`` / ``+v``), preceded by
    optional ``#`` comment lines.  Round-trips through
    :func:`loads_stream` exactly.
    """
    buf = io.StringIO()
    if comment:
        for line in comment.splitlines():
            buf.write(f"# {line}\n")
    for mutation in mutations:
        buf.write(mutation.to_line() + "\n")
    return buf.getvalue()


def loads_stream(text: str) -> List:
    """Parse the edge-stream text format into a mutation list.

    Blank lines and ``#`` comments are skipped; any other malformed line
    raises :class:`~repro.errors.GraphError` with its line number.
    """
    # Imported lazily: repro.graphs is a low layer, and pulling the
    # repro.dynamic package in at import time would create a cycle.
    from ..dynamic.mutations import Mutation

    out: List[Mutation] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        out.append(Mutation.from_line(line, lineno=lineno))
    return out


def write_edge_stream(mutations: Sequence, path: PathLike,
                      comment: str = "") -> None:
    """Write a mutation sequence to ``path`` in edge-stream format."""
    pathlib.Path(path).write_text(dumps_stream(mutations, comment=comment))


def read_edge_stream(path: PathLike) -> List:
    """Read a mutation sequence from an edge-stream file."""
    return loads_stream(pathlib.Path(path).read_text())

"""Plain-text graph serialisation (edge-list format).

Format: optional comment lines (``#``), then a header line ``n m``, then
one ``u v`` pair per line.  Deterministic output (canonical edge order),
round-trip safe, and tolerant of blank lines on input.
"""

from __future__ import annotations

import io
import pathlib
from typing import TextIO, Union

from ..errors import GraphError
from .graph import Graph

__all__ = ["write_edge_list", "read_edge_list", "dumps", "loads"]

PathLike = Union[str, pathlib.Path]


def dumps(g: Graph, comment: str = "") -> str:
    """Serialise to the edge-list text format."""
    buf = io.StringIO()
    if comment:
        for line in comment.splitlines():
            buf.write(f"# {line}\n")
    buf.write(f"{g.n} {g.m}\n")
    for u, v in g.edges():
        buf.write(f"{u} {v}\n")
    return buf.getvalue()


def loads(text: str) -> Graph:
    """Parse the edge-list text format."""
    header = None
    edges = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"line {lineno}: expected two integers, got {raw!r}")
        try:
            a, b = int(parts[0]), int(parts[1])
        except ValueError:
            raise GraphError(f"line {lineno}: non-integer token in {raw!r}") from None
        if header is None:
            header = (a, b)
        else:
            edges.append((a, b))
    if header is None:
        raise GraphError("empty edge-list document")
    n, m = header
    if n < 0 or m < 0:
        raise GraphError(f"invalid header n={n}, m={m}")
    g = Graph(n, edges)
    if g.m != m:
        raise GraphError(f"header claims m={m} but {g.m} edges were read")
    return g


def write_edge_list(g: Graph, path: PathLike, comment: str = "") -> None:
    """Write the graph to ``path``."""
    pathlib.Path(path).write_text(dumps(g, comment=comment))


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph from ``path``."""
    return loads(pathlib.Path(path).read_text())

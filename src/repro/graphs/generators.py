"""Graph generators used throughout the reproduction.

Beyond the classical families (cycles, paths, grids, random graphs) this
module provides the instance families that the paper's analysis and its
predecessors [7, 20] rely on:

* ``theta_graph`` — many internally-disjoint paths between two hubs.  These
  are the high-multiplicity instances sketched around Fig. 1 where a node may
  be connected to ``u``/``v`` "via many vertex-disjoint paths of the same
  length", making naive append-and-forward blow up.
* ``figure1_graph`` — the exact 5-node example of Fig. 1.
* ``planted_epsilon_far_graph`` — graphs certified to be ε-far from
  Ck-freeness by construction (they carry ≥ εm edge-disjoint k-cycles).
* ``ck_free_graph`` — certified Ck-free instances used to exercise the
  1-sided-error guarantee.

Behrend-style constructions live in :mod:`repro.graphs.behrend`.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError, GraphError
from .graph import Graph

__all__ = [
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree_graph",
    "random_tree",
    "erdos_renyi_gnp",
    "erdos_renyi_gnm",
    "random_regular_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_configuration_graph",
    "theta_graph",
    "blowup_graph",
    "figure1_graph",
    "flower_graph",
    "planted_cycle_graph",
    "planted_epsilon_far_graph",
    "disjoint_cycles_graph",
    "ck_free_graph",
    "high_girth_graph",
    "chorded_cycle_graph",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Deterministic families
# ---------------------------------------------------------------------------
def cycle_graph(n: int) -> Graph:
    """The n-cycle ``C_n`` (requires n >= 3)."""
    if n < 3:
        raise ConfigurationError(f"cycle needs n >= 3, got {n}")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """The n-vertex path ``P_n``."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}``: sides ``0..a-1`` and ``a..a+b-1``."""
    return Graph(a + b, [(i, a + j) for i in range(a) for j in range(b)])


def star_graph(leaves: int) -> Graph:
    """A star: centre 0 with ``leaves`` pendant vertices."""
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows x cols grid; vertex ``(r, c)`` has index ``r * cols + c``."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge(r * cols + c, r * cols + c + 1)
            if r + 1 < rows:
                g.add_edge(r * cols + c, (r + 1) * cols + c)
    return g


def torus_graph(rows: int, cols: int) -> Graph:
    """The rows x cols torus (grid with wraparound); needs both dims >= 3."""
    if rows < 3 or cols < 3:
        raise ConfigurationError("torus needs rows, cols >= 3")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            g.add_edge(r * cols + c, r * cols + (c + 1) % cols, strict=False)
            g.add_edge(r * cols + c, ((r + 1) % rows) * cols + c, strict=False)
    return g


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube ``Q_dim``."""
    n = 1 << dim
    g = Graph(n)
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                g.add_edge(u, v)
    return g


def binary_tree_graph(height: int) -> Graph:
    """Complete binary tree of the given height (height 0 = single node)."""
    n = (1 << (height + 1)) - 1
    g = Graph(n)
    for u in range(n):
        for child in (2 * u + 1, 2 * u + 2):
            if child < n:
                g.add_edge(u, child)
    return g


# ---------------------------------------------------------------------------
# Random families
# ---------------------------------------------------------------------------
def random_tree(n: int, seed=None) -> Graph:
    """Uniform random labelled tree via a random Prüfer-like attachment."""
    rng = _rng(seed)
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(v, int(rng.integers(0, v)))
    return g


def erdos_renyi_gnp(n: int, p: float, seed=None) -> Graph:
    """``G(n, p)``: every pair independently an edge with probability p."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0,1], got {p}")
    rng = _rng(seed)
    g = Graph(n)
    if p == 0.0 or n < 2:
        return g
    # Vectorised sampling over the upper triangle.
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    for u, v in zip(iu[mask].tolist(), ju[mask].tolist()):
        g.add_edge(u, v)
    return g


def erdos_renyi_gnm(n: int, m: int, seed=None) -> Graph:
    """``G(n, m)``: m edges chosen uniformly without replacement."""
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ConfigurationError(f"m={m} exceeds max {max_m} for n={n}")
    rng = _rng(seed)
    chosen = rng.choice(max_m, size=m, replace=False)
    g = Graph(n)
    for code in np.sort(chosen).tolist():
        # Decode linear index into the upper triangle.
        u = int((2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * code)) // 2)
        # Adjust for floating point boundary cases.
        while _tri_offset(n, u + 1) <= code:
            u += 1
        while _tri_offset(n, u) > code:
            u -= 1
        v = u + 1 + (code - _tri_offset(n, u))
        g.add_edge(int(u), int(v))
    return g


def _tri_offset(n: int, u: int) -> int:
    """Linear index of edge (u, u+1) in the row-major upper triangle."""
    return u * n - u * (u + 1) // 2


def random_regular_graph(n: int, d: int, seed=None, max_tries: int = 200) -> Graph:
    """A d-regular graph on n vertices via the configuration model.

    Retries pairings until simple (fine for the moderate d used in tests).
    """
    if (n * d) % 2 != 0:
        raise ConfigurationError("n*d must be even for a d-regular graph")
    if d >= n:
        raise ConfigurationError("need d < n")
    rng = _rng(seed)
    stubs = np.repeat(np.arange(n), d)
    for _ in range(max_tries):
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        ok = True
        seen = set()
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v:
                ok = False
                break
            key = (u, v) if u < v else (v, u)
            if key in seen:
                ok = False
                break
            seen.add(key)
        if ok:
            return Graph(n, seen)
    raise GraphError(f"failed to sample a simple {d}-regular graph on {n} vertices")


def barabasi_albert_graph(n: int, attach: int = 3, seed=None) -> Graph:
    """Barabási–Albert preferential attachment: each new vertex attaches to
    ``attach`` distinct existing vertices chosen proportionally to degree.

    Starts from a star on vertices ``0..attach`` (so every vertex has
    positive degree and the graph is connected), then grows one vertex per
    step.  The result has exactly ``attach * (n - attach - 1) + attach``
    edges and a heavy-tailed degree distribution — the scale-free regime
    where hub vertices sit on many short cycles.
    """
    if attach < 1:
        raise ConfigurationError(f"attach must be >= 1, got {attach}")
    if n <= attach:
        raise ConfigurationError(f"need n > attach, got n={n}, attach={attach}")
    rng = _rng(seed)
    g = Graph(n)
    # Seed star: vertex `attach` joined to 0..attach-1.
    repeated: List[int] = []
    for i in range(attach):
        g.add_edge(attach, i)
        repeated.extend((attach, i))
    for v in range(attach + 1, n):
        chosen: set = set()
        while len(chosen) < attach:
            chosen.add(repeated[int(rng.integers(0, len(repeated)))])
        for u in chosen:
            g.add_edge(v, u)
            repeated.extend((v, u))
    return g


def watts_strogatz_graph(n: int, d: int = 4, beta: float = 0.1, seed=None) -> Graph:
    """Watts–Strogatz small world: a ring lattice of even degree ``d``
    with every lattice edge rewired independently with probability ``beta``.

    Rewiring replaces ``(u, v)`` by ``(u, w)`` for a uniform ``w`` that is
    neither ``u`` nor a current neighbour of ``u``, so the edge count stays
    exactly ``n * d / 2`` and the graph stays simple.  ``beta = 0`` is the
    pure lattice (girth 3 for d >= 4), ``beta = 1`` approaches G(n, m).
    """
    if d < 2 or d % 2 != 0:
        raise ConfigurationError(f"d must be even and >= 2, got {d}")
    if d >= n:
        raise ConfigurationError(f"need d < n, got n={n}, d={d}")
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError(f"beta must be in [0,1], got {beta}")
    rng = _rng(seed)
    g = Graph(n)
    for j in range(1, d // 2 + 1):
        for u in range(n):
            g.add_edge(u, (u + j) % n, strict=False)
    for j in range(1, d // 2 + 1):
        for u in range(n):
            v = (u + j) % n
            if not g.has_edge(u, v) or rng.random() >= beta:
                continue
            # Up to n attempts to find an admissible endpoint; degenerate
            # dense cases simply keep the lattice edge.
            for _ in range(n):
                w = int(rng.integers(0, n))
                if w != u and not g.has_edge(u, w):
                    g.remove_edge(u, v)
                    g.add_edge(u, w)
                    break
    return g


def powerlaw_configuration_graph(
    n: int, exponent: float = 2.5, min_degree: int = 1, seed=None
) -> Graph:
    """Erased configuration model with a power-law degree sequence.

    Degrees are sampled i.i.d. from ``P[deg = j] ∝ j^(-exponent)`` on
    ``[min_degree, n - 1]`` (sum forced even), stubs are paired uniformly,
    and self-loops / duplicate pairings are erased, yielding a simple
    graph whose degree distribution follows the target tail up to the
    erased edges.
    """
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must be > 1, got {exponent}")
    if min_degree < 1:
        raise ConfigurationError(f"min_degree must be >= 1, got {min_degree}")
    if n <= min_degree:
        raise ConfigurationError(f"need n > min_degree, got n={n}")
    rng = _rng(seed)
    support = np.arange(min_degree, n, dtype=np.int64)
    weights = support.astype(np.float64) ** (-exponent)
    weights /= weights.sum()
    degrees = rng.choice(support, size=n, p=weights)
    if int(degrees.sum()) % 2 == 1:
        degrees[0] += 1
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    g = Graph(n)
    for u, v in stubs.reshape(-1, 2).tolist():
        if u != v:
            g.add_edge(int(u), int(v), strict=False)
    return g


# ---------------------------------------------------------------------------
# Paper-specific families
# ---------------------------------------------------------------------------
def theta_graph(num_paths: int, path_length: int) -> Graph:
    """Generalised theta graph: ``num_paths`` internally-disjoint paths of
    ``path_length`` edges each between hub vertices ``0`` (=u) and ``1`` (=v).

    Contains cycles of every length ``2 * path_length`` formed by a pair of
    paths (plus, if the edge {0,1} is added externally, cycles of length
    ``path_length + 1``).  With many paths this is the canonical stress
    instance for sequence multiplicity at the hubs' neighbours.
    """
    if num_paths < 1 or path_length < 2:
        raise ConfigurationError("need num_paths >= 1 and path_length >= 2")
    g = Graph(2 + num_paths * (path_length - 1))
    nxt = 2
    for _ in range(num_paths):
        prev = 0
        for _ in range(path_length - 1):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, 1)
    return g


def blowup_graph(width: int, k: int) -> Graph:
    """Layered path-multiplicity stress instance for Lemma 3 / Fig. 1.

    Vertices ``0 = u`` and ``1 = v`` joined by the probe edge {u, v} and by
    ``k - 2`` intermediate layers of ``width`` vertices each, consecutive
    layers completely joined (u to all of layer 1, layer i to layer i+1,
    last layer to v).  Every choice of one vertex per layer is a distinct
    k-cycle through {u, v}, so the number of distinct Phase-2 sequences
    reaching a layer-t vertex is ``width^(t-1)`` — exponential for the
    naive forwarder, while Algorithm 1 keeps at most ``(k-t+1)^(t-1)``
    (and exactly ``k-t+1`` at round 2 when ``width >= k``: the Lemma 3
    bound is *tight* here).
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    layers = k - 2
    g = Graph(2 + layers * width, [(0, 1)])
    def layer(i: int) -> range:  # 1-based layer index
        base = 2 + (i - 1) * width
        return range(base, base + width)
    if layers == 0:
        return g
    for x in layer(1):
        g.add_edge(0, x)
    for i in range(1, layers):
        for x in layer(i):
            for y in layer(i + 1):
                g.add_edge(x, y)
    for x in layer(layers):
        g.add_edge(x, 1)
    return g


def figure1_graph() -> Graph:
    """The exact 5-vertex graph of the paper's Figure 1.

    Vertices: 0=u, 1=v, 2=x, 3=y, 4=z.  Edges: {u,v}, {u,x}, {u,y},
    {v,x}, {v,y}, {x,z}, {y,z}.  The 5-cycle (u, x, z, y, v) passes through
    the edge {u, v}.
    """
    return Graph(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 4), (3, 4)])


def flower_graph(num_petals: int, k: int) -> Graph:
    """``num_petals`` k-cycles all sharing one common edge ``{0, 1}``.

    Every petal contributes a distinct k-cycle through the shared edge, so
    Phase 2 run on {0,1} faces many overlapping witnesses — a direct test of
    the pruning rule's completeness guarantee.
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    g = Graph(2 + num_petals * (k - 2), [(0, 1)])
    nxt = 2
    for _ in range(num_petals):
        prev = 0
        for _ in range(k - 2):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, 1)
    return g


def planted_cycle_graph(
    n: int, k: int, seed=None, extra_edge_prob: float = 0.0
) -> Tuple[Graph, List[int]]:
    """A graph with one planted k-cycle on random vertices plus noise.

    Returns ``(graph, cycle_vertices)``.  Noise edges are added with
    probability ``extra_edge_prob`` per pair but never create a *shorter or
    equal* chord inside the planted cycle (so the planted cycle's edge
    ``(c[0], c[1])`` always lies on a k-cycle).
    """
    if n < k:
        raise ConfigurationError(f"need n >= k, got n={n}, k={k}")
    rng = _rng(seed)
    order = rng.permutation(n)
    cyc = [int(x) for x in order[:k]]
    g = Graph(n)
    for i in range(k):
        g.add_edge(cyc[i], cyc[(i + 1) % k])
    if extra_edge_prob > 0.0:
        cset = set(cyc)
        for u in range(n):
            for v in range(u + 1, n):
                if u in cset and v in cset:
                    continue  # keep the planted cycle chord-free
                if not g.has_edge(u, v) and rng.random() < extra_edge_prob:
                    g.add_edge(u, v)
    return g, cyc


def disjoint_cycles_graph(num_cycles: int, k: int, connect: bool = True) -> Graph:
    """``num_cycles`` vertex-disjoint k-cycles, optionally chained by
    bridge edges into one connected graph.

    Bridges are tree edges so they lie on no cycle at all; every cycle in
    the result is one of the planted k-cycles.
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    g = Graph(num_cycles * k)
    for c in range(num_cycles):
        base = c * k
        for i in range(k):
            g.add_edge(base + i, base + (i + 1) % k)
    if connect:
        for c in range(num_cycles - 1):
            g.add_edge(c * k, (c + 1) * k)
    return g


def planted_epsilon_far_graph(
    n: int, k: int, eps: float, seed=None
) -> Tuple[Graph, float]:
    """A connected graph that is certifiably ε-far from Ck-free.

    Construction: pack ``c`` vertex-disjoint k-cycles (plus bridge edges and
    a padding path over leftover vertices).  Since destroying edge-disjoint
    k-cycles requires one removal each — and adding edges can only create
    new cycles — the graph is at distance >= c from Ck-freeness, i.e. it is
    (c/m)-far.  We choose ``c`` so that ``c/m >= eps``.

    Returns ``(graph, certified_farness)`` where ``certified_farness = c/m``
    (a lower bound on the true farness).  Raises if the demanded ``eps`` is
    not achievable with this construction (eps close to 1/k is the limit:
    a disjoint union of k-cycles has c/m = 1/k).
    """
    if not 0.0 < eps < 1.0:
        raise ConfigurationError(f"eps must be in (0,1), got {eps}")
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    rng = _rng(seed)
    # With c cycles, bridges (c-1), pad path of p vertices adds p edges
    # (one edge attaching it plus p-1 internal edges) where p = n - c*k.
    # m = c*k + (c-1) + p; need c >= eps*m.
    c = 1
    while True:
        p = n - c * k
        if p < 0:
            raise ConfigurationError(
                f"cannot pack enough {k}-cycles into n={n} vertices to be "
                f"{eps}-far; increase n or lower eps"
            )
        m = c * k + (c - 1) + (p if p > 0 else 0)
        if c >= eps * m:
            break
        c += 1
    g = disjoint_cycles_graph(c, k, connect=True)
    # Pad with a path hanging off vertex 0 so the graph has exactly n nodes.
    prev = 0
    for _ in range(n - c * k):
        w = g.add_vertex()
        g.add_edge(prev, w)
        prev = w
    m = g.m
    certified = c / m
    if certified < eps:  # pragma: no cover - guarded by the loop above
        raise GraphError("internal error: certification failed")
    # Shuffle labels so vertex indices carry no structural hints.
    perm = [int(x) for x in rng.permutation(g.n)]
    return g.relabel(perm), certified


def ck_free_graph(n: int, k: int, seed=None, attempts: int = 64) -> Graph:
    """A connected graph guaranteed to contain no k-cycle.

    * odd k: a random connected bipartite graph (odd cycles impossible);
    * even k: a graph of girth > k obtained by randomised greedy edge
      addition with BFS girth checks (falls back to a tree for tiny n).
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    rng = _rng(seed)
    if k % 2 == 1:
        sides = rng.integers(0, 2, size=n)
        if sides.sum() in (0, n):  # force both sides non-empty
            sides[0] = 0
            sides[-1] = 1
        left = [i for i in range(n) if sides[i] == 0]
        right = [i for i in range(n) if sides[i] == 1]
        g = Graph(n)
        # Spanning "zigzag" to connect, then random cross edges.
        seq = left + right
        for a, b in zip(left, right):
            g.add_edge(a, b)
        # connect components greedily across the two sides
        comp_anchor = left[0]
        for v in seq:
            if not _bfs_reachable(g, comp_anchor, v):
                partner = right[0] if v in left else left[0]
                g.add_edge(v, partner, strict=False)
        for _ in range(2 * n):
            u = int(rng.choice(left))
            v = int(rng.choice(right))
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
        return g
    return high_girth_graph(n, girth_greater_than=k, seed=rng)


def high_girth_graph(n: int, girth_greater_than: int, seed=None) -> Graph:
    """Randomised greedy graph with girth strictly greater than the bound.

    Starts from a random spanning tree and adds random edges whose insertion
    would not create a cycle of length <= ``girth_greater_than`` (checked by
    a truncated BFS between the endpoints before insertion).
    """
    rng = _rng(seed)
    g = random_tree(n, rng)
    budget = 4 * n
    for _ in range(budget):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or g.has_edge(u, v):
            continue
        if _bfs_distance_at_most(g, u, v, girth_greater_than - 1):
            continue
        g.add_edge(u, v)
    return g


def chorded_cycle_graph(k: int, chord: Tuple[int, int] = (0, 2)) -> Graph:
    """A k-cycle ``0..k-1`` plus one chord (default between 0 and 2).

    Used by the discussion in §4 (detecting a cycle *with* a chord is the
    pattern the paper's technique does not extend to).
    """
    g = cycle_graph(k)
    a, b = chord
    if g.has_edge(a, b):
        raise ConfigurationError(f"chord {chord} already a cycle edge")
    g.add_edge(a, b)
    return g


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------
def _bfs_reachable(g: Graph, s: int, t: int) -> bool:
    if s == t:
        return True
    seen = {s}
    frontier = [s]
    while frontier:
        nxt = []
        for u in frontier:
            for v in g.neighbors(u):
                if v == t:
                    return True
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return False


def _bfs_distance_at_most(g: Graph, s: int, t: int, limit: int) -> bool:
    """Whether dist(s, t) <= limit."""
    if s == t:
        return True
    seen = {s}
    frontier = [s]
    for _ in range(limit):
        nxt = []
        for u in frontier:
            for v in g.neighbors(u):
                if v == t:
                    return True
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
        if not frontier:
            return False
    return False

"""Interoperability with :mod:`networkx`.

Kept in its own module so the simulator's hot path never imports networkx.
"""

from __future__ import annotations

from ..errors import GraphError
from .graph import Graph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(g: Graph):
    """Convert to an undirected :class:`networkx.Graph` on ``0..n-1``."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(range(g.n))
    out.add_edges_from(g.edges())
    return out


def from_networkx(nxg) -> "tuple[Graph, Dict[Hashable, int]]":
    """Convert a networkx graph; returns ``(graph, label_to_index)``.

    Node labels are mapped to contiguous indices in sorted-repr order for
    determinism.  Directed graphs, self-loops and multigraphs are rejected.
    """
    import networkx as nx

    if nxg.is_directed():
        raise GraphError("directed graphs are not supported")
    if nxg.is_multigraph():
        raise GraphError("multigraphs are not supported")
    labels = sorted(nxg.nodes(), key=repr)
    index = {lab: i for i, lab in enumerate(labels)}
    g = Graph(len(labels))
    for a, b in nxg.edges():
        if a == b:
            raise GraphError(f"self-loop at {a!r} not supported")
        g.add_edge(index[a], index[b], strict=False)
    return g, index

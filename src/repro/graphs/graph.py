"""Core undirected simple-graph data structure.

The CONGEST model of the paper works on connected simple graphs (no
self-loops, no parallel edges).  This module provides a small, fast,
dependency-free graph type tuned for the access patterns of the simulator:
O(1) adjacency-set lookups, cheap neighbour iteration in deterministic
(sorted) order, and an optional CSR export for vectorised analyses.

``networkx`` interop lives in :mod:`repro.graphs.convert` so that the hot
path never imports networkx.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from .._types import Edge, canonical_edge
from ..errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops raise :class:`GraphError`;
        duplicate edges (in either orientation) are collapsed silently only
        if ``strict=False``, otherwise they raise.
    strict:
        When true (default), duplicate edges raise so construction bugs
        surface early.
    """

    __slots__ = ("_n", "_m", "_adj", "_sorted_cache")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]] = (),
        *,
        strict: bool = True,
    ) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._m = 0
        self._adj: List[Set[int]] = [set() for _ in range(n)]
        self._sorted_cache: List[Tuple[int, ...]] | None = None
        for u, v in edges:
            self.add_edge(u, v, strict=strict)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, *, strict: bool = True) -> None:
        """Insert the undirected edge ``{u, v}``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop ({u},{v}) not allowed in a simple graph")
        if v in self._adj[u]:
            if strict:
                raise GraphError(f"duplicate edge ({u},{v})")
            return
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        self._sorted_cache = None

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}``; raises if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u},{v}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1
        self._sorted_cache = None

    def add_vertex(self) -> int:
        """Append a fresh isolated vertex and return its index."""
        self._adj.append(set())
        self._n += 1
        self._sorted_cache = None
        return self._n - 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if not (0 <= u < self._n and 0 <= v < self._n) or u == v:
            return False
        return v in self._adj[u]

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        self._check_vertex(u)
        return len(self._adj[u])

    def neighbors(self, u: int) -> Tuple[int, ...]:
        """Neighbours of ``u`` in ascending order (deterministic)."""
        self._check_vertex(u)
        if self._sorted_cache is None:
            self._sorted_cache = [tuple(sorted(s)) for s in self._adj]
        return self._sorted_cache[u]

    def adjacency_set(self, u: int) -> frozenset:
        """Neighbour set of ``u`` as an immutable set (O(1) membership)."""
        self._check_vertex(u)
        return frozenset(self._adj[u])

    def vertices(self) -> range:
        """Iterator over vertex indices."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate canonical ``(u, v)`` with ``u < v``, ascending."""
        for u in range(self._n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def edge_list(self) -> List[Edge]:
        """All canonical edges as a list."""
        return list(self.edges())

    def max_degree(self) -> int:
        """Maximum degree (0 for the empty graph)."""
        return max((len(s) for s in self._adj), default=0)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (vacuously true for n <= 1)."""
        if self._n <= 1:
            return True
        seen = bytearray(self._n)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = 1
                    count += 1
                    stack.append(v)
        return count == self._n

    def connected_components(self) -> List[List[int]]:
        """Connected components as sorted vertex lists."""
        seen = bytearray(self._n)
        comps: List[List[int]] = []
        for s in range(self._n):
            if seen[s]:
                continue
            seen[s] = 1
            stack = [s]
            comp = [s]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = 1
                        comp.append(v)
                        stack.append(v)
            comps.append(sorted(comp))
        return comps

    def copy(self) -> "Graph":
        """Deep copy."""
        g = Graph(self._n)
        g._m = self._m
        g._adj = [set(s) for s in self._adj]
        return g

    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Induced subgraph, relabelled to ``0..len(vertices)-1``.

        The i-th vertex of the result corresponds to ``vertices[i]``.
        """
        index = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise GraphError("duplicate vertices in subgraph selection")
        g = Graph(len(vertices))
        vset = set(vertices)
        for u in vertices:
            self._check_vertex(u)
            for v in self._adj[u]:
                if v in vset and u < v:
                    g.add_edge(index[u], index[v])
        return g

    @classmethod
    def from_canonical_edge_arrays(
        cls, n: int, us: np.ndarray, vs: np.ndarray
    ) -> "Graph":
        """Fast trusted constructor from parallel endpoint arrays.

        ``us[i] < vs[i]`` must hold for every i, endpoints must be in
        ``[0, n)``, and edges must be distinct — the caller certifies
        this (array extractions from CSR exports satisfy it by
        construction).  Skips per-edge validation; :meth:`validate`
        checks the result when in doubt.
        """
        g = cls(n)
        adj = g._adj
        for u, v in zip(us.tolist(), vs.tolist()):
            adj[u].add(v)
            adj[v].add(u)
        g._m = len(us)
        return g

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Return the graph with vertex ``i`` renamed ``permutation[i]``."""
        if sorted(permutation) != list(range(self._n)):
            raise GraphError("relabel requires a permutation of 0..n-1")
        g = Graph(self._n)
        for u, v in self.edges():
            g.add_edge(permutation[u], permutation[v])
        return g

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Disjoint union; ``other``'s vertices are shifted by ``self.n``."""
        g = Graph(self._n + other._n)
        for u, v in self.edges():
            g.add_edge(u, v)
        off = self._n
        for u, v in other.edges():
            g.add_edge(u + off, v + off)
        return g

    # ------------------------------------------------------------------
    # Array export
    # ------------------------------------------------------------------
    def to_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Export adjacency as CSR ``(indptr, indices)`` numpy arrays."""
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        for u in range(self._n):
            indptr[u + 1] = indptr[u] + len(self._adj[u])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for u in range(self._n):
            nb = self.neighbors(u)
            indices[int(indptr[u]): int(indptr[u + 1])] = nb
        return indptr, indices

    def edge_array(self) -> np.ndarray:
        """Canonical edges as an ``(m, 2)`` numpy array."""
        arr = np.empty((self._m, 2), dtype=np.int64)
        for i, (u, v) in enumerate(self.edges()):
            arr[i, 0] = u
            arr[i, 1] = v
        return arr

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, edge: Tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    # Mutable container: explicitly unhashable (``hash(g)`` raises
    # TypeError).  Identity-keyed caches must use ``content_hash()``.
    __hash__ = None  # type: ignore[assignment]

    def content_hash(self) -> str:
        """SHA-256 hex digest of the graph's canonical serialisation.

        Two graphs have equal hashes iff they have the same vertex count
        and the same canonical edge set — exactly the :meth:`__eq__`
        relation.  The digest is stable across processes and Python
        versions, which is what dynamic-graph snapshots
        (:mod:`repro.dynamic.graph`) key their version store on.
        """
        h = hashlib.sha256()
        h.update(f"graph/1 n={self._n}\n".encode())
        for u, v in self.edges():
            h.update(f"{u} {v}\n".encode())
        return h.hexdigest()

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    def _check_vertex(self, u: int) -> None:
        if not isinstance(u, (int, np.integer)):
            raise GraphError(f"vertex must be an int, got {type(u).__name__}")
        if not 0 <= u < self._n:
            raise GraphError(f"vertex {u} out of range [0, {self._n})")

    # ------------------------------------------------------------------
    # Validation helper used by generators and tests
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal invariants; raises :class:`GraphError` if broken."""
        m = 0
        for u in range(self._n):
            for v in self._adj[u]:
                if not 0 <= v < self._n:
                    raise GraphError(f"neighbour {v} of {u} out of range")
                if v == u:
                    raise GraphError(f"self-loop at {u}")
                if u not in self._adj[v]:
                    raise GraphError(f"asymmetric adjacency {u}->{v}")
                if u < v:
                    m += 1
        if m != self._m:
            raise GraphError(f"edge count mismatch: counted {m}, stored {self._m}")


def edge_set(edges: Iterable[Tuple[int, int]]) -> Set[Edge]:
    """Canonicalise an iterable of edges into a set of sorted pairs."""
    return {canonical_edge(u, v) for u, v in edges}

"""Behrend-style graph constructions.

Fraigniaud et al. [20] used explicit *Behrend graphs* to prove that the
pre-existing distributed testing techniques cannot detect ``C_k`` for most
``k >= 5`` in constant rounds.  These graphs pack many *edge-disjoint*
k-cycles while keeping ambient structure sparse, and they are exactly the
instances on which naive sequence forwarding explodes.  We provide:

* :func:`salem_spencer_set` / :func:`behrend_set` — large progression-free
  subsets of ``{0..N-1}`` (exact greedy for small N, Behrend's sphere
  construction for larger N).
* :func:`behrend_cycle_graph` — the k-partite "cycle-Behrend" graph: parts
  ``V_0..V_{k-1}``, each a copy of ``Z_M``; for every start ``x`` and
  stride ``s`` in the AP-free set, the vertices ``x, x+s, x+2s, ...``
  (one per part, mod M) form a planted k-cycle.  The planted cycles are
  pairwise edge-disjoint.

For the reproduction, these serve as *hard benchmark instances*: graphs
with Θ(M·|S|) edge-disjoint k-cycles on which the Lemma-3 message bound is
stress-tested (experiment T2/F1).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from .graph import Graph

__all__ = [
    "is_progression_free",
    "salem_spencer_set",
    "behrend_set",
    "behrend_cycle_graph",
    "planted_behrend_cycles",
]


def is_progression_free(s: Sequence[int]) -> bool:
    """Whether the set contains no non-trivial 3-term arithmetic progression
    (over the integers)."""
    vals = sorted(set(s))
    present = set(vals)
    for i, a in enumerate(vals):
        for b in vals[i + 1:]:
            if 2 * b - a in present:
                return False
    return True


def salem_spencer_set(n: int) -> List[int]:
    """Greedy progression-free subset of ``{0..n-1}``.

    Exact greedy (digits-in-base-3 characterisation would be denser for
    some n, but greedy is simple and verifiably AP-free).  Runs in
    O(n * |S|).
    """
    chosen: List[int] = []
    chosen_set = set()
    for x in range(n):
        ok = True
        for b in chosen:
            # adding x creates an AP (a, b, x) or (b, x, ...) or (x inside)?
            # Check the three patterns involving x and one/two chosen:
            if 2 * b - x in chosen_set:      # (x, b, 2b-x) with x < b
                ok = False
                break
            if (x + b) % 2 == 0 and (x + b) // 2 in chosen_set:  # x, mid, b
                ok = False
                break
            if 2 * x - b in chosen_set:      # (b, x, 2x-b)
                ok = False
                break
        if ok:
            chosen.append(x)
            chosen_set.add(x)
    return chosen


def behrend_set(n: int) -> List[int]:
    """Behrend's construction of a large AP-free subset of ``{0..n-1}``.

    Represents integers in base ``d`` with digits < d/2 and keeps those
    whose digit vector lies on a common sphere; digit vectors on a sphere
    contain no 3-term AP, and the digit bound prevents carries, so the
    integer set is AP-free.  Falls back to the greedy set for small n.
    """
    if n < 32:
        return salem_spencer_set(n)
    best: List[int] = []
    # Try a few bases; Behrend's optimum base is ~exp(sqrt(log n)).
    for d in range(3, max(4, int(math.exp(math.sqrt(math.log(n)))) + 3)):
        half = (d + 1) // 2  # digits in [0, half)
        k = max(1, int(math.log(n) / math.log(d)))
        if d ** k > n:
            k -= 1
        if k < 1:
            continue
        # bucket digit vectors by squared norm
        from itertools import product

        buckets = {}
        for digits in product(range(half), repeat=k):
            val = 0
            for dig in digits:
                val = val * d + dig
            if val >= n:
                continue
            r = sum(dig * dig for dig in digits)
            buckets.setdefault(r, []).append(val)
        cand = max(buckets.values(), key=len, default=[])
        if len(cand) > len(best):
            best = sorted(cand)
        if d ** k > 4 * n:
            break
    if not best:
        best = salem_spencer_set(n)
    return best


def behrend_cycle_graph(
    m_part: int, k: int, strides: Sequence[int] | None = None
) -> Tuple[Graph, List[Tuple[int, ...]]]:
    """The k-partite cycle-Behrend graph.

    Parts ``V_0..V_{k-1}``, each ``Z_{m_part}``; global index of element
    ``x`` of part ``i`` is ``i * m_part + x``.  For each ``x in Z_M`` and
    stride ``s`` in ``strides`` (default: Behrend set of ``Z_M``), the
    planted cycle visits part ``i`` at value ``(x + i*s) mod M`` and closes
    back to part 0.

    Returns ``(graph, planted_cycles)`` where each planted cycle is the
    tuple of its k global vertex indices in order.  Planted cycles are
    pairwise edge-disjoint: an edge between parts i, i+1 is
    ``((x+i s), (x+(i+1)s))`` which determines ``s`` (difference mod M) and
    then ``x`` — except for the closing edge (part k-1 to part 0) which
    determines ``(x + (k-1)s, x)``; with s drawn from an AP-free set these
    collide for no two distinct (x, s) pairs when k >= 3 and strides are
    distinct mod M.
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    if m_part < 2:
        raise ConfigurationError("m_part must be >= 2")
    S = list(strides) if strides is not None else behrend_set(max(2, m_part // 2))
    S = [s % m_part for s in S if s % m_part != 0]
    # Distinct strides required for edge-disjointness of the closing edges.
    if len(set(S)) != len(S):
        raise ConfigurationError("strides must be distinct modulo m_part")
    g = Graph(k * m_part)
    planted: List[Tuple[int, ...]] = []
    seen_edges = set()
    for s in S:
        for x in range(m_part):
            verts = [(i * m_part + (x + i * s) % m_part) for i in range(k)]
            cyc = tuple(verts)
            edges = [
                tuple(sorted((verts[i], verts[(i + 1) % k]))) for i in range(k)
            ]
            if any(e in seen_edges for e in edges):
                # Overlapping plant (possible for adversarial stride sets);
                # skip to preserve the edge-disjointness guarantee.
                continue
            for e in edges:
                seen_edges.add(e)
                g.add_edge(e[0], e[1])
            planted.append(cyc)
    return g, planted


def planted_behrend_cycles(m_part: int, k: int) -> int:
    """Number of cycles :func:`behrend_cycle_graph` plants for these
    parameters (with default strides)."""
    _, planted = behrend_cycle_graph(m_part, k)
    return len(planted)

"""Centralised ground-truth cycle queries.

These routines answer, exactly, the questions the distributed algorithm
answers approximately: *does G contain a k-cycle?*, *does a k-cycle pass
through a given edge?*.  They are used as oracles in tests and benchmarks.

Two engines are provided:

* a depth-limited DFS path enumerator (simple, good for small graphs), and
* a meet-in-the-middle joiner for ``cycles_through_edge`` that enumerates
  half-length simple paths from both endpoints and joins them on their
  endpoints with disjointness checks — much faster for k >= 7.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .._types import Edge, canonical_edge
from ..errors import ConfigurationError
from .graph import Graph

__all__ = [
    "simple_paths",
    "has_cycle_through_edge",
    "find_cycle_through_edge",
    "cycles_through_edge",
    "has_k_cycle",
    "find_k_cycle",
    "count_k_cycles",
    "enumerate_k_cycles",
    "girth",
    "is_ck_free",
]


def _check_k(k: int) -> None:
    if k < 3:
        raise ConfigurationError(f"cycle length k must be >= 3, got {k}")


def simple_paths(
    g: Graph,
    source: int,
    target: int,
    length: int,
    *,
    forbidden_edge: Optional[Edge] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield all simple paths from ``source`` to ``target`` with exactly
    ``length`` edges, optionally never traversing ``forbidden_edge``.
    """
    if length < 1:
        if length == 0 and source == target:
            yield (source,)
        return
    fe = canonical_edge(*forbidden_edge) if forbidden_edge is not None else None
    path = [source]
    on_path = {source}

    def dfs(u: int, remaining: int) -> Iterator[Tuple[int, ...]]:
        if remaining == 0:
            if u == target:
                yield tuple(path)
            return
        for v in g.neighbors(u):
            if v in on_path:
                continue
            if fe is not None and canonical_edge(u, v) == fe:
                continue
            # Prune: target must stay reachable within remaining-1 hops --
            # cheap check: if remaining == 1, v must be the target.
            if remaining == 1 and v != target:
                continue
            path.append(v)
            on_path.add(v)
            yield from dfs(v, remaining - 1)
            on_path.discard(v)
            path.pop()

    yield from dfs(source, length)


def cycles_through_edge(g: Graph, edge: Edge, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every k-cycle through ``edge`` once, as a vertex tuple
    ``(u, ..., v)`` starting at ``u`` and ending at ``v`` where
    ``edge = (u, v)`` (the closing edge is implicit).

    A k-cycle through {u, v} is a simple path of k-1 edges from u to v that
    does not itself use {u, v}.  Each such path corresponds to exactly one
    cycle traversal direction, so cycles are enumerated once per direction
    of the path; we canonicalise by requiring the second vertex to have a
    smaller index than the second-to-last to avoid double counting... except
    that paths from u to v are already direction-fixed (u first), so each
    cycle appears exactly once.
    """
    _check_k(k)
    u, v = edge
    if not g.has_edge(u, v):
        return
    yield from simple_paths(g, u, v, k - 1, forbidden_edge=(u, v))


def has_cycle_through_edge(g: Graph, edge: Edge, k: int) -> bool:
    """Whether at least one k-cycle passes through ``edge``.

    Uses meet-in-the-middle for k >= 7, DFS otherwise.
    """
    _check_k(k)
    u, v = edge
    if not g.has_edge(u, v):
        return False
    if k >= 7:
        return _mitm_cycle_through_edge(g, (u, v), k) is not None
    for _ in cycles_through_edge(g, edge, k):
        return True
    return False


def find_cycle_through_edge(g: Graph, edge: Edge, k: int) -> Optional[Tuple[int, ...]]:
    """Return one k-cycle through ``edge`` (as a u..v path tuple) or None."""
    _check_k(k)
    u, v = edge
    if not g.has_edge(u, v):
        return None
    if k >= 7:
        return _mitm_cycle_through_edge(g, (u, v), k)
    for p in cycles_through_edge(g, edge, k):
        return p
    return None


def _mitm_cycle_through_edge(g: Graph, edge: Edge, k: int) -> Optional[Tuple[int, ...]]:
    """Meet-in-the-middle search for a (k-1)-edge simple u-v path.

    Enumerate simple paths of ``a = (k-1)//2`` edges from u and of
    ``b = k-1-a`` edges from v (avoiding the edge {u,v}), bucket the u-side
    by endpoint, then join: a pair (P, Q) with P ending and Q ending at the
    same vertex w and internally disjoint yields the cycle.
    """
    u, v = edge
    a = (k - 1) // 2
    b = (k - 1) - a
    fe = canonical_edge(u, v)

    # endpoint -> list of (path tuple, interior set)
    buckets: Dict[int, List[Tuple[Tuple[int, ...], FrozenSet[int]]]] = {}
    for p in _paths_from(g, u, a, fe):
        w = p[-1]
        buckets.setdefault(w, []).append((p, frozenset(p[:-1])))
    if not buckets:
        return None
    for q in _paths_from(g, v, b, fe):
        w = q[-1]
        cand = buckets.get(w)
        if not cand:
            continue
        qset = frozenset(q[:-1])
        for p, pset in cand:
            # p: u..w (a edges), q: v..w (b edges). Need all vertices
            # distinct except the shared endpoint w.
            if pset & qset:
                continue
            if w in pset or w in qset:
                continue
            # Build the u..v path: p followed by reversed q (dropping w dup).
            full = p + tuple(reversed(q[:-1]))
            if len(set(full)) == k:
                return full
    return None


def _paths_from(
    g: Graph, source: int, length: int, forbidden: Edge
) -> Iterator[Tuple[int, ...]]:
    """All simple paths with exactly ``length`` edges starting at source,
    never using ``forbidden``."""
    path = [source]
    on_path = {source}

    def dfs(u: int, remaining: int) -> Iterator[Tuple[int, ...]]:
        if remaining == 0:
            yield tuple(path)
            return
        for w in g.neighbors(u):
            if w in on_path or canonical_edge(u, w) == forbidden:
                continue
            path.append(w)
            on_path.add(w)
            yield from dfs(w, remaining - 1)
            on_path.discard(w)
            path.pop()

    yield from dfs(source, length)


def has_k_cycle(g: Graph, k: int) -> bool:
    """Whether G contains ``C_k`` as a (not necessarily induced) subgraph."""
    _check_k(k)
    for e in g.edges():
        if has_cycle_through_edge(g, e, k):
            return True
    return False


def find_k_cycle(g: Graph, k: int) -> Optional[Tuple[int, ...]]:
    """Return the vertex tuple of one k-cycle (closing edge implicit)."""
    _check_k(k)
    for e in g.edges():
        c = find_cycle_through_edge(g, e, k)
        if c is not None:
            return c
    return None


def is_ck_free(g: Graph, k: int) -> bool:
    """Definition 1: G is Ck-free iff it has no k-cycle subgraph."""
    return not has_k_cycle(g, k)


def enumerate_k_cycles(g: Graph, k: int) -> Iterator[Tuple[int, ...]]:
    """Enumerate every k-cycle exactly once, canonicalised.

    Canonical form: rotate so the smallest vertex comes first, then choose
    the direction making the second vertex smaller than the last.
    """
    _check_k(k)
    seen: Set[Tuple[int, ...]] = set()
    for u, v in g.edges():
        for path in cycles_through_edge(g, (u, v), k):
            canon = _canonical_cycle(path)
            if canon not in seen:
                seen.add(canon)
                yield canon


def _canonical_cycle(path: Tuple[int, ...]) -> Tuple[int, ...]:
    k = len(path)
    i = path.index(min(path))
    rot = path[i:] + path[:i]
    fwd = rot
    rev = (rot[0],) + tuple(reversed(rot[1:]))
    return min(fwd, rev)


def count_k_cycles(g: Graph, k: int) -> int:
    """Number of distinct k-cycle subgraphs."""
    return sum(1 for _ in enumerate_k_cycles(g, k))


def girth(g: Graph) -> Optional[int]:
    """Length of a shortest cycle, or None for a forest.

    Standard BFS-from-every-vertex bound; exact for unweighted graphs.
    """
    best: Optional[int] = None
    for s in g.vertices():
        dist = {s: 0}
        parent = {s: -1}
        frontier = [s]
        while frontier:
            nxt = []
            for u in frontier:
                for w in g.neighbors(u):
                    if w not in dist:
                        dist[w] = dist[u] + 1
                        parent[w] = u
                        nxt.append(w)
                    elif parent[u] != w and parent.get(w) != u:
                        cyc = dist[u] + dist[w] + 1
                        if best is None or cyc < best:
                            best = cyc
            if best is not None and frontier and 2 * (dist[frontier[0]] + 1) >= best:
                break
            frontier = nxt
    return best

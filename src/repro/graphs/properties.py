"""Structural graph properties used across generators, tests and examples."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from .graph import Graph

__all__ = [
    "is_bipartite",
    "bipartition",
    "diameter",
    "eccentricity",
    "degree_histogram",
    "density",
    "is_tree",
    "bfs_distances",
]


def bfs_distances(g: Graph, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    dist = {source: 0}
    q = deque([source])
    while q:
        u = q.popleft()
        for v in g.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                q.append(v)
    return dist


def eccentricity(g: Graph, source: int) -> Optional[int]:
    """Max distance from ``source``; ``None`` if g is disconnected."""
    dist = bfs_distances(g, source)
    if len(dist) != g.n:
        return None
    return max(dist.values(), default=0)


def diameter(g: Graph) -> Optional[int]:
    """Exact diameter via all-sources BFS; ``None`` when disconnected.

    O(n·m) — fine for the laptop-scale instances this library targets.
    """
    if g.n == 0:
        return None
    best = 0
    for s in g.vertices():
        ecc = eccentricity(g, s)
        if ecc is None:
            return None
        best = max(best, ecc)
    return best


def bipartition(g: Graph) -> Optional[Tuple[List[int], List[int]]]:
    """A 2-colouring ``(side0, side1)`` or ``None`` if an odd cycle exists."""
    colour: Dict[int, int] = {}
    for s in g.vertices():
        if s in colour:
            continue
        colour[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for v in g.neighbors(u):
                if v not in colour:
                    colour[v] = colour[u] ^ 1
                    q.append(v)
                elif colour[v] == colour[u]:
                    return None
    side0 = sorted(v for v, c in colour.items() if c == 0)
    side1 = sorted(v for v, c in colour.items() if c == 1)
    return side0, side1


def is_bipartite(g: Graph) -> bool:
    """Whether g has no odd cycle."""
    return bipartition(g) is not None


def degree_histogram(g: Graph) -> Dict[int, int]:
    """``{degree: count}`` over all vertices."""
    hist: Dict[int, int] = {}
    for v in g.vertices():
        d = g.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def density(g: Graph) -> float:
    """``m / C(n, 2)`` (0.0 for n < 2)."""
    if g.n < 2:
        return 0.0
    return g.m / (g.n * (g.n - 1) / 2)


def is_tree(g: Graph) -> bool:
    """Connected and acyclic."""
    return g.n >= 1 and g.m == g.n - 1 and g.is_connected()

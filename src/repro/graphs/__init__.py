"""Graph substrate: data structure, generators, ground truth, farness.

Public surface re-exported here; see the submodules for full docs:

* :mod:`repro.graphs.graph` — the :class:`Graph` type.
* :mod:`repro.graphs.generators` — instance families (deterministic,
  random, and the paper-specific stress constructions).
* :mod:`repro.graphs.behrend` — Behrend/Salem-Spencer AP-free sets and the
  cycle-Behrend hard instances of [20].
* :mod:`repro.graphs.cycles` — exact centralized cycle queries (oracles).
* :mod:`repro.graphs.farness` — ε-farness certification machinery.
* :mod:`repro.graphs.convert` — networkx interop.
"""

from .graph import Graph
from .generators import (
    barabasi_albert_graph,
    binary_tree_graph,
    blowup_graph,
    chorded_cycle_graph,
    ck_free_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_cycles_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    figure1_graph,
    flower_graph,
    grid_graph,
    high_girth_graph,
    hypercube_graph,
    path_graph,
    planted_cycle_graph,
    planted_epsilon_far_graph,
    powerlaw_configuration_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    theta_graph,
    torus_graph,
    watts_strogatz_graph,
)
from .behrend import (
    behrend_cycle_graph,
    behrend_set,
    is_progression_free,
    salem_spencer_set,
)
from .cycles import (
    count_k_cycles,
    cycles_through_edge,
    enumerate_k_cycles,
    find_cycle_through_edge,
    find_k_cycle,
    girth,
    has_cycle_through_edge,
    has_k_cycle,
    is_ck_free,
    simple_paths,
)
from .farness import (
    farness_bounds,
    greedy_cycle_packing,
    is_epsilon_far,
    lemma4_bound,
    min_edge_deletions_to_ck_free,
)
from .convert import from_networkx, to_networkx
from .io import (
    dumps,
    dumps_stream,
    loads,
    loads_stream,
    read_edge_list,
    read_edge_stream,
    write_edge_list,
    write_edge_stream,
)
from .properties import (
    bfs_distances,
    bipartition,
    degree_histogram,
    density,
    diameter,
    eccentricity,
    is_bipartite,
    is_tree,
)

__all__ = [
    "Graph",
    # generators
    "barabasi_albert_graph",
    "binary_tree_graph",
    "blowup_graph",
    "chorded_cycle_graph",
    "ck_free_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "disjoint_cycles_graph",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "figure1_graph",
    "flower_graph",
    "grid_graph",
    "high_girth_graph",
    "hypercube_graph",
    "path_graph",
    "planted_cycle_graph",
    "planted_epsilon_far_graph",
    "powerlaw_configuration_graph",
    "random_regular_graph",
    "random_tree",
    "star_graph",
    "theta_graph",
    "torus_graph",
    "watts_strogatz_graph",
    # behrend
    "behrend_cycle_graph",
    "behrend_set",
    "is_progression_free",
    "salem_spencer_set",
    # cycles
    "count_k_cycles",
    "cycles_through_edge",
    "enumerate_k_cycles",
    "find_cycle_through_edge",
    "find_k_cycle",
    "girth",
    "has_cycle_through_edge",
    "has_k_cycle",
    "is_ck_free",
    "simple_paths",
    # farness
    "farness_bounds",
    "greedy_cycle_packing",
    "is_epsilon_far",
    "lemma4_bound",
    "min_edge_deletions_to_ck_free",
    # convert
    "from_networkx",
    "to_networkx",
    # io
    "dumps",
    "dumps_stream",
    "loads",
    "loads_stream",
    "read_edge_list",
    "read_edge_stream",
    "write_edge_list",
    "write_edge_stream",
    # properties
    "bfs_distances",
    "bipartition",
    "degree_histogram",
    "density",
    "diameter",
    "eccentricity",
    "is_bipartite",
    "is_tree",
]

"""ε-farness machinery for Ck-freeness (the paper's "sparse model").

Definitions (paper §1.1.1 / §2.2.1): an n-node m-edge graph G is ε-far from
Ck-free if adding and/or removing at most εm edges cannot make it Ck-free.
Since *adding* edges can only create cycles, the distance to Ck-freeness is
exactly the minimum number of edge *removals* that destroy every k-cycle —
a minimum hitting set over the k-cycles.

Exact computation is NP-hard in general, so we expose:

* :func:`greedy_cycle_packing` — a maximal family of edge-disjoint k-cycles;
  its size ``c`` certifies distance >= c (Lemma 4 direction: each packed
  cycle needs its own removal), i.e. farness >= c/m.
* :func:`min_edge_deletions_to_ck_free` — exact branch-and-bound hitting of
  k-cycles for small graphs (the upper-bound certificate).
* :func:`farness_bounds` — (lower, upper) bounds on the true ε.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .._types import Edge, canonical_edge
from ..errors import ConfigurationError
from .cycles import find_k_cycle
from .graph import Graph

__all__ = [
    "cycle_edges",
    "greedy_cycle_packing",
    "min_edge_deletions_to_ck_free",
    "farness_bounds",
    "is_epsilon_far",
    "lemma4_bound",
]


def cycle_edges(cycle: Tuple[int, ...]) -> List[Edge]:
    """Edges of a cycle given as a vertex tuple (closing edge included)."""
    k = len(cycle)
    return [canonical_edge(cycle[i], cycle[(i + 1) % k]) for i in range(k)]


def greedy_cycle_packing(
    g: Graph, k: int, seed=None, max_cycles: Optional[int] = None
) -> List[Tuple[int, ...]]:
    """A maximal (not maximum) family of pairwise edge-disjoint k-cycles.

    Repeatedly finds any k-cycle in the residual graph and removes its
    edges.  Randomising the vertex labels between iterations would improve
    the packing slightly; we keep it deterministic for reproducibility and
    note the result is a *lower bound* witness.
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    residual = g.copy()
    packing: List[Tuple[int, ...]] = []
    while True:
        cyc = find_k_cycle(residual, k)
        if cyc is None:
            break
        packing.append(cyc)
        for u, v in cycle_edges(cyc):
            residual.remove_edge(u, v)
        if max_cycles is not None and len(packing) >= max_cycles:
            break
    return packing


def min_edge_deletions_to_ck_free(
    g: Graph, k: int, budget: Optional[int] = None
) -> int:
    """Exact minimum number of edge deletions making G Ck-free.

    Branch and bound: find a k-cycle, branch on deleting each of its k
    edges.  Exponential in the answer — intended for the small certified
    instances used in tests.  ``budget`` caps the search depth; if the
    optimum exceeds it a :class:`ConfigurationError` is raised.
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    hard_cap = budget if budget is not None else g.m

    best: List[int] = [hard_cap + 1]

    def solve(h: Graph, removed: int) -> None:
        if removed >= best[0]:
            return
        cyc = find_k_cycle(h, k)
        if cyc is None:
            best[0] = removed
            return
        for u, v in cycle_edges(cyc):
            h.remove_edge(u, v)
            solve(h, removed + 1)
            h.add_edge(u, v)

    solve(g.copy(), 0)
    if best[0] > hard_cap:
        raise ConfigurationError(
            f"minimum deletion count exceeds budget {hard_cap}"
        )
    return best[0]


def farness_bounds(
    g: Graph, k: int, *, exact: bool = False, seed=None
) -> Tuple[float, Optional[float]]:
    """Bounds ``(lo, hi)`` on the farness ε* of G from Ck-freeness.

    * ``lo = |packing| / m`` — always computed (0 for Ck-free graphs).
    * ``hi``: with ``exact=True``, the exact distance divided by m (may be
      expensive); otherwise ``None``.

    For a Ck-free graph returns ``(0.0, 0.0)``.
    """
    if g.m == 0:
        return (0.0, 0.0)
    packing = greedy_cycle_packing(g, k, seed=seed)
    lo = len(packing) / g.m
    if not packing:
        return (0.0, 0.0)
    hi: Optional[float] = None
    if exact:
        hi = min_edge_deletions_to_ck_free(g, k) / g.m
    return (lo, hi)


def is_epsilon_far(g: Graph, k: int, eps: float, *, exact: bool = False, seed=None):
    """Tri-state ε-farness check.

    Returns ``True`` if certified ε-far (packing bound), ``False`` if
    certified not ε-far (exact distance < εm, only when ``exact=True``),
    and ``None`` when the bounds are inconclusive.
    """
    lo, hi = farness_bounds(g, k, exact=exact, seed=seed)
    if lo >= eps:
        return True
    if hi is not None and hi < eps:
        return False
    return None


def lemma4_bound(m: int, k: int, eps: float) -> float:
    """Lemma 4 ([20]): an ε-far m-edge graph has >= εm/k edge-disjoint
    k-cycles (``|E(Ck)| = k``)."""
    return eps * m / k

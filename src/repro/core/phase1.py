"""Phase 1 — random edge ranks and the prioritized multiplexing rule.

Paper §3.1: every edge is *assigned* to its smaller-ID endpoint, which
draws a uniform rank in ``[1, m²]`` and ships it across the edge (one
round).  Every node then starts Phase 2 for its minimum-rank incident
edge.  Concurrent executions share the network under the priority rule:

    a node only ever serves the smallest-rank edge it has become aware
    of; higher-rank messages are discarded, lower-rank messages cause the
    node to switch.

Ties are broken by the (sorted) edge-ID pair, as the paper suggests.
The rule guarantees that when the globally minimal rank is unique, that
edge's Phase-2 execution proceeds exactly as if it ran alone — which is
all the correctness proof needs (Lemma 5 lower-bounds the probability of
uniqueness by ``1/e²``).

:class:`MultiplexedCkProgram` packages rank exchange + selection + the
multiplexed Algorithm 1 into a single CONGEST node program of
``1 + ⌊k/2⌋`` rounds (one rank round, then Phase 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._types import IdSequence
from ..congest.message import SequenceBundle, tag_order_key
from ..congest.node import Broadcast, NodeContext, NodeProgram, Outbox
from ..errors import ConfigurationError
from .algorithm1 import (
    DetectionOutcome,
    find_detection_evidence,
    phase2_rounds,
    process_phase2_round,
)
from .pruning import HittingSetPruner, Pruner
from .sequences import sort_sequences

__all__ = [
    "MultiplexedCkProgram",
    "draw_ranks",
    "protocol_rounds",
    "RankDraw",
]

Tag = Tuple[int, Tuple[int, int]]


def protocol_rounds(k: int) -> int:
    """Rounds of one full repetition: 1 rank round + ``⌊k/2⌋`` Phase-2."""
    return 1 + phase2_rounds(k)


@dataclass(frozen=True)
class RankDraw:
    """A rank drawn for an owned edge (for introspection in tests)."""

    edge: Tuple[int, int]  # (smaller ID, larger ID)
    rank: int


def draw_ranks(
    my_id: int, neighbor_ids: Tuple[int, ...], m: int, rng: np.random.Generator
) -> List[RankDraw]:
    """Draw ranks for edges assigned to this node (those whose other
    endpoint has a larger ID), in ascending neighbour order.

    Ranks are uniform on ``[1, m²]`` — O(log n) random bits per edge, as
    the paper notes.
    """
    if m < 1:
        raise ConfigurationError("network must have at least one edge")
    hi = m * m
    draws = []
    for nb in sorted(neighbor_ids):
        if my_id < nb:
            rank = int(rng.integers(1, hi + 1))
            draws.append(RankDraw(edge=(my_id, nb), rank=rank))
    return draws


class MultiplexedCkProgram(NodeProgram):
    """Phase 1 + prioritized Phase 2 for one repetition of the tester.

    Parameters
    ----------
    ctx:
        Node context.
    k:
        Cycle length.
    master_seed:
        Seed for the repetition; each node derives an independent stream
        via ``SeedSequence((master_seed, my_id))`` so that runs are
        reproducible yet node draws are i.i.d.
    pruner:
        Pruning strategy (default: :class:`HittingSetPruner`).
    """

    def __init__(
        self,
        ctx: NodeContext,
        k: int,
        master_seed: int,
        pruner: Optional[Pruner] = None,
    ) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        self._k = k
        self._pruner = pruner if pruner is not None else HittingSetPruner()
        self._rng = np.random.default_rng(
            np.random.SeedSequence((int(master_seed) & 0x7FFFFFFF, ctx.my_id))
        )
        self._own_draws: Dict[Tuple[int, int], int] = {}
        self._tag: Optional[Tag] = None
        self._last_sent: List[IdSequence] = []
        self._last_sent_tag: Optional[Tag] = None

    # ------------------------------------------------------------------
    # Round 1: rank exchange
    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: draw and ship ranks for the owned edges."""
        if ctx.degree == 0:
            return None
        draws = draw_ranks(ctx.my_id, ctx.neighbor_ids, ctx.m_hint, self._rng)
        outbox: Dict[int, int] = {}
        for d in draws:
            self._own_draws[d.edge] = d.rank
            other = d.edge[1] if d.edge[0] == ctx.my_id else d.edge[0]
            outbox[other] = d.rank
        return outbox if outbox else {}

    # ------------------------------------------------------------------
    # Rounds 2..: selection then multiplexed Phase 2
    # ------------------------------------------------------------------
    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Round 2: select the minimum; later rounds: multiplexed Phase 2."""
        if round_index == 2:
            return self._select_and_seed(ctx, inbox)
        return self._phase2_step(ctx, round_index, inbox)

    def _select_and_seed(self, ctx: NodeContext, inbox: Dict[int, int]) -> Outbox:
        """Collect all incident ranks, pick the minimum, send the seed."""
        if ctx.degree == 0:
            return None
        ranks: Dict[Tuple[int, int], int] = dict(self._own_draws)
        for sender, rank in inbox.items():
            if not isinstance(rank, int):
                continue  # ignore stray payloads defensively
            edge = (sender, ctx.my_id) if sender < ctx.my_id else (ctx.my_id, sender)
            ranks[edge] = rank
        if not ranks:  # pragma: no cover - degree>0 implies ranks exist
            return None
        edge, rank = min(ranks.items(), key=lambda kv: (kv[1], kv[0]))
        self._tag = (rank, edge)
        seed = (ctx.my_id,)
        self._last_sent = [seed]
        self._last_sent_tag = self._tag
        return Broadcast(SequenceBundle(frozenset([seed]), rank=rank, edge=edge))

    def _phase2_step(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        t = round_index - 1  # Phase-2 round number
        best, received = self._mux(inbox)
        if best is None:
            self._last_sent = []
            return None
        self._tag = best
        send = process_phase2_round(ctx.my_id, received, self._k, t, self._pruner)
        self._last_sent = send
        self._last_sent_tag = best
        if not send:
            return None
        rank, edge = best
        return Broadcast(SequenceBundle(frozenset(send), rank=rank, edge=edge))

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> DetectionOutcome:
        """Final decision under the winning tag's sequences."""
        best, received = self._mux(inbox)
        if best is None:
            return DetectionOutcome(rejects=False)
        own = self._last_sent if self._last_sent_tag == best else []
        cycle = find_detection_evidence(ctx.my_id, self._k, own, received)
        return DetectionOutcome(rejects=cycle is not None, cycle=cycle)

    # ------------------------------------------------------------------
    def _mux(self, inbox: Dict) -> Tuple[Optional[Tag], List[IdSequence]]:
        """Apply the priority rule: find the smallest tag among the current
        one and all inbound bundles; return it with the matching sequences
        (messages with other tags are discarded, §3.1)."""
        tags: List[Tag] = [] if self._tag is None else [self._tag]
        bundles: List[Tuple[int, SequenceBundle]] = []
        for sender in sorted(inbox):
            msg = inbox[sender]
            if isinstance(msg, SequenceBundle) and msg.tag is not None:
                bundles.append((sender, msg))
                tags.append(msg.tag)
        if not tags:
            return None, []
        best = min(tags, key=tag_order_key)
        received: List[IdSequence] = []
        for _, msg in bundles:
            if msg.tag == best:
                received.extend(msg.sequences)
        return best, sort_sequences(received)

"""Helpers for the ID-sequences circulating in Phase 2.

A *sequence* is an ordered tuple of distinct node IDs forming a simple
path whose first element is ``u`` or ``v`` (Lemma 1).  Fake IDs — the
negative sentinels of Instruction 14 — exist only inside a node's local
computation and never inside a transmitted sequence.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from .._types import IdSequence

__all__ = [
    "sort_sequences",
    "collect_ids",
    "drop_containing",
    "fake_ids",
    "is_valid_sequence",
]


def sort_sequences(sequences: Iterable[IdSequence]) -> List[IdSequence]:
    """Deterministic processing order for the pruning loop.

    The paper processes ``R`` "in arbitrary order"; any fixed order is
    legal, and fixing one makes runs reproducible and lets the two pruner
    implementations be compared element-for-element.
    """
    return sorted(sequences)


def collect_ids(sequences: Iterable[IdSequence]) -> Set[int]:
    """Instruction 13: the set of IDs appearing in at least one sequence."""
    out: Set[int] = set()
    for seq in sequences:
        out.update(seq)
    return out


def drop_containing(sequences: Iterable[IdSequence], my_id: int) -> List[IdSequence]:
    """Instruction 12: remove sequences that contain this node's ID."""
    return [seq for seq in sequences if my_id not in seq]


def fake_ids(k: int, t: int) -> Tuple[int, ...]:
    """Instruction 14: the ``k - t`` fake IDs ``-1, -2, ..., -(k-t)``."""
    return tuple(range(-1, -(k - t) - 1, -1))


def is_valid_sequence(seq: IdSequence) -> bool:
    """Structural validity: a non-empty tuple of distinct non-negative IDs."""
    return (
        isinstance(seq, tuple)
        and len(seq) > 0
        and len(set(seq)) == len(seq)
        and all(isinstance(x, int) and x >= 0 for x in seq)
    )

"""The full distributed property tester for Ck-freeness (Theorem 1).

Semantics reproduced exactly:

* **1-sided error**: if G is Ck-free every node accepts in every
  repetition with probability 1 (rejection requires cycle evidence that,
  by Lemma 1, only exists when a k-cycle does).
* **ε-far instances** are rejected with probability >= 2/3 when run with
  the paper's repetition count ``⌈(e²/ε)·ln 3⌉`` (§3.5): each repetition
  succeeds when the minimum rank is unique (Lemma 5, prob >= 1/e²) *and*
  falls on one of the >= εm cycle edges guaranteed by Lemma 4.
* **Round complexity**: ``repetitions * (1 + ⌊k/2⌋)`` — O(1/ε), constant
  in n.

Repetitions are sequential protocol restarts with fresh randomness, as in
the paper ("we repeat the whole process").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..congest.engine import ensure_engine_available, create_engine
from ..congest.network import Network
from ..errors import ConfigurationError
from ..graphs.graph import Graph
from .algorithm1 import DetectionOutcome
from .bounds import repetitions_needed, rounds_per_repetition
from .pruning import HittingSetPruner, Pruner
from .verdict import RepetitionReport, TesterResult

__all__ = ["CkFreenessTester", "test_ck_freeness"]


class CkFreenessTester:
    """Distributed property tester for Ck-freeness.

    Parameters
    ----------
    k:
        Cycle length to test for (>= 3).
    epsilon:
        Property-testing parameter in (0, 1).
    repetitions:
        Override for the number of repetitions; defaults to the paper's
        ``⌈(e²/ε)·ln 3⌉``.
    pruner:
        Pruning strategy shared by all nodes.
    strict_bandwidth:
        Forward to the engine: raise if any message exceeds the
        CONGEST bit budget.
    engine:
        Scheduler backend: ``"reference"`` (per-node simulation),
        ``"fast"`` (batched numpy) or ``"sharded"`` (multi-process
        shared memory; accepts a shard count, e.g. ``"sharded:4"``);
        see :mod:`repro.congest.engine`.  All produce identical
        verdicts under a fixed seed.
    faults:
        Optional :class:`~repro.congest.faults.FaultModel`: run every
        repetition over unreliable links (reference engine only).
        Message loss preserves soundness (rejections still carry genuine
        cycle evidence) but voids the completeness guarantee.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; ``None`` resolves to the
        process global (disabled by default).  Records run/repetition/
        reject counters and a ``tester.run`` span; never affects
        verdicts or randomness.
    cache:
        Optional :class:`~repro.congest.engine.cache.EngineCache`:
        reuse a compiled engine instance when :meth:`run` sees a graph
        whose content was compiled before.  Bypassed whenever a custom
        ``network`` or a fault model is in play (those configurations
        are not content-addressable).  Verdicts, traces and telemetry
        are identical with and without a cache.
    """

    def __init__(
        self,
        k: int,
        epsilon: float,
        *,
        repetitions: Optional[int] = None,
        pruner: Optional[Pruner] = None,
        strict_bandwidth: bool = False,
        engine: str = "reference",
        faults=None,
        telemetry=None,
        cache=None,
    ) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0,1), got {epsilon}")
        if repetitions is not None and repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        self.k = k
        self.epsilon = epsilon
        self.repetitions = (
            repetitions if repetitions is not None else repetitions_needed(epsilon)
        )
        ensure_engine_available(engine)
        self.engine = engine
        self._pruner = pruner if pruner is not None else HittingSetPruner()
        self._strict = strict_bandwidth
        self._faults = faults
        self._telemetry = telemetry
        self._cache = cache

    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        *,
        seed=None,
        network: Optional[Network] = None,
        stop_on_reject: bool = True,
        keep_traces: bool = False,
    ) -> TesterResult:
        """Execute the tester on ``graph``.

        Parameters
        ----------
        seed:
            Master seed; repetition ``i`` uses an independent child seed,
            and each node derives its stream from ``(rep_seed, node_id)``.
        stop_on_reject:
            Stop after the first rejecting repetition (the verdict is
            already determined; the remaining repetitions cannot flip it).
            Set to ``False`` to measure per-repetition statistics.
        keep_traces:
            Retain the full instrumentation trace of every repetition.
        """
        from ..obs import resolve_telemetry

        telemetry = resolve_telemetry(self._telemetry)
        if graph.m == 0:
            # An edgeless graph is trivially Ck-free; all nodes accept.
            return TesterResult(
                accepted=True,
                k=self.k,
                epsilon=self.epsilon,
                repetitions_run=0,
                repetitions_planned=self.repetitions,
                rounds_per_repetition=rounds_per_repetition(self.k),
            )
        if self._cache is not None and network is None and self._faults is None:
            eng = self._cache.get(
                self.engine, graph, strict_bandwidth=self._strict,
                telemetry=telemetry,
            )
        else:
            net = network if network is not None else Network(graph)
            eng = create_engine(
                self.engine, net, strict_bandwidth=self._strict,
                faults=self._faults, telemetry=telemetry,
            )
        ss = np.random.SeedSequence(seed)
        rep_seeds = ss.generate_state(self.repetitions)

        result = TesterResult(
            accepted=True,
            k=self.k,
            epsilon=self.epsilon,
            repetitions_run=0,
            repetitions_planned=self.repetitions,
            rounds_per_repetition=rounds_per_repetition(self.k),
        )
        with telemetry.span("tester.run", k=self.k, engine=self.engine):
            # Engines batch repetitions in verdict-identical chunks (the
            # ``chunk=C`` spec option); the generator defers each
            # repetition's telemetry export to its yield, so breaking on
            # the first reject leaves serial-identical aggregates.
            runs = eng.iter_tester_chunk(
                self.k,
                [int(rep_seeds[i]) for i in range(self.repetitions)],
                pruner=self._pruner,
            )
            for i, run in enumerate(runs):
                rejecting = tuple(
                    v
                    for v, out in run.outputs.items()
                    if isinstance(out, DetectionOutcome) and out.rejects
                )
                cycle = None
                for v in rejecting:
                    if run.outputs[v].cycle is not None:
                        cycle = run.outputs[v].cycle
                        break
                rejected = bool(rejecting)
                result.reports.append(
                    RepetitionReport(
                        index=i,
                        rejected=rejected,
                        cycle_ids=cycle,
                        rejecting_vertices=rejecting,
                        rounds=run.trace.num_rounds,
                    )
                )
                if keep_traces:
                    result.traces.append(run.trace)
                result.repetitions_run = i + 1
                if rejected:
                    result.accepted = False
                    if stop_on_reject:
                        break
        if telemetry.enabled:
            telemetry.counter(
                "repro_tester_runs_total",
                "Full tester executions, by engine backend.",
                ("engine",),
            ).inc(engine=self.engine)
            telemetry.counter(
                "repro_tester_repetitions_total",
                "Tester repetitions executed, by engine backend.",
                ("engine",),
            ).inc(result.repetitions_run, engine=self.engine)
            if not result.accepted:
                telemetry.counter(
                    "repro_tester_rejects_total",
                    "Tester runs ending in rejection, by engine backend.",
                    ("engine",),
                ).inc(engine=self.engine)
        return result


def test_ck_freeness(
    graph: Graph,
    k: int,
    epsilon: float,
    *,
    seed=None,
    repetitions: Optional[int] = None,
    network: Optional[Network] = None,
    engine: str = "reference",
) -> TesterResult:
    """One-call convenience wrapper around :class:`CkFreenessTester`."""
    tester = CkFreenessTester(k, epsilon, repetitions=repetitions, engine=engine)
    return tester.run(graph, seed=seed, network=network)


# The name starts with "test_" because it *is* a property tester; tell
# pytest not to collect it when user code does `from repro import *`.
test_ck_freeness.__test__ = False  # type: ignore[attr-defined]

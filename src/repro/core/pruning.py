"""The pruning rule of Algorithm 1 (Instructions 15–23).

Given the received sequences ``R`` (each of length ``t-1``) at round ``t``
of a ``C_k`` search, a node forwards only a subfamily ``S ⊆ R`` chosen so
that (Lemma 2's invariant) *if any received sequence could be completed
into a k-cycle by k-t further vertices, some forwarded sequence can be
completed by those same vertices*.

Two implementations with provably identical behaviour:

* :class:`ExplicitPruner` — the literal transcription: materialise
  ``X`` = all (k-t)-subsets of ``I`` (collected IDs plus k-t fake IDs),
  keep ``L`` iff some remaining member of ``X`` is disjoint from it, then
  delete everything disjoint from ``L``.  Exponential in ``|I|``; used as
  the executable specification and test oracle.

* :class:`HittingSetPruner` — the equivalent lazy rule: ``L`` is kept iff
  no previously kept ``K`` satisfies ``K ⊆ L`` and the family
  ``{K \\ L : K kept so far}`` has a hitting set of size ``<= k - t``.

  *Why equivalent:* a surviving witness ``X`` (|X| = k-t, X ∩ L = ∅,
  X ∩ K ≠ ∅ for every earlier kept K) yields the hitting set
  ``X ∩ (real IDs)`` of the residues; conversely a hitting set ``H`` of
  the residues (|H| <= k-t, H ∩ L = ∅ since residues avoid L) padded with
  unused fake IDs to exactly k-t elements is a surviving witness.  Fake
  IDs make the padding always possible and hit no residue, so the two
  decisions coincide sequence-for-sequence when processed in the same
  order.  (``tests/test_pruning.py`` checks this exhaustively and with
  hypothesis.)

Both process sequences in the deterministic sorted order from
:func:`repro.core.sequences.sort_sequences`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, List, Sequence, Set

from .._types import IdSequence
from ..combinatorics.hitting import has_hitting_set
from ..combinatorics.subsets import count_k_subsets, k_subsets
from ..errors import ConfigurationError
from .sequences import collect_ids, fake_ids, sort_sequences

__all__ = ["Pruner", "ExplicitPruner", "HittingSetPruner", "lemma3_bound"]


def lemma3_bound(k: int, t: int) -> int:
    """Lemma 3: a message sent at round ``t`` carries at most
    ``(k - t + 1)^(t - 1)`` sequences (of ``t`` IDs each)."""
    if not 1 <= t <= k // 2:
        raise ConfigurationError(f"round t={t} outside 1..k//2 for k={k}")
    return (k - t + 1) ** (t - 1)


class Pruner(ABC):
    """Strategy interface for the round-``t`` sequence selection."""

    @abstractmethod
    def select(
        self, sequences: Sequence[IdSequence], k: int, t: int
    ) -> List[IdSequence]:
        """Return the kept subfamily of ``sequences`` (each of length t-1),
        in processing order.  ``t`` is the current round, ``2 <= t <= k//2``.
        """

    @staticmethod
    def _check(sequences: Sequence[IdSequence], k: int, t: int) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        if not 2 <= t <= k // 2:
            raise ConfigurationError(
                f"pruning happens at rounds 2..k//2; got t={t} for k={k}"
            )
        for seq in sequences:
            if len(seq) != t - 1:
                raise ConfigurationError(
                    f"round-{t} sequences must have {t - 1} IDs, got {seq!r}"
                )


class ExplicitPruner(Pruner):
    """Literal Instructions 15–23 (exponential; specification/oracle).

    ``max_subsets`` guards against accidental combinatorial blow-up when
    someone runs the oracle on a large instance.
    """

    def __init__(self, max_subsets: int = 2_000_000):
        self._max_subsets = max_subsets

    def select(
        self, sequences: Sequence[IdSequence], k: int, t: int
    ) -> List[IdSequence]:
        """Literal Instructions 15-23 over materialised witness subsets."""
        self._check(sequences, k, t)
        ordered = sort_sequences(sequences)
        if not ordered:
            return []
        ids: Set[int] = collect_ids(ordered)
        ids.update(fake_ids(k, t))  # Instruction 14
        ground = sorted(ids)
        q = k - t
        if count_k_subsets(len(ground), q) > self._max_subsets:
            raise ConfigurationError(
                f"explicit pruner would enumerate more than "
                f"{self._max_subsets} subsets; use HittingSetPruner"
            )
        # Instruction 15: X <- all (k-t)-subsets of I.
        X: Set[FrozenSet[int]] = set(k_subsets(ground, q))
        kept: List[IdSequence] = []
        for L in ordered:  # Instructions 17-23
            Lset = frozenset(L)
            C = {x for x in X if not (x & Lset)}
            if C:
                kept.append(L)
                X -= C
        return kept


class HittingSetPruner(Pruner):
    """Lazy, behaviourally-identical pruner (the production default)."""

    def select(
        self, sequences: Sequence[IdSequence], k: int, t: int
    ) -> List[IdSequence]:
        """Equivalent lazy rule via hitting sets of kept-set residues."""
        self._check(sequences, k, t)
        ordered = sort_sequences(sequences)
        q = k - t
        kept: List[IdSequence] = []
        kept_sets: List[FrozenSet[int]] = []
        for L in ordered:
            Lset = frozenset(L)
            residues = []
            dominated = False
            for K in kept_sets:
                r = K - Lset
                if not r:
                    # K ⊆ L: every (k-t)-subset disjoint from L is also
                    # disjoint from K, hence already consumed.
                    dominated = True
                    break
                residues.append(r)
            if dominated:
                continue
            if has_hitting_set(residues, q):
                kept.append(L)
                kept_sets.append(Lset)
        return kept

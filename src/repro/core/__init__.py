"""The paper's core contribution: Algorithm 1, Phase 1, and the tester."""

from .algorithm1 import (
    DetectCkProgram,
    DetectionOutcome,
    EdgeDetectionResult,
    detect_cycle_through_edge,
    find_detection_evidence,
    phase2_rounds,
    process_phase2_round,
)
from .bounds import (
    exact_distinct_rank_probability,
    lemma3_bound,
    lemma5_bound,
    max_sequences_any_round,
    message_bits_bound,
    per_repetition_detection_bound,
    repetitions_needed,
    rounds_per_repetition,
    total_rounds,
)
from .phase1 import MultiplexedCkProgram, RankDraw, draw_ranks, protocol_rounds
from .pruning import ExplicitPruner, HittingSetPruner, Pruner
from .sequences import (
    collect_ids,
    drop_containing,
    fake_ids,
    is_valid_sequence,
    sort_sequences,
)
from .tester import CkFreenessTester, test_ck_freeness
from .verify import evidence_to_vertices, verify_cycle_evidence
from .verdict import RepetitionReport, TesterResult

__all__ = [
    "CkFreenessTester",
    "DetectCkProgram",
    "DetectionOutcome",
    "EdgeDetectionResult",
    "ExplicitPruner",
    "HittingSetPruner",
    "MultiplexedCkProgram",
    "Pruner",
    "RankDraw",
    "RepetitionReport",
    "TesterResult",
    "collect_ids",
    "detect_cycle_through_edge",
    "draw_ranks",
    "drop_containing",
    "exact_distinct_rank_probability",
    "fake_ids",
    "find_detection_evidence",
    "is_valid_sequence",
    "lemma3_bound",
    "lemma5_bound",
    "max_sequences_any_round",
    "message_bits_bound",
    "per_repetition_detection_bound",
    "phase2_rounds",
    "process_phase2_round",
    "protocol_rounds",
    "repetitions_needed",
    "rounds_per_repetition",
    "sort_sequences",
    "test_ck_freeness",
    "total_rounds",
    "evidence_to_vertices",
    "verify_cycle_evidence",
]

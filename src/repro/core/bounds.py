"""Closed-form quantities from the paper's analysis.

Every bound the experiments compare against lives here, so benchmark code
never re-derives arithmetic inline.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import ConfigurationError
from .pruning import lemma3_bound

__all__ = [
    "lemma3_bound",
    "max_sequences_any_round",
    "exact_distinct_rank_probability",
    "lemma5_bound",
    "per_repetition_detection_bound",
    "repetitions_needed",
    "rounds_per_repetition",
    "total_rounds",
    "message_bits_bound",
]


def max_sequences_any_round(k: int) -> int:
    """``max_t (k-t+1)^(t-1)`` over ``t = 1..⌊k/2⌋`` — the per-message
    sequence bound that holds throughout an execution (Lemma 3)."""
    return max(lemma3_bound(k, t) for t in range(1, k // 2 + 1))


def exact_distinct_rank_probability(m: int) -> float:
    """Exact probability that m i.i.d. uniform ranks on ``[1, m²]`` are all
    distinct: ``m²! / ((m²-m)! * m^(2m))`` computed stably in logs."""
    if m < 1:
        raise ConfigurationError("m must be >= 1")
    log_p = 0.0
    mm = m * m
    for i in range(m):
        log_p += math.log(mm - i) - math.log(mm)
    return math.exp(log_p)


def lemma5_bound() -> float:
    """Lemma 5: the no-collision probability is at least ``1/e²``."""
    return math.exp(-2.0)


def per_repetition_detection_bound(eps: float) -> float:
    """Per-repetition rejection probability on an ε-far instance:
    ``P[E] >= ε/e²`` (unique minimum ∧ minimum lies on a k-cycle; §3.5)."""
    _check_eps(eps)
    return eps * math.exp(-2.0)


def repetitions_needed(eps: float) -> int:
    """``⌈(e²/ε)·ln 3⌉`` repetitions push the rejection probability on
    ε-far instances to at least 2/3 (§3.5)."""
    _check_eps(eps)
    return math.ceil((math.e ** 2 / eps) * math.log(3.0))


def rounds_per_repetition(k: int) -> int:
    """One rank round plus ``⌊k/2⌋`` Phase-2 rounds."""
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    return 1 + k // 2


def total_rounds(k: int, eps: float, repetitions: Optional[int] = None) -> int:
    """Total round complexity of the tester: ``reps * (1 + ⌊k/2⌋)``.

    Constant in n, Θ(1/ε) in the testing parameter — Theorem 1.
    """
    reps = repetitions if repetitions is not None else repetitions_needed(eps)
    return reps * rounds_per_repetition(k)


def message_bits_bound(k: int, t: int, id_bits: int, header_bits: int = 8) -> int:
    """Bits of a round-``t`` message under Lemma 3: at most
    ``(k-t+1)^(t-1)`` sequences of ``t`` IDs (+ per-sequence and
    per-message headers).  O_k(log n) for fixed k."""
    seqs = lemma3_bound(k, t)
    return seqs * (t * id_bits + header_bits) + header_bits


def _check_eps(eps: float) -> None:
    if not 0.0 < eps < 1.0:
        raise ConfigurationError(f"epsilon must be in (0,1), got {eps}")

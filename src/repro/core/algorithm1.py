"""Algorithm 1 — deterministic detection of a k-cycle through a fixed edge.

This module implements Phase 2 of the paper as a CONGEST node program:
``DetectCkProgram`` runs ``⌊k/2⌋`` communication rounds and, at the end,
every node outputs *accept* or *reject* together with cycle evidence.

Protocol recap (paper §3.2–§3.3, Algorithm 1):

* **Round 1.** The endpoints of ``e = {u, v}`` broadcast the singleton
  sequence ``(my_id,)``.
* **Rounds t = 2 .. ⌊k/2⌋.** A node that received sequences last round
  drops those containing its own ID (Instr. 12), prunes the remainder with
  the representative-family rule (Instr. 15–23, see
  :mod:`repro.core.pruning`), appends its own ID (Instr. 24) and
  broadcasts the result.
* **Final decision (Instr. 31–42).**

  - odd ``k``: reject iff two sequences *received at round ⌊k/2⌋* satisfy
    ``|L1 ∪ L2 ∪ {my_id}| = k``;
  - even ``k``: reject iff one sequence from the node's *own final send*
    ``S`` (which ends with ``my_id``) and one sequence *received at round
    ⌊k/2⌋* satisfy the same cardinality condition.

  **Deviation note (documented in DESIGN.md):** the paper's listing says
  "received at round ⌊k/2⌋ − 1" for even k, but then no pair could ever
  reach cardinality k (``|L1| = k/2`` including ``my_id`` and
  ``|L2| = k/2 − 1`` give a union of at most ``k − 1``).  The proof of
  Lemma 2 (even case) explicitly pairs a length-k/2 member of S with a
  length-k/2 sequence *not* containing ``ID(w)``, i.e. one received at the
  final round; we implement the proof's version.

The cardinality condition alone guarantees soundness: by Lemma 1 every
sequence is a simple path starting at ``u`` or ``v`` and ending at the
sender, so any pair reaching cardinality ``k`` closes into a genuine
k-cycle through ``e`` (we return that cycle as evidence; tests verify it
edge-by-edge against the input graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .._types import IdSequence
from ..congest.message import SequenceBundle
from ..congest.network import Network
from ..congest.node import Broadcast, NodeContext, NodeProgram, Outbox
from ..congest.scheduler import RunResult
from ..errors import ConfigurationError
from .pruning import HittingSetPruner, Pruner
from .sequences import drop_containing, sort_sequences

__all__ = [
    "DetectCkProgram",
    "DetectionOutcome",
    "EdgeDetectionResult",
    "phase2_rounds",
    "detect_cycle_through_edge",
    "find_detection_evidence",
]


def phase2_rounds(k: int) -> int:
    """Number of communication rounds of Algorithm 1: ``⌊k/2⌋``."""
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    return k // 2


@dataclass(frozen=True)
class DetectionOutcome:
    """Per-node output of Algorithm 1.

    ``rejects`` is true when the node detected a k-cycle; ``cycle`` then
    holds the k node IDs in cyclic order (closing edge implicit).
    """

    rejects: bool
    cycle: Optional[Tuple[int, ...]] = None


class DetectCkProgram(NodeProgram):
    """Node program for "does a k-cycle pass through ``edge``?".

    Parameters
    ----------
    ctx:
        Node context (injected by the scheduler factory).
    k:
        Cycle length, >= 3.
    edge:
        The target edge as a pair of *node IDs*.
    pruner:
        Pruning strategy; defaults to the fast :class:`HittingSetPruner`.
    """

    def __init__(
        self,
        ctx: NodeContext,
        k: int,
        edge: Tuple[int, int],
        pruner: Optional[Pruner] = None,
    ) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        u, v = edge
        if u == v:
            raise ConfigurationError("edge endpoints must differ")
        self._k = k
        self._edge = (u, v) if u < v else (v, u)
        self._pruner = pruner if pruner is not None else HittingSetPruner()
        #: The set S sent at the most recent round (Instruction 28).
        self._last_sent: List[IdSequence] = []
        self._received_any = False

    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1 (Instr. 1-9): endpoints broadcast their singletons."""
        if ctx.my_id in self._edge:
            seed = (ctx.my_id,)
            self._last_sent = [seed]
            return Broadcast(SequenceBundle(frozenset([seed])))
        self._last_sent = []
        return None

    def on_round(
        self, ctx: NodeContext, round_index: int, inbox: Dict[int, SequenceBundle]
    ) -> Outbox:
        """Rounds 2..k//2 (Instr. 10-27): drop, prune, append, broadcast."""
        t = round_index  # Phase-2 round number == scheduler round here.
        received = _gather(inbox)
        if received:
            self._received_any = True
        send = process_phase2_round(ctx.my_id, received, self._k, t, self._pruner)
        self._last_sent = send
        if not send:
            return None
        return Broadcast(SequenceBundle(frozenset(send)))

    def on_finish(
        self, ctx: NodeContext, inbox: Dict[int, SequenceBundle]
    ) -> DetectionOutcome:
        """Final decision (Instr. 31-42) with cycle evidence."""
        received = _gather(inbox)
        if received:
            self._received_any = True
        if not self._received_any and not received:
            return DetectionOutcome(rejects=False)  # Instruction 41
        cycle = find_detection_evidence(
            ctx.my_id, self._k, self._last_sent, received
        )
        return DetectionOutcome(rejects=cycle is not None, cycle=cycle)


def _gather(inbox: Dict[int, SequenceBundle]) -> List[IdSequence]:
    """Flatten an inbox of bundles into a deterministic sequence list."""
    out: List[IdSequence] = []
    for sender in sorted(inbox):
        bundle = inbox[sender]
        out.extend(bundle.sequences)
    return sort_sequences(out)


def process_phase2_round(
    my_id: int,
    received: Sequence[IdSequence],
    k: int,
    t: int,
    pruner: Pruner,
) -> List[IdSequence]:
    """Instructions 10–27 for round ``t``: returns the sequences to send.

    ``received`` are the sequences that arrived at round ``t - 1`` (length
    ``t - 1`` each); the result contains sequences of length ``t`` ending
    in ``my_id``.  Returns ``[]`` when nothing was received (Instr. 25–27).
    """
    if not received:
        return []
    R = drop_containing(received, my_id)  # Instruction 12
    if not R:
        return []
    kept = pruner.select(R, k, t)  # Instructions 13-23
    return [seq + (my_id,) for seq in kept]  # Instruction 24


def find_detection_evidence(
    my_id: int,
    k: int,
    last_sent: Sequence[IdSequence],
    received_final: Sequence[IdSequence],
) -> Optional[Tuple[int, ...]]:
    """Instructions 31–42: return the witnessed k-cycle (IDs, cyclic order)
    or ``None``.

    For odd k both sequences come from ``received_final``; for even k one
    comes from ``last_sent`` (ending in ``my_id``) and one from
    ``received_final``.  The only filter is the paper's cardinality
    condition ``|L1 ∪ L2 ∪ {my_id}| = k``, which by Lemma 1 certifies a
    genuine cycle.
    """
    if k % 2 == 1:
        pool = list(received_final)
        for i, L1 in enumerate(pool):
            s1 = set(L1)
            if my_id in s1:
                continue  # cannot reach cardinality k anyway; skip early
            for L2 in pool[i + 1:]:
                s2 = set(L2)
                if len(s1 | s2 | {my_id}) == k:
                    # Cycle: x1..xl, w, ym..y1 (closing edge {x1,y1}={u,v}).
                    return tuple(L1) + (my_id,) + tuple(reversed(L2))
        return None
    for L1 in last_sent:
        s1 = set(L1)  # length k/2, contains my_id (appended last)
        if len(s1) != k // 2 or my_id not in s1:
            continue
        for L2 in received_final:
            s2 = set(L2)
            if len(s1 | s2 | {my_id}) == k:
                # L1 already ends with my_id; reverse L2 to close the cycle.
                return tuple(L1) + tuple(reversed(L2))
    return None


# ---------------------------------------------------------------------------
# High-level convenience runner
# ---------------------------------------------------------------------------
@dataclass
class EdgeDetectionResult:
    """Outcome of running Algorithm 1 on a whole network for one edge."""

    detected: bool
    #: vertex index -> DetectionOutcome
    outcomes: Dict[int, DetectionOutcome]
    run: RunResult

    @property
    def rejecting_vertices(self) -> List[int]:
        """Vertex indices that output reject."""
        return [v for v, o in self.outcomes.items() if o.rejects]

    def any_cycle_ids(self) -> Optional[Tuple[int, ...]]:
        """Some witnessed cycle (node IDs), if any node produced one."""
        for o in self.outcomes.values():
            if o.cycle is not None:
                return o.cycle
        return None


def detect_cycle_through_edge(
    graph,
    edge: Tuple[int, int],
    k: int,
    *,
    network: Optional[Network] = None,
    pruner: Optional[Pruner] = None,
    strict_bandwidth: bool = False,
    engine: str = "reference",
    faults=None,
    telemetry=None,
    cache=None,
) -> EdgeDetectionResult:
    """Run Algorithm 1 for ``edge`` (vertex indices) on ``graph``.

    This is the deterministic inner procedure: *"even if there is just a
    single k-cycle passing through e, that cycle will be detected"*
    (paper §1.2).  Completeness and soundness are exact, not statistical.

    Parameters
    ----------
    graph:
        A :class:`repro.graphs.Graph`.
    edge:
        Pair of *vertex indices* (the public API speaks vertices; node IDs
        are an internal naming layer).
    k:
        Cycle length.
    network:
        Optionally a prebuilt :class:`Network` (to control ID assignment).
    engine:
        Scheduler backend (``"reference"``, ``"fast"`` or a sharded
        spec such as ``"sharded:4"``); see
        :mod:`repro.congest.engine`.
    faults:
        Optional :class:`~repro.congest.faults.FaultModel` (reference
        engine only): dropped deliveries can hide the only witness, so
        the deterministic completeness guarantee no longer applies.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; ``None`` resolves to the
        process global (disabled by default).
    cache:
        Optional :class:`~repro.congest.engine.cache.EngineCache`:
        reuse the compiled engine across calls on the same graph
        content.  Bypassed when ``network`` or ``faults`` is given.
    """
    from ..congest.engine import create_engine
    from ..obs import resolve_telemetry

    tel = resolve_telemetry(telemetry)
    u, v = edge
    if not graph.has_edge(u, v):
        raise ConfigurationError(f"edge {edge} not in graph")
    if cache is not None and network is None and faults is None:
        eng = cache.get(
            engine, graph, strict_bandwidth=strict_bandwidth, telemetry=tel,
        )
        net = eng.network
    else:
        net = network if network is not None else Network(graph)
        eng = create_engine(
            engine, net, strict_bandwidth=strict_bandwidth, faults=faults,
            telemetry=tel,
        )
    edge_ids = net.edge_ids(u, v)
    with tel.span("detect.run", k=k, engine=engine):
        result = eng.run_detect(k, edge_ids, pruner=pruner)
    outcomes: Dict[int, DetectionOutcome] = result.outputs
    detected = any(o.rejects for o in outcomes.values())
    if tel.enabled:
        tel.counter(
            "repro_detect_runs_total",
            "Algorithm 1 edge detections run, by engine backend.",
            ("engine",),
        ).inc(engine=engine)
        if detected:
            tel.counter(
                "repro_detect_hits_total",
                "Edge detections that found a k-cycle, by engine backend.",
                ("engine",),
            ).inc(engine=engine)
    return EdgeDetectionResult(detected=detected, outcomes=outcomes, run=result)

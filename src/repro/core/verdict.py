"""Result containers for the distributed tester."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..congest.instrumentation import ExecutionTrace

__all__ = ["RepetitionReport", "TesterResult"]


@dataclass(frozen=True)
class RepetitionReport:
    """What happened in one repetition of the protocol."""

    index: int
    rejected: bool
    #: Cycle evidence as node IDs in cyclic order (if any node rejected).
    cycle_ids: Optional[Tuple[int, ...]]
    #: Vertices (indices) that output reject.
    rejecting_vertices: Tuple[int, ...]
    rounds: int


@dataclass
class TesterResult:
    """Aggregate output of :class:`repro.core.tester.CkFreenessTester`.

    ``accepted`` follows the paper's convention: the network accepts iff
    *every node in every repetition* accepted.  By the 1-sided-error
    guarantee, ``accepted=False`` always comes with verified cycle
    evidence.
    """

    accepted: bool
    k: int
    epsilon: float
    repetitions_run: int
    repetitions_planned: int
    rounds_per_repetition: int
    reports: List[RepetitionReport] = field(default_factory=list)
    traces: List[ExecutionTrace] = field(default_factory=list)

    @property
    def rejected(self) -> bool:
        """Convenience negation of ``accepted``."""
        return not self.accepted

    @property
    def total_rounds(self) -> int:
        """Communication rounds summed over executed repetitions."""
        return sum(r.rounds for r in self.reports)

    @property
    def evidence(self) -> Optional[Tuple[int, ...]]:
        """Cycle evidence (node IDs) from the first rejecting repetition."""
        for r in self.reports:
            if r.rejected and r.cycle_ids is not None:
                return r.cycle_ids
        return None

    @property
    def max_sequences_per_message(self) -> int:
        """Largest per-message sequence count across kept traces."""
        return max((t.max_sequences_per_message for t in self.traces), default=0)

    def __repr__(self) -> str:
        verdict = "accept" if self.accepted else "reject"
        return (
            f"TesterResult({verdict}, k={self.k}, eps={self.epsilon}, "
            f"reps={self.repetitions_run}/{self.repetitions_planned}, "
            f"rounds={self.total_rounds})"
        )

"""Independent verification of cycle evidence.

The tester's 1-sidedness means every rejection carries a witness.  This
module checks such witnesses against the actual graph, so downstream
users (and our own test-suite) never have to trust the protocol:

    ok = verify_cycle_evidence(graph, network, result.evidence, k)
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..congest.network import Network
from ..graphs.graph import Graph

__all__ = ["verify_cycle_evidence", "evidence_to_vertices"]


def evidence_to_vertices(
    network: Optional[Network], ids: Sequence[int]
) -> Tuple[int, ...]:
    """Map evidence node IDs back to vertex indices (identity when no
    network is given)."""
    if network is None:
        return tuple(int(i) for i in ids)
    return tuple(network.vertex_of(int(i)) for i in ids)


def verify_cycle_evidence(
    graph: Graph,
    evidence_ids: Sequence[int],
    k: int,
    *,
    network: Optional[Network] = None,
    through_edge: Optional[Tuple[int, int]] = None,
) -> bool:
    """Whether ``evidence_ids`` is a genuine simple k-cycle in ``graph``.

    Parameters
    ----------
    evidence_ids:
        The cyclic ID tuple from a :class:`TesterResult` or
        :class:`DetectionOutcome` (closing edge implicit).
    network:
        The network the result came from (for the ID → vertex mapping);
        omit when identity IDs were used.
    through_edge:
        If given (vertex indices), additionally require the cycle to pass
        through this edge.
    """
    if evidence_ids is None:
        return False
    if len(evidence_ids) != k:
        return False
    try:
        verts = evidence_to_vertices(network, evidence_ids)
    except Exception:
        return False
    if len(set(verts)) != k:
        return False
    cycle_edges = set()
    for i in range(k):
        u, v = verts[i], verts[(i + 1) % k]
        if not graph.has_edge(u, v):
            return False
        cycle_edges.add((u, v) if u < v else (v, u))
    if through_edge is not None:
        a, b = through_edge
        if ((a, b) if a < b else (b, a)) not in cycle_edges:
            return False
    return True

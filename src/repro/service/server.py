"""The asyncio HTTP/1.1 daemon serving detection sessions.

:class:`ServiceServer` is a single-process, single-event-loop server
built directly on :func:`asyncio.start_server` — no web framework, no
new runtime dependency (the same zero-dependency stance as
:mod:`repro.obs`).  It implements the small HTTP/1.1 subset the protocol
needs: request line + headers, ``Content-Length`` bodies, keep-alive
connections, and ``Connection: close`` on unrecoverable transport
errors.

Operational properties (each tested in ``tests/test_service*.py``):

* **per-session single-writer ordering** — mutation batches and
  snapshots run under the session's :class:`asyncio.Lock`;
* **per-request timeout** — every handler runs inside
  :func:`asyncio.wait_for`; expiry returns a 504 envelope.  The budget
  covers lock waits and I/O; a long synchronous detection inside the
  monitor cannot be pre-empted mid-call (cooperative scheduling);
* **bounded bodies** — requests larger than ``max_body_bytes`` get a
  413 envelope and the connection is closed (the oversized body is
  never buffered);
* **bounded sessions** — the :class:`~repro.service.sessions
  .SessionManager` LRU-evicts idle sessions at the cap;
* **graceful drain** — :meth:`stop` stops accepting connections, lets
  in-flight requests finish (up to ``drain_timeout``), then closes
  idle keep-alive connections.

Every response is counted in ``repro_service_requests_total`` (by
endpoint and status) and timed into ``repro_service_request_seconds``
(by endpoint); ``GET /metrics`` renders the registry through the
round-trip-safe Prometheus writer of :mod:`repro.obs.exposition`.

Every request is also **traced**: the server parses the client's W3C
``traceparent`` header (malformed values restart the trace with fresh
ids — never an error), assigns the request its own span id, installs the
pair as the ambient :func:`~repro.obs.tracing.activate_trace` context so
monitor/engine spans opened by the handler chain to it, emits one
``request`` *wide event* to the telemetry sink (endpoint, status, bytes
in/out, duration, session, actions, trace ids), and echoes the
``traceparent`` on the response so clients can join their rows to
server-side events (``repro obs trace``).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..congest.engine import parse_engine_spec
from ..errors import ConfigurationError, GraphError
from ..graphs import io as graph_io
from ..graphs.graph import Graph
from ..obs import Telemetry
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS
from ..obs.tracing import (
    TraceContext,
    TraceIdSource,
    activate_trace,
    format_traceparent,
    parse_traceparent,
)
from .protocol import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_SESSIONS,
    DEFAULT_REQUEST_TIMEOUT,
    PROTOCOL_VERSION,
    ServiceError,
    error_body,
    json_dumps,
    parse_stream_batch,
)
from .sessions import SessionManager

__all__ = ["Request", "ServiceConfig", "ServiceServer"]

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Content type of the Prometheus exposition format.
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    oversized: bool = False  #: Content-Length beyond the body cap

    def json(self) -> Dict[str, Any]:
        """The body as a JSON object; 400 on anything else."""
        try:
            payload = json.loads(self.body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, "bad_request", f"request body is not valid JSON ({exc})"
            ) from exc
        if not isinstance(payload, dict):
            raise ServiceError(
                400,
                "bad_request",
                f"request body must be a JSON object, got " f"{type(payload).__name__}",
            )
        return payload

    def text(self) -> str:
        """The body as UTF-8 text; 400 on undecodable bytes."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServiceError(
                400, "bad_request", f"request body is not UTF-8 ({exc})"
            ) from exc


@dataclass
class ServiceConfig:
    """Tunables of one :class:`ServiceServer`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 binds an ephemeral port (see ``ServiceServer.port``)
    max_sessions: int = DEFAULT_MAX_SESSIONS
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    idle_timeout: float = 60.0  #: keep-alive read patience, seconds
    drain_timeout: float = 10.0  #: stop() patience for in-flight requests
    debug: bool = False  #: enables GET /debug/sleep (timeout testing)
    default_engine: str = "reference"
    extra: Dict[str, Any] = field(default_factory=dict)


class ServiceServer:
    """The detection-as-a-service daemon (one asyncio event loop).

    Parameters
    ----------
    config:
        Tunables; defaults serve on an ephemeral localhost port.
    telemetry:
        The :class:`~repro.obs.Telemetry` that backs ``/metrics``.  The
        server always needs a live registry, so ``None`` creates a
        private in-memory one (the library-wide off-by-default global
        is not touched).  Session monitors share it, so the monitor's
        own cache-hit counters are exported alongside the service
        families.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        ids = getattr(self.telemetry, "ids", None)
        self._ids = ids if ids is not None else TraceIdSource()
        self.sessions = SessionManager(
            self.config.max_sessions, telemetry=self.telemetry
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._busy = 0
        self._draining = False
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections; sets :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=max(self.config.max_body_bytes, 1 << 16),
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (``repro serve`` runs this)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, drain, close.

        With ``drain`` the server waits (up to ``drain_timeout``) for
        requests already being handled; idle keep-alive connections are
        then closed immediately.  Without ``drain`` everything is torn
        down at once.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout
            while self._busy and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._conn_loop(reader, writer)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, EOFError, ValueError, OSError):
            pass  # broken or abusive transport: just drop the connection
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _conn_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve keep-alive requests on one connection until close."""
        while not self._draining:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader),
                    timeout=self.config.idle_timeout,
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive connection: close silently
            except ServiceError as exc:
                # Transport-level parse failure: answer and close.
                await self._write_response(
                    writer,
                    exc.status,
                    json_dumps(exc.envelope()),
                    close=True,
                )
                self._count_request("_transport", exc.status)
                return
            if request is None:
                return  # clean EOF between requests
            status, payload, content_type, traceparent = await self._dispatch(request)
            close = (
                request.headers.get("connection", "").lower() == "close"
                or status == 413
                or self._draining
            )
            await self._write_response(
                writer,
                status,
                payload,
                content_type=content_type,
                close=close,
                traceparent=traceparent,
            )
            if close:
                return

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[Request]:
        """Parse one request off the wire; ``None`` on clean EOF."""
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError) as exc:
            raise ServiceError(
                400, "bad_request", f"unreadable request line ({exc})"
            ) from exc
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise ServiceError(
                400, "bad_request", f"malformed request line {line!r}"
            ) from None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 64:
                raise ServiceError(400, "bad_request", "too many headers")
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServiceError(
                400,
                "bad_request",
                f"invalid Content-Length {headers.get('content-length')!r}",
            ) from None
        if length < 0:
            raise ServiceError(400, "bad_request", "negative Content-Length")
        if length > self.config.max_body_bytes:
            # Refuse without buffering; the conn closes after the reply.
            split = urlsplit(target)
            return Request(method.upper(), split.path, {}, headers, b"", oversized=True)
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {key: values[-1] for key, values in parse_qs(split.query).items()}
        return Request(method.upper(), split.path, query, headers, body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: str,
        *,
        content_type: str = "application/json",
        close: bool = False,
        traceparent: Optional[str] = None,
    ) -> None:
        body = payload.encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        trace_line = f"Traceparent: {traceparent}\r\n" if traceparent else ""
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{trace_line}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> Tuple[int, str, str, str]:
        """Route one request; returns ``(status, payload, content_type,
        traceparent)``.

        The request adopts the trace of a valid incoming ``traceparent``
        header (the client's span becomes ``parent_id``); anything
        invalid restarts the trace with fresh deterministic ids, per the
        W3C spec.  The handler runs under :func:`activate_trace`, so
        every span it opens chains to this request's span id, and one
        ``request`` wide event summarising the exchange is emitted to
        the telemetry sink.
        """
        started = time.perf_counter()
        endpoint = "_unmatched"
        incoming = parse_traceparent(request.headers.get("traceparent"))
        if incoming is not None:
            trace_id: str = incoming.trace_id
            parent_id: Optional[str] = incoming.span_id
        else:
            trace_id = self._ids.trace_id()
            parent_id = None
        span_id = self._ids.span_id()
        try:
            if request.oversized:
                raise ServiceError(
                    413,
                    "payload_too_large",
                    f"request body exceeds {self.config.max_body_bytes} " f"bytes",
                )
            if self._draining:
                raise ServiceError(
                    503, "draining", "server is draining; no new requests"
                )
            endpoint, handler = self._route(request)
            self._busy += 1
            try:
                with activate_trace(TraceContext(trace_id, span_id)):
                    status, payload = await asyncio.wait_for(
                        handler(request),
                        timeout=self.config.request_timeout,
                    )
            finally:
                self._busy -= 1
        except asyncio.TimeoutError:
            status = 504
            payload = error_body(
                504,
                "timeout",
                f"request exceeded the " f"{self.config.request_timeout:g}s budget",
            )
        except ServiceError as exc:
            status, payload = exc.status, exc.envelope()
        except Exception as exc:  # noqa: BLE001 - a daemon must not die
            status = 500
            payload = error_body(500, "internal", f"{type(exc).__name__}: {exc}")
        content_type = "application/json"
        if isinstance(payload, str):
            content_type = _PROM_CONTENT_TYPE
            text = payload
        else:
            text = json_dumps(payload)
        elapsed = time.perf_counter() - started
        self._count_request(endpoint, status)
        self.telemetry.histogram(
            "repro_service_request_seconds",
            "Service request latency by endpoint.",
            ("endpoint",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).observe(elapsed, endpoint=endpoint)
        event: Dict[str, Any] = {
            "type": "request",
            "endpoint": endpoint,
            "method": request.method,
            "path": request.path,
            "status": status,
            "bytes_in": len(request.body),
            "bytes_out": len(text.encode("utf-8")),
            "elapsed_ms": round(elapsed * 1e3, 3),
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
        }
        if isinstance(payload, dict):
            if payload.get("name") is not None:
                event["session"] = payload["name"]
            if payload.get("actions") is not None:
                event["actions"] = payload["actions"]
        self.telemetry.sink.emit(event)
        return (
            status,
            text,
            content_type,
            format_traceparent(trace_id, span_id),
        )

    def _count_request(self, endpoint: str, status: int) -> None:
        self.telemetry.counter(
            "repro_service_requests_total",
            "Service requests handled, by endpoint and HTTP status.",
            ("endpoint", "status"),
        ).inc(endpoint=endpoint, status=str(status))

    def _route(self, request: Request):
        """Map ``(method, path)`` to ``(endpoint label, handler)``."""
        method, path = request.method, request.path
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            return self._only(method, "GET", "healthz", self._h_healthz)
        if path == "/metrics":
            return self._only(method, "GET", "metrics", self._h_metrics)
        if self.config.debug and path == "/debug/sleep":
            return self._only(method, "GET", "debug", self._h_debug_sleep)
        if parts[:2] == ["v1", "sessions"]:
            if len(parts) == 2:
                if method == "POST":
                    return "create", self._h_create
                return self._only(method, "GET", "list", self._h_list)
            if len(parts) == 3:
                name = parts[2]
                if method == "GET":
                    return "info", self._named(self._h_info, name)
                if method == "DELETE":
                    return "delete", self._named(self._h_delete, name)
                raise ServiceError(
                    405,
                    "method_not_allowed",
                    f"{method} not allowed on {path}",
                )
            if len(parts) == 4:
                name, leaf = parts[2], parts[3]
                if leaf == "mutations":
                    return self._only(
                        method,
                        "POST",
                        "mutate",
                        self._named(self._h_mutate, name),
                    )
                if leaf == "verdict":
                    return self._only(
                        method,
                        "GET",
                        "verdict",
                        self._named(self._h_verdict, name),
                    )
                if leaf == "snapshot":
                    return self._only(
                        method,
                        "GET",
                        "snapshot",
                        self._named(self._h_snapshot, name),
                    )
        raise ServiceError(404, "not_found", f"no route for {method} {path}")

    @staticmethod
    def _only(method: str, expected: str, endpoint: str, handler):
        if method != expected:
            raise ServiceError(
                405,
                "method_not_allowed",
                f"{method} not allowed on this endpoint (use {expected})",
            )
        return endpoint, handler

    @staticmethod
    def _named(handler, name: str):
        async def bound(request: Request):
            return await handler(request, name)

        return bound

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _h_healthz(self, request: Request) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "sessions": len(self.sessions),
            "max_sessions": self.sessions.max_sessions,
            "draining": self._draining,
        }

    async def _h_metrics(self, request: Request) -> Tuple[int, str]:
        return 200, self.telemetry.render()

    async def _h_debug_sleep(self, request: Request) -> Tuple[int, Dict[str, Any]]:
        seconds = float(request.query.get("seconds", "0"))
        await asyncio.sleep(seconds)
        return 200, {"slept": seconds}

    async def _h_list(self, request: Request) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "sessions": sorted(self.sessions.names()),
            "open": len(self.sessions),
            "max_sessions": self.sessions.max_sessions,
        }

    async def _h_create(self, request: Request) -> Tuple[int, Dict[str, Any]]:
        spec = request.json()
        unknown = sorted(
            set(spec) - {"name", "k", "engine", "seed", "epsilon",
                         "tester_repetitions", "base", "n"}
        )
        if unknown:
            raise ServiceError(
                400,
                "bad_request",
                f"unknown session field(s): {', '.join(unknown)}",
            )
        if "k" not in spec:
            raise ServiceError(400, "bad_request", "missing required field 'k'")
        try:
            k = int(spec["k"])
            seed = int(spec.get("seed", 0))
            epsilon = float(spec.get("epsilon", 0.1))
            reps = spec.get("tester_repetitions", 8)
            reps = None if reps is None else int(reps)
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                400, "bad_request", f"invalid session parameter ({exc})"
            ) from exc
        engine = spec.get("engine", self.config.default_engine)
        try:
            parse_engine_spec(str(engine))
        except ConfigurationError as exc:
            raise ServiceError(400, "bad_request", str(exc)) from exc
        if ("base" in spec) == ("n" in spec):
            raise ServiceError(
                400,
                "bad_request",
                "give exactly one of 'base' (edge-list text) or 'n' "
                "(vertex count of an empty base graph)",
            )
        try:
            if "base" in spec:
                if not isinstance(spec["base"], str):
                    raise ServiceError(
                        400,
                        "bad_request",
                        "'base' must be edge-list text (string)",
                    )
                base = graph_io.loads(spec["base"])
            else:
                base = Graph(int(spec["n"]))
        except (GraphError, TypeError, ValueError) as exc:
            raise ServiceError(
                400, "bad_request", f"invalid base graph ({exc})"
            ) from exc
        session = self.sessions.create(
            base,
            k,
            name=spec.get("name"),
            engine=engine,
            seed=seed,
            epsilon=epsilon,
            tester_repetitions=reps,
        )
        self._count_verdict(session.monitor.accepted)
        payload = session.info_payload()
        payload["protocol"] = PROTOCOL_VERSION
        return 201, payload

    async def _h_info(self, request: Request, name: str) -> Tuple[int, Dict[str, Any]]:
        return 200, self.sessions.get(name).info_payload()

    async def _h_delete(
        self, request: Request, name: str
    ) -> Tuple[int, Dict[str, Any]]:
        session = self.sessions.delete(name)
        return 200, {"deleted": name, "version": session.version}

    async def _h_verdict(
        self, request: Request, name: str
    ) -> Tuple[int, Dict[str, Any]]:
        session = self.sessions.get(name)
        self._count_verdict(session.monitor.accepted)
        return 200, session.verdict_payload()

    async def _h_mutate(
        self, request: Request, name: str
    ) -> Tuple[int, Dict[str, Any]]:
        session = self.sessions.get(name)
        batch = parse_stream_batch(request.text())
        async with session.lock:
            payload = session.apply_batch(batch)
        self.telemetry.counter(
            "repro_service_mutations_total",
            "Mutations applied through the service.",
        ).inc(payload["applied"])
        self._count_verdict(payload["accepted"])
        return 200, payload

    async def _h_snapshot(
        self, request: Request, name: str
    ) -> Tuple[int, Dict[str, Any]]:
        session = self.sessions.get(name)
        async with session.lock:
            payload = session.snapshot_payload()
        return 200, payload

    def _count_verdict(self, accepted: bool) -> None:
        self.telemetry.counter(
            "repro_service_verdicts_total",
            "Verdicts served, by outcome.",
            ("verdict",),
        ).inc(verdict="accept" if accepted else "reject")

"""repro.service — detection-as-a-service over HTTP/JSON.

The library's dynamic-monitoring stack (:class:`~repro.dynamic.DynamicGraph`
plus the incremental :class:`~repro.dynamic.CkMonitor`) becomes a
long-lived daemon: many named *sessions*, each one evolving graph with an
always-current C_k verdict, mutated through the same ``+ u v`` / ``- u v``
edge-stream text the offline tools read and queried per request.  Because
a session's verdict is maintained incrementally, a query is a cache read
— the economics the ``dynamic`` benchmarks measure offline, served as
traffic.

Layers (stdlib asyncio only, mirroring the zero-dependency stance of
:mod:`repro.obs`):

* :mod:`repro.service.protocol` — request/response envelopes, error
  codes, limits and the stream-batch parser shared with the offline io;
* :mod:`repro.service.sessions` — :class:`Session` (monitor + writer
  lock) and the LRU-bounded :class:`SessionManager`;
* :mod:`repro.service.server` — the asyncio HTTP/1.1 daemon
  (:class:`ServiceServer`) with per-request timeouts, bounded bodies,
  Prometheus ``/metrics`` and graceful drain;
* :mod:`repro.service.client` — minimal sync and async clients;
* :mod:`repro.service.harness` — :class:`ServerHarness`, an
  in-process server on a background event-loop thread (tests, bench);
* :mod:`repro.service.loadgen` — the load-generator harness driving N
  concurrent synthetic clients over seeded stream scenarios, persisting
  a run-table-style JSONL results file.

CLI: ``repro serve`` boots the daemon, ``repro loadgen`` drives it (or
an in-process server when no host is given).  See ``docs/service.md``
for the protocol reference and the metrics catalogue.
"""

from .client import AsyncServiceClient, ServiceClient, ServiceClientError
from .harness import ServerHarness
from .loadgen import LoadgenConfig, run_loadgen
from .protocol import ServiceError
from .server import ServiceConfig, ServiceServer
from .sessions import Session, SessionManager

__all__ = [
    "AsyncServiceClient",
    "LoadgenConfig",
    "ServerHarness",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SessionManager",
    "run_loadgen",
]

"""Service sessions: one monitored dynamic graph per client, LRU-bounded.

A :class:`Session` pairs a named :class:`~repro.dynamic.CkMonitor` with
an :class:`asyncio.Lock` that enforces **single-writer ordering**: every
state-changing operation (mutation batches) and every atomic read
(snapshots) runs under the lock, so concurrent clients hammering one
session observe a serializable interleaving — the mutation log is the
serialization order, versions increment strictly, and a snapshot's
``(version, content_hash, graph, log)`` quadruple is taken at one
consistent point.

The :class:`SessionManager` owns the sessions, bounds their count, and
evicts the **least recently used** idle session when a create would
exceed the cap (an evicted name simply becomes ``unknown_session`` on
its next request).  A session whose lock is held is never evicted — the
single writer inside it would otherwise mutate a zombie — so when every
session is busy at the cap, creation fails with 503 instead.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..dynamic.monitor import CkMonitor
from ..dynamic.mutations import Mutation
from ..errors import ConfigurationError, GraphError
from ..graphs import io as graph_io
from ..graphs.graph import Graph
from ..obs import resolve_telemetry
from .protocol import SESSION_NAME_RE, ServiceError

__all__ = ["Session", "SessionManager"]


class Session:
    """One monitored dynamic graph behind the service.

    Construction runs the monitor's initial full detection, so a freshly
    created session already has an exact verdict.  All later access goes
    through the owning :class:`SessionManager` / server, which take
    :attr:`lock` around writes and atomic reads.
    """

    def __init__(
        self,
        name: str,
        base: Graph,
        k: int,
        *,
        engine: str = "reference",
        seed: int = 0,
        epsilon: float = 0.1,
        tester_repetitions: Optional[int] = 8,
        telemetry=None,
        cache=None,
    ) -> None:
        self.name = name
        self.telemetry = resolve_telemetry(telemetry)
        self.monitor = CkMonitor(
            base,
            k,
            engine=engine,
            epsilon=epsilon,
            tester_repetitions=tester_repetitions,
            seed=seed,
            telemetry=telemetry,
            cache=cache,
        )
        self.seed = seed
        self.lock = asyncio.Lock()

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Applied mutations so far (names the current state)."""
        return self.monitor.version

    def verdict_payload(self) -> Dict[str, Any]:
        """The cheap per-query view: verdict, witness, version."""
        witness = self.monitor.witness
        return {
            "name": self.name,
            "k": self.monitor.k,
            "version": self.version,
            "accepted": self.monitor.accepted,
            "witness": list(witness) if witness is not None else None,
        }

    def info_payload(self) -> Dict[str, Any]:
        """Full session description: verdict view plus config and stats."""
        g = self.monitor.graph
        payload = self.verdict_payload()
        payload.update({
            "engine": self.monitor.engine,
            "seed": self.seed,
            "epsilon": self.monitor.epsilon,
            "n": g.n,
            "m": g.m,
            "stats": self.monitor.stats.as_dict(),
        })
        return payload

    def apply_batch(self, batch: List[Tuple[int, Mutation]]) -> Dict[str, Any]:
        """Apply a parsed mutation batch in order; caller holds the lock.

        Applies mutations one at a time through the monitor.  A mutation
        that is invalid against the *current graph state* (duplicate
        insert, deleting an absent edge, out-of-range endpoint) stops
        the batch: the valid prefix stays applied and the failure is
        reported as a 409 :class:`ServiceError` with the offending line
        number and the applied count — so a client always knows exactly
        which prefix of its batch is in the log.

        Runs inside a ``session.apply`` span, so the monitor's own spans
        (``monitor.full_redetect`` and below) chain to it — and, through
        the ambient request context, to the request wide event.
        """
        applied = 0
        actions: Dict[str, int] = {}
        with self.telemetry.span("session.apply", session=self.name, batch=len(batch)):
            for lineno, mutation in batch:
                try:
                    record = self.monitor.apply(mutation)
                except GraphError as exc:
                    raise ServiceError(
                        409,
                        "invalid_mutation",
                        str(exc),
                        line=lineno,
                        applied=applied,
                        version=self.version,
                    ) from exc
                applied += 1
                actions[record.action] = actions.get(record.action, 0) + 1
        payload = self.verdict_payload()
        payload.update({"applied": applied, "actions": actions})
        return payload

    def snapshot_payload(self) -> Dict[str, Any]:
        """Atomic state capture; caller holds the lock.

        The version, content hash, serialised graph and serialised
        mutation log are all taken under the session lock at one point
        of the mutation history, so they are mutually consistent even
        while other clients queue writes (the regression target of the
        snapshot/mutation race fix — see ``DynamicGraph.snapshot``).
        """
        snap = self.monitor.dynamic.snapshot()
        return {
            "name": self.name,
            "version": snap.version,
            "content_hash": snap.content_hash,
            "n": snap.graph.n,
            "m": snap.graph.m,
            "accepted": self.monitor.accepted,
            "graph": graph_io.dumps(snap.graph),
            "log": graph_io.dumps_stream(self.monitor.dynamic.log),
            "stats": self.monitor.stats.as_dict(),
        }


class SessionManager:
    """Named sessions with a hard count bound and LRU eviction.

    ``touch`` order is access order: every successful lookup moves the
    session to most-recently-used, so steady traffic protects a session
    from eviction and abandoned sessions age out first.
    """

    def __init__(self, max_sessions: int, *, telemetry=None) -> None:
        from ..congest.engine.cache import EngineCache
        from ..obs import resolve_telemetry

        if max_sessions < 1:
            raise ConfigurationError(f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self._telemetry = resolve_telemetry(telemetry)
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._auto_names = itertools.count()
        self.evictions = 0
        # One compiled-instance cache shared by every session: sessions
        # created from the same base graph (load-harness fan-out, client
        # retries) reuse one compiled engine for the initial detection.
        self.engine_cache = EngineCache()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def names(self) -> List[str]:
        """Session names, least recently used first."""
        return list(self._sessions)

    def get(self, name: str) -> Session:
        """Look up (and LRU-touch) a session; 404 when unknown."""
        session = self._sessions.get(name)
        if session is None:
            raise ServiceError(
                404,
                "unknown_session",
                f"no session named {name!r} (expired or never created)",
            )
        self._sessions.move_to_end(name)
        return session

    def delete(self, name: str) -> Session:
        """Remove a session; 404 when unknown."""
        session = self._sessions.pop(name, None)
        if session is None:
            raise ServiceError(
                404,
                "unknown_session",
                f"no session named {name!r} (expired or never created)",
            )
        self._gauge_sessions()
        return session

    # ------------------------------------------------------------------
    def create(
        self,
        base: Graph,
        k: int,
        *,
        name: Optional[str] = None,
        engine: str = "reference",
        seed: int = 0,
        epsilon: float = 0.1,
        tester_repetitions: Optional[int] = 8,
    ) -> Session:
        """Create (and register) a session, evicting LRU idle if full."""
        if name is None:
            name = self._next_auto_name()
        elif not SESSION_NAME_RE.match(name):
            raise ServiceError(
                400,
                "bad_request",
                f"invalid session name {name!r} " f"(need {SESSION_NAME_RE.pattern})",
            )
        if name in self._sessions:
            raise ServiceError(
                409, "session_exists", f"session {name!r} already exists"
            )
        self._evict_for_capacity()
        try:
            # The initial full detection happens in the constructor, so
            # the span covers the expensive part of session creation.
            with self._telemetry.span(
                "session.create", session=name, engine=str(engine), k=k
            ):
                session = Session(
                    name,
                    base,
                    k,
                    engine=engine,
                    seed=seed,
                    epsilon=epsilon,
                    tester_repetitions=tester_repetitions,
                    telemetry=self._telemetry,
                    cache=self.engine_cache,
                )
        except (ConfigurationError, GraphError) as exc:
            raise ServiceError(400, "bad_request", str(exc)) from exc
        self._sessions[name] = session
        self._gauge_sessions()
        return session

    def _next_auto_name(self) -> str:
        """A fresh auto-assigned name (skips client-claimed names)."""
        while True:
            name = f"s{next(self._auto_names):06d}"
            if name not in self._sessions:
                return name

    def _evict_for_capacity(self) -> None:
        """Make room for one more session, or 503 when all are busy."""
        while len(self._sessions) >= self.max_sessions:
            victim = next(
                (name for name, session in self._sessions.items()
                 if not session.lock.locked()),
                None,
            )
            if victim is None:
                raise ServiceError(
                    503,
                    "session_limit",
                    f"all {self.max_sessions} sessions are busy; "
                    f"retry or delete one",
                )
            del self._sessions[victim]
            self.evictions += 1
            self._telemetry.counter(
                "repro_service_evictions_total",
                "Sessions evicted by the LRU capacity bound.",
            ).inc()
        self._gauge_sessions()

    def _gauge_sessions(self) -> None:
        """Refresh the open/peak session gauges."""
        tel = self._telemetry
        tel.gauge(
            "repro_service_sessions_open",
            "Sessions currently held by the service.",
        ).set(len(self._sessions))
        tel.gauge(
            "repro_service_sessions_peak",
            "High-water mark of concurrently held sessions.",
        ).set_max(len(self._sessions))

"""Load-generator harness: N concurrent synthetic clients, JSONL results.

Each synthetic client owns one session and replays one seeded stream
scenario from the dynamic registry (:mod:`repro.dynamic.streams`)
against the service: create session (base graph shipped as edge-list
text), mutation batches in the edge-stream wire format, a verdict query
after every batch, one final snapshot, delete.  Per-request latencies
are recorded client-side; the scenario, base graph and all seeds derive
from the campaign-style :func:`~repro.runner.runtable.derive_seed`
chain, so a profile replays identically everywhere.

The run persists a **run-table-style JSONL results file**: one row per
client (requests, errors, latency summary, parity flag) followed by one
``{"summary": ...}`` row with the aggregate throughput and latency
quantiles — the same shape as the dynamic monitor logs that ``repro
dynamic report`` reads.

Parity rides along: after its replay each client rebuilds the identical
offline :class:`~repro.dynamic.CkMonitor` (same base, stream and seed)
and checks that the service's final verdict **and** content hash are
bit-identical — the service-vs-offline equivalence the benchmarks then
assert in-body.

Throughput is measured over the *request-driving phase only* (session
create through delete); offline parity replays are excluded from the
timed window.

With ``trace=True`` each client draws deterministic ``traceparent`` ids
(seed chain ``derive_seed(seed, "trace", index)``) and records the
server-echoed trace id per request; in harness mode the run then *joins*
client rows to server wide events — every recorded trace id must match
exactly one ``request`` event — and folds the result into the row's
``trace_join_ok`` flag and the summary's ``parity_ok``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field, asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..dynamic import CkMonitor, build_stream
from ..graphs import io as graph_io
from ..obs import ListSink, Telemetry
from ..obs.tracing import TraceIdSource
from ..runner import registry
from ..runner.runtable import derive_seed
from .client import AsyncServiceClient
from .harness import ServerHarness

__all__ = ["LoadgenConfig", "SMOKE_PROFILE", "run_loadgen"]


@dataclass
class LoadgenConfig:
    """One load-generation profile (declarative, fully seeded)."""

    clients: int = 8  #: concurrent synthetic clients
    family: str = "gnp"  #: base-graph family (dynamic registry)
    params: Dict[str, Any] = field(
        default_factory=lambda: {"n": 40, "p": 0.1}
    )  #: family parameters
    stream: str = "uniform-churn:steps=30,p=0.5"  #: scenario spec string
    k: int = 5  #: cycle length monitored
    engine: str = "reference"  #: detection backend for every session
    seed: int = 0  #: master seed (per-client seeds derive from it)
    batch: int = 1  #: mutations per request
    verify_parity: bool = True  #: offline CkMonitor parity check per client
    trace: bool = False  #: traceparent propagation + wide-event join check

    def client_seed(self, index: int) -> int:
        """The derived seed for client ``index`` (graph + stream + session)."""
        return derive_seed(self.seed, "loadgen", index)


#: The CI / benchmark smoke profile (also the ``repro loadgen`` default).
SMOKE_PROFILE = LoadgenConfig()


def _quantile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank quantile of a pre-sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def _latency_summary(latencies: List[float]) -> Dict[str, float]:
    """``{count, p50_ms, p99_ms, max_ms, mean_ms}`` of one latency sample."""
    ordered = sorted(latencies)
    total = sum(ordered)
    return {
        "count": len(ordered),
        "mean_ms": round(total / len(ordered) * 1e3, 4) if ordered else 0.0,
        "p50_ms": round(_quantile(ordered, 0.50) * 1e3, 4),
        "p99_ms": round(_quantile(ordered, 0.99) * 1e3, 4),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1e3, 4),
    }


async def _drive_client(
    config: LoadgenConfig, host: str, port: int, index: int
) -> Dict[str, Any]:
    """One synthetic client's whole lifetime; returns its result row."""
    seed = config.client_seed(index)
    base = registry.build_graph(config.family, seed=seed, **config.params)
    stream = build_stream(config.stream, base, seed=seed, k=config.k)
    name = f"lg-{index:04d}"
    latencies: List[float] = []
    trace_ids: List[str] = []
    errors = 0
    ids: Optional[TraceIdSource] = None
    if config.trace:
        ids = TraceIdSource(derive_seed(config.seed, "trace", index))

    async def timed(coro):
        nonlocal errors
        t0 = time.perf_counter()
        try:
            return await coro
        except Exception:  # noqa: BLE001 - loadgen records, never raises
            errors += 1
            raise
        finally:
            latencies.append(time.perf_counter() - t0)
            if ids is not None and client.last_trace_id:
                trace_ids.append(client.last_trace_id)

    client = AsyncServiceClient(host, port, ids=ids)
    async with client:
        created = await timed(client.create_session(
            name=name,
            k=config.k,
            engine=config.engine,
            seed=seed,
            base=graph_io.dumps(stream.base),
        ))
        mutations = list(stream.mutations)
        for start in range(0, len(mutations), max(1, config.batch)):
            chunk = mutations[start:start + max(1, config.batch)]
            text = "".join(m.to_line() + "\n" for m in chunk)
            await timed(client.mutate(name, text))
            await timed(client.verdict(name))
        snapshot = await timed(client.snapshot(name))
        await timed(client.delete(name))

    row: Dict[str, Any] = {
        "row": "client",
        "client": index,
        "session": name,
        "seed": seed,
        "scenario": stream.scenario,
        "steps": len(mutations),
        "requests": len(latencies),
        "errors": errors,
        "initial_accepted": created["accepted"],
        "final_accepted": snapshot["accepted"],
        "final_version": snapshot["version"],
        "final_hash": snapshot["content_hash"],
        "latency": _latency_summary(latencies),
    }
    if config.trace:
        row["trace_ids"] = trace_ids
    row["_latencies"] = latencies
    return row


def _check_parity(config: LoadgenConfig, row: Dict[str, Any]) -> bool:
    """Offline CkMonitor replay of one client's scenario vs its snapshot.

    Rebuilds the identical base graph and stream from the client's
    derived seed (both are deterministic) and replays them through a
    local monitor: the service's final verdict, version and content
    hash must be bit-identical.  Runs *after* the timed window, so
    parity checking never pollutes the throughput measurement.
    """
    seed = row["seed"]
    base = registry.build_graph(config.family, seed=seed, **config.params)
    stream = build_stream(config.stream, base, seed=seed, k=config.k)
    monitor = CkMonitor(stream.base, config.k, engine=config.engine, seed=seed)
    monitor.run_stream(stream.mutations)
    return (
        monitor.accepted == row["final_accepted"]
        and monitor.dynamic.content_hash() == row["final_hash"]
        and monitor.version == row["final_version"]
    )


async def _drive_all(config: LoadgenConfig, host: str, port: int) -> Dict[str, Any]:
    started = time.perf_counter()
    rows = await asyncio.gather(*[
        _drive_client(config, host, port, index)
        for index in range(config.clients)
    ])
    wall = time.perf_counter() - started
    return {"rows": list(rows), "wall": wall}


def run_loadgen(
    config: LoadgenConfig = SMOKE_PROFILE,
    *,
    host: Optional[str] = None,
    port: Optional[int] = None,
    out: Optional[Union[str, Path]] = None,
    metrics_out: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Run one load-generation campaign; returns the summary dict.

    With ``host``/``port`` the load targets a running server; without
    them an in-process :class:`~repro.service.harness.ServerHarness` is
    booted for the duration (sized to the profile).  ``out`` persists
    the JSONL results file (client rows then the summary row);
    ``metrics_out`` scrapes ``/metrics`` after the run and writes the
    Prometheus textfile (validated later by ``repro obs report``).

    With ``config.trace`` in harness mode the harness telemetry gets an
    in-memory event sink and the run ends with the client-row ↔ server
    wide-event join check (see the module docstring); against a remote
    server the join is skipped — run ``repro obs trace --check`` on the
    daemon's own event log instead.
    """
    harness: Optional[ServerHarness] = None
    trace_sink: Optional[ListSink] = None
    if host is None:
        telemetry = None
        if config.trace:
            trace_sink = ListSink()
            telemetry = Telemetry(sink=trace_sink)
        harness = ServerHarness(
            telemetry=telemetry, max_sessions=max(config.clients, 2)
        ).start()
        host, port = harness.host, harness.port
    elif port is None:
        raise ValueError("host given without port")
    try:
        outcome = asyncio.run(_drive_all(config, host, port))
        metrics_text: Optional[str] = None
        if metrics_out is not None:
            from .client import ServiceClient

            metrics_text = ServiceClient(host, port).metrics()
    finally:
        if harness is not None:
            harness.stop()

    rows: List[Dict[str, Any]] = outcome["rows"]
    if config.verify_parity:
        for row in rows:
            row["parity_ok"] = _check_parity(config, row)
    if trace_sink is not None:
        # Join check: every trace id a client recorded must match
        # exactly one server-side request wide event.
        wide_counts: Dict[str, int] = {}
        for event in trace_sink.events:
            if event.get("type") == "request":
                tid = event.get("trace_id", "")
                wide_counts[tid] = wide_counts.get(tid, 0) + 1
        for row in rows:
            recorded = row.get("trace_ids", [])
            row["trace_join_ok"] = (
                len(recorded) == row["requests"]
                and all(wide_counts.get(tid) == 1 for tid in recorded)
            )
    all_latencies = sorted(lat for row in rows for lat in row.pop("_latencies"))
    requests = sum(row["requests"] for row in rows)
    errors = sum(row["errors"] for row in rows)
    wall = outcome["wall"]
    summary: Dict[str, Any] = {
        "profile": {k: v for k, v in asdict(config).items()},
        "clients": config.clients,
        "requests": requests,
        "errors": errors,
        "wall_seconds": round(wall, 6),
        "rps": round(requests / wall, 2) if wall > 0 else 0.0,
        "p50_ms": round(_quantile(all_latencies, 0.50) * 1e3, 4),
        "p99_ms": round(_quantile(all_latencies, 0.99) * 1e3, 4),
        "max_ms": round((all_latencies[-1] if all_latencies else 0.0) * 1e3, 4),
        "parity_ok": all(
            row.get("parity_ok", True) and row.get("trace_join_ok", True)
            for row in rows
        ),
    }
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.write(json.dumps({"summary": summary}, sort_keys=True) + "\n")
    if metrics_out is not None and metrics_text is not None:
        path = Path(metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(metrics_text, encoding="utf-8")
    return summary

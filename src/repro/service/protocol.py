"""Wire protocol of the detection service: envelopes, limits, errors.

The service speaks HTTP/1.1 with JSON response bodies.  Success payloads
are plain objects; every error is the uniform envelope::

    {"error": {"code": "<machine-readable>", "message": "<human>",
               "status": <http status>, ...extras}}

so clients can branch on ``code`` without parsing prose.  Extras carry
structured context — ``line`` for stream-parse failures, ``applied`` for
partially applied mutation batches.

Mutations travel in the request body as the **edge-stream text format**
of :mod:`repro.graphs.io` (``+ u v`` / ``- u v`` / ``+v``, one per line,
``#`` comments and blank lines ignored) — the same bytes ``repro dynamic
replay`` reads from disk, so a captured request body is a replayable
scenario file.  :func:`parse_stream_batch` is the boundary parser: it
resolves each line through :meth:`Mutation.from_line
<repro.dynamic.mutations.Mutation.from_line>` (the single grammar
implementation) and converts the first failure into a
:class:`ServiceError` carrying the 1-based line number.

Routes (``{name}`` is a session name, ``[A-Za-z0-9._-]{1,64}``):

==========  =================================  ===========================
method      path                               meaning
==========  =================================  ===========================
``POST``    ``/v1/sessions``                   create a session
``GET``     ``/v1/sessions``                   list sessions
``GET``     ``/v1/sessions/{name}``            session info + stats
``DELETE``  ``/v1/sessions/{name}``            delete a session
``POST``    ``/v1/sessions/{name}/mutations``  apply an edge-stream batch
``GET``     ``/v1/sessions/{name}/verdict``    current verdict (cache read)
``GET``     ``/v1/sessions/{name}/snapshot``   atomic version+hash+graph+log
``GET``     ``/metrics``                       Prometheus text exposition
``GET``     ``/healthz``                       liveness + session count
==========  =================================  ===========================
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple

from ..dynamic.mutations import Mutation
from ..errors import GraphError, ReproError

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_REQUEST_TIMEOUT",
    "PROTOCOL_VERSION",
    "SESSION_NAME_RE",
    "ServiceError",
    "error_body",
    "json_dumps",
    "parse_stream_batch",
]

#: Version tag reported by ``/healthz`` and session-create responses.
PROTOCOL_VERSION = 1

#: Largest accepted request body (bytes); larger bodies get 413.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Concurrent session cap; creating past it LRU-evicts (see sessions.py).
DEFAULT_MAX_SESSIONS = 64

#: Per-request handler budget in seconds; exceeding it gets 504.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Legal session names (path-safe, bounded).
SESSION_NAME_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class ServiceError(ReproError):
    """A protocol-level failure with its HTTP mapping attached.

    Handlers raise this (directly or by translating library errors) and
    the server turns it into the uniform error envelope.  ``extras``
    become additional envelope fields (``line``, ``applied``, ...).
    """

    def __init__(self, status: int, code: str, message: str, **extras: Any) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.extras = extras

    def envelope(self) -> Dict[str, Any]:
        """The ``{"error": {...}}`` response body for this failure."""
        body: Dict[str, Any] = {
            "code": self.code,
            "message": str(self),
            "status": self.status,
        }
        body.update(self.extras)
        return {"error": body}


def error_body(status: int, code: str, message: str, **extras: Any) -> Dict[str, Any]:
    """The error envelope without raising (transport-level failures)."""
    return ServiceError(status, code, message, **extras).envelope()


def json_dumps(payload: Dict[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def parse_stream_batch(text: str) -> List[Tuple[int, Mutation]]:
    """Parse a mutation-batch request body into ``(lineno, Mutation)``.

    Mirrors :func:`repro.graphs.io.loads_stream` exactly (same per-line
    grammar via :meth:`Mutation.from_line`, same comment/blank-line
    conventions) but keeps the 1-based line number with each mutation so
    batch application can report *which* line failed.  The first
    malformed line aborts the whole parse with a 400
    :class:`ServiceError` (code ``malformed_stream``, extra ``line``) —
    nothing from a malformed batch is ever applied.
    """
    out: List[Tuple[int, Mutation]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            out.append((lineno, Mutation.from_line(line, lineno=lineno)))
        except GraphError as exc:
            raise ServiceError(400, "malformed_stream", str(exc), line=lineno) from exc
    return out

"""Minimal service clients: sync (tests, CLI) and async (loadgen).

Both speak exactly the protocol of :mod:`repro.service.protocol` and
return ``(status, payload)`` pairs so callers can assert on error
envelopes without exception gymnastics; the convenience helpers raise
:class:`ServiceClientError` on any non-2xx status for callers that only
want the happy path.

:class:`ServiceClient` (sync) opens one :mod:`http.client` connection
per request — simple and reconnection-proof, throughput is not its job.
:class:`AsyncServiceClient` holds one keep-alive connection and is what
the load generator runs thousands of requests through.

Both clients optionally *propagate trace context*: constructed with a
:class:`~repro.obs.tracing.TraceIdSource` they send a fresh W3C
``traceparent`` header on every attempt (a retry gets fresh ids, so a
double-sent request never shares a span id) and record the server's
echoed header as :attr:`last_traceparent` / :attr:`last_trace_id` — the
authoritative ids for joining client rows to server wide events.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..obs.tracing import TraceIdSource, format_traceparent, parse_traceparent

__all__ = ["AsyncServiceClient", "ServiceClient", "ServiceClientError"]


class ServiceClientError(ReproError):
    """A non-2xx response where the caller wanted only success.

    Carries the HTTP ``status`` and the decoded error ``payload`` (the
    protocol envelope, so ``payload["error"]["code"]`` is the machine-
    readable reason).
    """

    def __init__(self, status: int, payload: Any) -> None:
        detail = ""
        if isinstance(payload, dict) and "error" in payload:
            err = payload["error"]
            detail = f": {err.get('code')}: {err.get('message')}"
        super().__init__(f"service returned HTTP {status}{detail}")
        self.status = status
        self.payload = payload


def _decode(content_type: str, body: bytes) -> Any:
    """JSON-decode JSON responses, pass text through, else raw bytes."""
    if content_type.startswith("application/json"):
        return json.loads(body.decode("utf-8"))
    if content_type.startswith("text/"):
        return body.decode("utf-8")
    return body


class ServiceClient:
    """Blocking client; one connection per request.

    Passing ``ids`` (a :class:`~repro.obs.tracing.TraceIdSource`) makes
    every request carry a fresh ``traceparent`` header; the server's
    echoed header lands in :attr:`last_traceparent` /
    :attr:`last_trace_id` after each round trip.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        ids: Optional[TraceIdSource] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.ids = ids
        self.last_traceparent: Optional[str] = None
        self.last_trace_id: Optional[str] = None

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        """One raw round trip; returns ``(status, decoded payload)``.

        ``headers`` are extra request headers; an explicit
        ``Traceparent`` there wins over the auto-generated one (which
        is how the fuzz tests push malformed values through the real
        HTTP boundary).
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            send_headers = {"Connection": "close"}
            if body is not None:
                send_headers["Content-Type"] = content_type
            if self.ids is not None:
                send_headers["Traceparent"] = format_traceparent(
                    self.ids.trace_id(), self.ids.span_id()
                )
            if headers:
                send_headers.update(headers)
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            payload = _decode(response.getheader("Content-Type", ""), response.read())
            self.last_traceparent = response.getheader("Traceparent")
            echoed = parse_traceparent(self.last_traceparent)
            self.last_trace_id = echoed.trace_id if echoed else None
            return response.status, payload
        finally:
            conn.close()

    def _ok(self, status: int, payload: Any) -> Any:
        if not 200 <= status < 300:
            raise ServiceClientError(status, payload)
        return payload

    # ------------------------------------------------------------------
    # Convenience helpers (raise on error)
    # ------------------------------------------------------------------
    def create_session(self, **spec: Any) -> Dict[str, Any]:
        """``POST /v1/sessions`` (kwargs become the JSON spec)."""
        return self._ok(*self.request(
            "POST",
            "/v1/sessions",
            body=json.dumps(spec).encode("utf-8"),
        ))

    def list_sessions(self) -> Dict[str, Any]:
        """``GET /v1/sessions``."""
        return self._ok(*self.request("GET", "/v1/sessions"))

    def info(self, name: str) -> Dict[str, Any]:
        """``GET /v1/sessions/{name}``."""
        return self._ok(*self.request("GET", f"/v1/sessions/{name}"))

    def delete(self, name: str) -> Dict[str, Any]:
        """``DELETE /v1/sessions/{name}``."""
        return self._ok(*self.request("DELETE", f"/v1/sessions/{name}"))

    def mutate(self, name: str, stream_text: str) -> Dict[str, Any]:
        """``POST /v1/sessions/{name}/mutations`` (edge-stream body)."""
        return self._ok(*self.request(
            "POST",
            f"/v1/sessions/{name}/mutations",
            body=stream_text.encode("utf-8"),
            content_type="text/plain",
        ))

    def verdict(self, name: str) -> Dict[str, Any]:
        """``GET /v1/sessions/{name}/verdict``."""
        return self._ok(*self.request("GET", f"/v1/sessions/{name}/verdict"))

    def snapshot(self, name: str) -> Dict[str, Any]:
        """``GET /v1/sessions/{name}/snapshot``."""
        return self._ok(*self.request("GET", f"/v1/sessions/{name}/snapshot"))

    def metrics(self) -> str:
        """``GET /metrics`` (Prometheus text)."""
        return self._ok(*self.request("GET", "/metrics"))

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._ok(*self.request("GET", "/healthz"))


class AsyncServiceClient:
    """Keep-alive asyncio client (the load generator's workhorse).

    Like :class:`ServiceClient`, passing ``ids`` turns on traceparent
    propagation; ids are drawn per *attempt* inside the round trip, so
    the transparent reconnect-and-retry path never reuses a span id.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        ids: Optional[TraceIdSource] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.ids = ids
        self.last_traceparent: Optional[str] = None
        self.last_trace_id: Optional[str] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        """Open (or reopen) the keep-alive connection."""
        await self.close()
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        """Close the connection if open."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> Tuple[int, Any]:
        """One round trip on the keep-alive connection.

        Reconnects transparently when the server closed the previous
        keep-alive connection (e.g. after a 413 or a drain).
        """
        if self._writer is None:
            await self.connect()
        try:
            return await asyncio.wait_for(
                self._round_trip(method, path, body, content_type),
                timeout=self.timeout,
            )
        except (ConnectionError, EOFError, asyncio.IncompleteReadError):
            await self.connect()
            return await asyncio.wait_for(
                self._round_trip(method, path, body, content_type),
                timeout=self.timeout,
            )

    async def _round_trip(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: str,
    ) -> Tuple[int, Any]:
        assert self._reader is not None and self._writer is not None
        payload = body or b""
        trace_line = ""
        if self.ids is not None:
            traceparent = format_traceparent(self.ids.trace_id(), self.ids.span_id())
            trace_line = f"Traceparent: {traceparent}\r\n"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{trace_line}"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise EOFError("server closed the connection")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self._reader.readexactly(length) if length else b""
        self.last_traceparent = headers.get("traceparent")
        echoed = parse_traceparent(self.last_traceparent)
        self.last_trace_id = echoed.trace_id if echoed else None
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, _decode(headers.get("content-type", ""), data)

    # ------------------------------------------------------------------
    def _ok(self, status: int, payload: Any) -> Any:
        if not 200 <= status < 300:
            raise ServiceClientError(status, payload)
        return payload

    async def create_session(self, **spec: Any) -> Dict[str, Any]:
        """``POST /v1/sessions`` (kwargs become the JSON spec)."""
        return self._ok(*await self.request(
            "POST",
            "/v1/sessions",
            body=json.dumps(spec).encode("utf-8"),
        ))

    async def mutate(self, name: str, stream_text: str) -> Dict[str, Any]:
        """``POST /v1/sessions/{name}/mutations`` (edge-stream body)."""
        return self._ok(*await self.request(
            "POST",
            f"/v1/sessions/{name}/mutations",
            body=stream_text.encode("utf-8"),
            content_type="text/plain",
        ))

    async def verdict(self, name: str) -> Dict[str, Any]:
        """``GET /v1/sessions/{name}/verdict``."""
        return self._ok(*await self.request("GET", f"/v1/sessions/{name}/verdict"))

    async def snapshot(self, name: str) -> Dict[str, Any]:
        """``GET /v1/sessions/{name}/snapshot``."""
        return self._ok(*await self.request("GET", f"/v1/sessions/{name}/snapshot"))

    async def delete(self, name: str) -> Dict[str, Any]:
        """``DELETE /v1/sessions/{name}``."""
        return self._ok(*await self.request("DELETE", f"/v1/sessions/{name}"))

    async def metrics(self) -> str:
        """``GET /metrics`` (Prometheus text)."""
        return self._ok(*await self.request("GET", "/metrics"))

"""In-process server harness: a ServiceServer on a background loop thread.

Tests, benchmarks and the in-process load-generator mode all need a real
server on a real (ephemeral) TCP port without spawning a subprocess.
:class:`ServerHarness` runs a private :class:`asyncio` event loop on a
daemon thread, boots a :class:`~repro.service.server.ServiceServer`
there, and exposes the bound port plus clients.  Use as a context
manager::

    with ServerHarness(max_sessions=8) as harness:
        client = harness.client()
        client.create_session(name="demo", k=5, n=16)
        ...

Shutdown goes through the server's graceful drain, so a harness exit
asserts the drain path on every test run.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional

from ..errors import ReproError
from .client import ServiceClient
from .server import ServiceConfig, ServiceServer

__all__ = ["ServerHarness"]


class ServerHarness:
    """A live service on an ephemeral port, owned by a daemon thread.

    Keyword arguments become :class:`ServiceConfig` fields; ``telemetry``
    is forwarded to the server (a private in-memory bundle by default).
    """

    def __init__(self, *, telemetry=None, **config_kwargs: Any) -> None:
        self.config = ServiceConfig(**config_kwargs)
        self.server = ServiceServer(self.config, telemetry=telemetry)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self.server.port is None:
            raise ReproError("harness not started")
        return self.server.port

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self.config.host

    def client(self, *, timeout: float = 30.0) -> ServiceClient:
        """A sync client bound to this server."""
        return ServiceClient(self.host, self.port, timeout=timeout)

    # ------------------------------------------------------------------
    def start(self) -> "ServerHarness":
        """Boot the loop thread and wait until the server is listening."""
        if self._thread is not None:
            raise ReproError("harness already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise ReproError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        if self.server.port is None:
            raise ReproError("service failed to start (timeout)")
        return self

    def stop(self, drain: bool = True) -> None:
        """Drain and stop the server, then join the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(drain=drain), loop)
        try:
            future.result(timeout=self.config.drain_timeout + 5.0)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            self._loop = self._thread = None

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surface to starter
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # Drain any tasks the stop() coroutine left behind, then close.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

"""Differential fuzzing harness for the detection algorithms.

The test-suite uses hand-rolled differential loops; this module packages
the same machinery as a public API so downstream changes (new pruners,
protocol tweaks, alternative schedulers) can be fuzzed with one call:

    from repro.testing import differential_campaign
    report = differential_campaign(trials=200, seed=0)
    assert report.ok, report.failures

Every trial draws a random graph, edge and k, runs Algorithm 1 (and
optionally the naive baseline and the sequential comparators) against the
exact oracle, and verifies any produced evidence edge-by-edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .baselines.naive import naive_detect_cycle_through_edge
from .congest.ids import IdentityIds, RandomPermutationIds, ReverseIds
from .congest.network import Network
from .core.algorithm1 import detect_cycle_through_edge
from .core.verify import verify_cycle_evidence
from .graphs.cycles import has_cycle_through_edge
from .graphs.generators import erdos_renyi_gnp
from .graphs.graph import Graph
from .sequential.kcycle import monien_has_cycle_through_edge

__all__ = ["TrialFailure", "CampaignReport", "check_one", "differential_campaign"]


@dataclass(frozen=True)
class TrialFailure:
    """One disagreement, with everything needed to replay it."""

    kind: str
    k: int
    edge: tuple
    edges: tuple
    n: int
    detail: str

    def replay_graph(self) -> Graph:
        return Graph(self.n, list(self.edges))


@dataclass
class CampaignReport:
    trials: int = 0
    checks: int = 0
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return f"CampaignReport({status}, trials={self.trials}, checks={self.checks})"


def check_one(
    g: Graph,
    edge: tuple,
    k: int,
    *,
    network: Optional[Network] = None,
    include_naive: bool = False,
    include_monien: bool = False,
) -> List[TrialFailure]:
    """Run every checker on one (graph, edge, k) instance."""
    failures: List[TrialFailure] = []
    edges = tuple(g.edges())

    def fail(kind: str, detail: str) -> None:
        failures.append(
            TrialFailure(kind=kind, k=k, edge=edge, edges=edges, n=g.n, detail=detail)
        )

    expected = has_cycle_through_edge(g, edge, k)
    det = detect_cycle_through_edge(g, edge, k, network=network)
    if det.detected != expected:
        fail("algorithm1-verdict", f"expected {expected}, got {det.detected}")
    if det.detected:
        ids = det.any_cycle_ids()
        if not verify_cycle_evidence(
            g, ids, k, network=network, through_edge=edge
        ):
            fail("algorithm1-evidence", f"invalid evidence {ids}")
    if include_naive:
        nav = naive_detect_cycle_through_edge(g, edge, k, network=network)
        if nav.detected != expected:
            fail("naive-verdict", f"expected {expected}, got {nav.detected}")
    if include_monien:
        mon = monien_has_cycle_through_edge(g, edge, k)
        if mon != expected:
            fail("monien-verdict", f"expected {expected}, got {mon}")
    return failures


def differential_campaign(
    *,
    trials: int = 100,
    seed=None,
    n_range: tuple = (5, 12),
    k_range: tuple = (3, 8),
    edges_per_graph: int = 4,
    include_naive: bool = False,
    include_monien: bool = False,
    id_assigners: Optional[Sequence] = None,
) -> CampaignReport:
    """Random differential campaign across graphs, edges, k and IDs."""
    rng = np.random.default_rng(seed)
    assigners = (
        list(id_assigners)
        if id_assigners is not None
        else [IdentityIds(), ReverseIds(), RandomPermutationIds(seed=0)]
    )
    report = CampaignReport()
    for t in range(trials):
        n = int(rng.integers(n_range[0], n_range[1] + 1))
        p = float(rng.uniform(0.15, 0.55))
        g = erdos_renyi_gnp(n, p, seed=int(rng.integers(2**31)))
        if g.m == 0:
            continue
        report.trials += 1
        assigner = assigners[t % len(assigners)]
        net = Network(g, assigner)
        edges = list(g.edges())
        picks = min(edges_per_graph, len(edges))
        chosen = rng.choice(len(edges), size=picks, replace=False)
        k = int(rng.integers(k_range[0], k_range[1] + 1))
        for idx in chosen:
            report.checks += 1
            report.failures.extend(
                check_one(
                    g,
                    edges[int(idx)],
                    k,
                    network=net,
                    include_naive=include_naive,
                    include_monien=include_monien,
                )
            )
    return report

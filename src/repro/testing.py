"""Testing harnesses: differential fuzzing and engine equivalence.

The test-suite uses hand-rolled differential loops; this module packages
the same machinery as a public API so downstream changes (new pruners,
protocol tweaks, alternative schedulers) can be fuzzed with one call:

    from repro.testing import differential_campaign
    report = differential_campaign(trials=200, seed=0)
    assert report.ok, report.failures

Every trial draws a random graph, edge and k, runs Algorithm 1 (and
optionally the naive baseline and the sequential comparators) against the
exact oracle, and verifies any produced evidence edge-by-edge.

The second harness checks the engine contract
(:mod:`repro.congest.engine`): every backend must produce *identical*
verdicts, evidence and round counts for identical ``(network, k, seed)``
inputs.  :func:`engine_equivalence_report` sweeps a seeded grid of
registry instances::

    from repro.testing import engine_equivalence_report
    report = engine_equivalence_report(seeds=(0, 1, 2))
    assert report.ok, report.mismatches
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .baselines.naive import naive_detect_cycle_through_edge
from .congest.engine import create_engine
from .congest.ids import IdentityIds, RandomPermutationIds, ReverseIds
from .congest.network import Network
from .core.algorithm1 import detect_cycle_through_edge
from .core.verify import verify_cycle_evidence
from .graphs.cycles import has_cycle_through_edge
from .graphs.generators import erdos_renyi_gnp
from .graphs.graph import Graph
from .sequential.kcycle import monien_has_cycle_through_edge

__all__ = [
    "TrialFailure",
    "CampaignReport",
    "check_one",
    "differential_campaign",
    "EngineMismatch",
    "EquivalenceReport",
    "DEFAULT_EQUIVALENCE_INSTANCES",
    "compare_engines_once",
    "engine_equivalence_report",
    "synthetic_bench_artifact",
]


@dataclass(frozen=True)
class TrialFailure:
    """One disagreement, with everything needed to replay it."""

    kind: str
    k: int
    edge: tuple
    edges: tuple
    n: int
    detail: str

    def replay_graph(self) -> Graph:
        """Rebuild the exact graph of this failure for replay."""
        return Graph(self.n, list(self.edges))


@dataclass
class CampaignReport:
    """Tally of a differential campaign: trials, checks, failures."""
    trials: int = 0
    checks: int = 0
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no checker disagreed."""
        return not self.failures

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return f"CampaignReport({status}, trials={self.trials}, checks={self.checks})"


def check_one(
    g: Graph,
    edge: tuple,
    k: int,
    *,
    network: Optional[Network] = None,
    include_naive: bool = False,
    include_monien: bool = False,
) -> List[TrialFailure]:
    """Run every checker on one (graph, edge, k) instance."""
    failures: List[TrialFailure] = []
    edges = tuple(g.edges())

    def fail(kind: str, detail: str) -> None:
        failures.append(
            TrialFailure(kind=kind, k=k, edge=edge, edges=edges, n=g.n, detail=detail)
        )

    expected = has_cycle_through_edge(g, edge, k)
    det = detect_cycle_through_edge(g, edge, k, network=network)
    if det.detected != expected:
        fail("algorithm1-verdict", f"expected {expected}, got {det.detected}")
    if det.detected:
        ids = det.any_cycle_ids()
        if not verify_cycle_evidence(
            g, ids, k, network=network, through_edge=edge
        ):
            fail("algorithm1-evidence", f"invalid evidence {ids}")
    if include_naive:
        nav = naive_detect_cycle_through_edge(g, edge, k, network=network)
        if nav.detected != expected:
            fail("naive-verdict", f"expected {expected}, got {nav.detected}")
    if include_monien:
        mon = monien_has_cycle_through_edge(g, edge, k)
        if mon != expected:
            fail("monien-verdict", f"expected {expected}, got {mon}")
    return failures


def differential_campaign(
    *,
    trials: int = 100,
    seed=None,
    n_range: tuple = (5, 12),
    k_range: tuple = (3, 8),
    edges_per_graph: int = 4,
    include_naive: bool = False,
    include_monien: bool = False,
    id_assigners: Optional[Sequence] = None,
) -> CampaignReport:
    """Random differential campaign across graphs, edges, k and IDs."""
    rng = np.random.default_rng(seed)
    assigners = (
        list(id_assigners)
        if id_assigners is not None
        else [IdentityIds(), ReverseIds(), RandomPermutationIds(seed=0)]
    )
    report = CampaignReport()
    for t in range(trials):
        n = int(rng.integers(n_range[0], n_range[1] + 1))
        p = float(rng.uniform(0.15, 0.55))
        g = erdos_renyi_gnp(n, p, seed=int(rng.integers(2**31)))
        if g.m == 0:
            continue
        report.trials += 1
        assigner = assigners[t % len(assigners)]
        net = Network(g, assigner)
        edges = list(g.edges())
        picks = min(edges_per_graph, len(edges))
        chosen = rng.choice(len(edges), size=picks, replace=False)
        k = int(rng.integers(k_range[0], k_range[1] + 1))
        for idx in chosen:
            report.checks += 1
            report.failures.extend(
                check_one(
                    g,
                    edges[int(idx)],
                    k,
                    network=net,
                    include_naive=include_naive,
                    include_monien=include_monien,
                )
            )
    return report


# ---------------------------------------------------------------------------
# Engine equivalence harness
# ---------------------------------------------------------------------------
#: Registry instances every engine must agree on: the paper's stress
#: families plus a certified ε-far instance.  ``(family, params)`` pairs
#: are built through :mod:`repro.runner.registry`.
DEFAULT_EQUIVALENCE_INSTANCES: Tuple[Tuple[str, Dict], ...] = (
    ("theta", {"paths": 4, "path_length": 3}),
    ("flower", {"paths": 4, "k": 5}),
    ("figure1", {}),
    ("eps-far", {"n": 40, "k": 5, "eps": 0.1}),
)


@dataclass(frozen=True)
class EngineMismatch:
    """One disagreement between two engines, with its coordinates."""

    instance: str
    what: str  # "tester" or "detect"
    k: int
    seed: int
    field: str
    detail: str
    #: The (baseline, candidate) engine specs that disagreed.  Defaults
    #: to empty for backwards compatibility with two-engine callers.
    pair: Tuple[str, str] = ("", "")


@dataclass
class EquivalenceReport:
    """Outcome of an engine-equivalence sweep."""

    engines: Tuple[str, ...] = ("reference", "fast")
    comparisons: int = 0
    mismatches: List[EngineMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every comparison matched."""
        return not self.mismatches

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"EquivalenceReport({' vs '.join(self.engines)}: "
            f"{status}, comparisons={self.comparisons})"
        )


def _reject_set(run) -> frozenset:
    return frozenset(v for v, o in run.outputs.items() if o.rejects)


def compare_engines_once(
    graph: Graph,
    k: int,
    seed: int,
    *,
    engines: Tuple[str, ...] = ("reference", "fast"),
    network: Optional[Network] = None,
    instance: str = "?",
    what: str = "tester",
    edge: Optional[tuple] = None,
) -> List[EngineMismatch]:
    """Run every engine on one input and list every observable difference.

    The first engine is the baseline; each of the others is compared
    against it (engines may be spec strings such as ``"sharded:4"``).
    Compared per run: the rejecting-vertex set, each rejector's cycle
    evidence, the round count, and the per-round audit aggregates
    (message count, total/max bits, max sequences per message).
    """
    if len(engines) < 2:
        raise ValueError("compare_engines_once needs at least two engines")
    net = network if network is not None else Network(graph)
    runs = []
    for name in engines:
        eng = create_engine(name, net)
        if what == "tester":
            runs.append(eng.run_tester_repetition(k, seed))
        else:
            edge_ids = edge if edge is not None else net.edge_ids(
                *next(iter(graph.edges()))
            )
            runs.append(eng.run_detect(k, edge_ids))
    a = runs[0]
    out: List[EngineMismatch] = []
    for other, b in zip(engines[1:], runs[1:]):
        pair = (engines[0], other)

        def miss(field_name: str, detail: str) -> None:
            out.append(
                EngineMismatch(
                    instance=instance, what=what, k=k, seed=seed,
                    field=field_name, detail=detail, pair=pair,
                )
            )

        ra, rb = _reject_set(a), _reject_set(b)
        if ra != rb:
            miss("rejecting_vertices", f"{sorted(ra)} != {sorted(rb)}")
        for v in ra & rb:
            if a.outputs[v].cycle != b.outputs[v].cycle:
                miss("cycle", f"vertex {v}: "
                     f"{a.outputs[v].cycle} != {b.outputs[v].cycle}")
        if a.trace.num_rounds != b.trace.num_rounds:
            miss("rounds", f"{a.trace.num_rounds} != {b.trace.num_rounds}")
        for ra_, rb_ in zip(a.trace.rounds, b.trace.rounds):
            for attr in ("messages", "total_bits", "max_message_bits",
                         "max_sequences"):
                if getattr(ra_, attr) != getattr(rb_, attr):
                    miss(f"round{ra_.round_index}.{attr}",
                         f"{getattr(ra_, attr)} != {getattr(rb_, attr)}")
    return out


def engine_equivalence_report(
    *,
    engines: Tuple[str, ...] = ("reference", "fast"),
    instances: Optional[Sequence[Tuple[str, Dict]]] = None,
    ks: Sequence[int] = (3, 4, 5, 6, 7),
    seeds: Sequence[int] = (0, 1),
    include_detect: bool = True,
) -> EquivalenceReport:
    """Sweep a seeded instance grid and compare engines on every cell.

    The default grid is the paper's stress instances
    (:data:`DEFAULT_EQUIVALENCE_INSTANCES`) crossed with ``ks`` and
    ``seeds``, for both the full tester repetition and Algorithm 1 on
    the canonical first edge.
    """
    from .runner import registry

    grid = list(instances if instances is not None else
                DEFAULT_EQUIVALENCE_INSTANCES)
    report = EquivalenceReport(engines=engines)
    for family, params in grid:
        graph = registry.build_graph(family, seed=0, **params)
        if graph.m == 0:
            continue
        net = Network(graph)
        for k in ks:
            for seed in seeds:
                report.comparisons += 1
                report.mismatches.extend(
                    compare_engines_once(
                        graph, k, seed, engines=engines, network=net,
                        instance=family, what="tester",
                    )
                )
            if include_detect:
                # Algorithm 1 is deterministic (the seed is unused), so
                # one detect comparison per (instance, k) suffices.
                report.comparisons += 1
                report.mismatches.extend(
                    compare_engines_once(
                        graph, k, 0, engines=engines, network=net,
                        instance=family, what="detect",
                    )
                )
    return report


# ---------------------------------------------------------------------------
# benchmark-harness fixtures
# ---------------------------------------------------------------------------
def synthetic_bench_artifact(
    area: str = "synthetic",
    *,
    suite: str = "smoke",
    benchmarks: Sequence[str] = ("synthetic.alpha", "synthetic.beta"),
    wall: float = 0.1,
    slowdown: float = 1.0,
    metrics: Optional[Dict[str, object]] = None,
    environment: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A schema-valid ``BENCH_<area>.json`` payload with synthetic timings.

    The fixture behind the regression-detection tests (and the docs
    examples): pair one artifact built with ``slowdown=1.0`` against a
    twin built with ``slowdown=10.0`` and :func:`repro.bench.compare.
    compare_artifacts` must flag every benchmark.  No benchmark actually
    runs — records are fabricated, which is exactly the point: the gate
    logic is testable on timing data of known shape.
    """
    from .bench.artifacts import SCHEMA_VERSION, validate_artifact
    from .bench.registry import case_id

    case = {"n": 1}
    results = []
    for name in benchmarks:
        walls = [round(wall * slowdown, 6), round(wall * slowdown * 1.01, 6)]
        results.append({
            "benchmark": name,
            "area": area,
            "case": dict(case),
            "case_id": case_id(case),
            "suite": suite,
            "seed": 0,
            "repeats": len(walls),
            "wall_seconds": walls,
            "wall_min": min(walls),
            "wall_mean": round(sum(walls) / len(walls), 6),
            "status": "ok",
            "metrics": dict(metrics or {"rounds": 4}),
        })
    artifact = {
        "schema": SCHEMA_VERSION,
        "area": area,
        "suite": suite,
        "master_seed": 0,
        "environment": dict(environment or {"python": "synthetic"}),
        "results": results,
    }
    validate_artifact(artifact)
    return artifact

"""Command-line interface.

Examples::

    repro test --generator gnp --n 200 --p 0.05 --k 5 --eps 0.1
    repro detect --generator figure1 --k 5 --edge 0 1
    repro experiment T2
    repro dynamic run --stream uniform-churn:steps=40 --k 5 --n 30
    repro dynamic replay --base base.edges --stream-file churn.stream --k 5
    repro campaign define --preset smoke --out smoke.json
    repro campaign run --spec smoke.json --store smoke.jsonl --workers 4
    repro campaign run --preset dynamic --streams uniform-churn burst
    repro campaign report --store smoke.jsonl
    repro bench run --suite smoke --workers 2 --out fresh-results
    repro bench compare --baseline benchmarks/results --fresh fresh-results
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from . import analysis
from .bench.cli import add_bench_subparser
from .congest.engine import ENGINE_NAMES, parse_engine_spec
from .congest.faults import build_fault_model
from .core.algorithm1 import detect_cycle_through_edge
from .core.tester import CkFreenessTester
from .errors import ReproError
from .graphs.graph import Graph
from .obs import LOG, Telemetry, set_telemetry
from .runner import registry
from .runner.aggregate import DEFAULT_GROUP_BY, summarize_store
from .runner.executor import run_campaign
from .runner.runtable import ALGORITHM_NAMES, CampaignSpec
from .runner.store import CampaignStore

__all__ = ["main", "build_parser"]

#: Parameters handled by the subcommands themselves rather than the
#: auto-generated per-family graph options.
_RESERVED_PARAMS = ("k", "eps")


def _engine_arg(value: str) -> str:
    """argparse type for ``--engine``: a name or spec like 'sharded:4'."""
    from .errors import ConfigurationError

    try:
        parse_engine_spec(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _resolve_engine(args: argparse.Namespace) -> str:
    """Combine ``--engine``, ``--shards`` and ``--rep-chunk`` into one
    engine spec.

    ``--shards N`` is sugar for the ``sharded:N`` spelling and
    ``--rep-chunk C`` for the ``chunk=C`` option; giving either
    alongside an engine that does not accept it (or a spec that already
    pins the same option) is a configuration error.
    """
    from .errors import ConfigurationError

    engine = getattr(args, "engine", "reference")
    shards = getattr(args, "shards", None)
    rep_chunk = getattr(args, "rep_chunk", None)
    if shards is None and rep_chunk is None:
        return engine
    name, opts = parse_engine_spec(engine)
    extra = []
    if shards is not None:
        if name != "sharded":
            raise ConfigurationError(
                f"--shards only applies to the sharded engine (got "
                f"--engine {engine})"
            )
        if "shards" in opts:
            raise ConfigurationError(
                f"shard count given twice: --engine {engine} and "
                f"--shards {shards}"
            )
        extra.append(str(shards))
    if rep_chunk is not None:
        if name == "reference":
            raise ConfigurationError(
                f"--rep-chunk only applies to the numpy engines (got "
                f"--engine {engine})"
            )
        if "rep_chunk" in opts:
            raise ConfigurationError(
                f"chunk size given twice: --engine {engine} and "
                f"--rep-chunk {rep_chunk}"
            )
        extra.append(f"chunk={rep_chunk}")
    base, sep, prior = engine.partition(":")
    joined = ",".join(([prior] if prior else []) + extra)
    spec = f"{base}:{joined}"
    parse_engine_spec(spec)  # validates counts >= 1
    return spec


def _build_graph(args: argparse.Namespace) -> Graph:
    """Build the requested instance through the generator registry."""
    spec = registry.get(args.generator)
    supplied = {
        name: getattr(args, name, None) for name in registry.PARAMETERS
    }
    g, info = spec.build_with_info(seed=args.seed, **supplied)
    fields = {}
    for key, value in info.items():
        if isinstance(value, (list, tuple)) and len(value) > 8:
            fields[key] = f"[{len(value)} items]"
        else:
            fields[key] = value
    if fields:
        LOG.info(f"{args.generator} instance", **fields)
    LOG.debug(
        "graph built", n=g.n, m=g.m, seed=args.seed,
        engine=getattr(args, "engine", None),
    )
    return g


def _cmd_test(args: argparse.Namespace) -> int:
    g = _build_graph(args)
    tester = CkFreenessTester(
        args.k, args.eps, repetitions=args.repetitions,
        engine=_resolve_engine(args),
        faults=build_fault_model(args.faults, seed=args.seed),
    )
    result = tester.run(g, seed=args.seed)
    print(result)
    if result.rejected:
        print(f"cycle evidence (node IDs): {result.evidence}")
    return 0 if result.accepted else 1


def _cmd_detect(args: argparse.Namespace) -> int:
    g = _build_graph(args)
    u, v = args.edge
    det = detect_cycle_through_edge(
        g, (u, v), args.k, engine=_resolve_engine(args),
        faults=build_fault_model(args.faults, seed=args.seed),
    )
    print(f"k={args.k} edge=({u},{v}) detected={det.detected}")
    if det.detected:
        print(f"cycle (node IDs): {det.any_cycle_ids()}")
        print(f"rejecting vertices: {det.rejecting_vertices}")
    print(f"rounds={det.run.trace.num_rounds} "
          f"max_seqs/msg={det.run.trace.max_sequences_per_message} "
          f"max_bits/msg={det.run.trace.max_message_bits}")
    if args.timeline:
        from .congest.timeline import render_trace

        print()
        print(render_trace(det.run.trace))
    return 0


_EXPERIMENTS: Dict[str, Callable[[], "analysis.ExperimentResult"]] = {
    "T1": analysis.run_round_complexity,
    "T2": analysis.run_message_bound,
    "T3": analysis.run_detection_rates,
    "T4": analysis.run_phase1_statistics,
    "T5": analysis.run_farness_packing,
    "F1": analysis.run_pruning_vs_naive,
    "F2": analysis.run_through_edge_exactness,
    "F3": analysis.run_scalability,
    "A5": analysis.run_boosting_curve,
    "A6": analysis.run_epsilon_sweep,
    "A7": analysis.run_k_sweep,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    names: List[str]
    if args.name == "all":
        names = list(_EXPERIMENTS)
    else:
        if args.name not in _EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {args.name!r}; choose from "
                f"{', '.join(_EXPERIMENTS)} or 'all'"
            )
        names = [args.name]
    for name in names:
        result = _EXPERIMENTS[name]()
        print(result.render())
        print()
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import differential_campaign

    report = differential_campaign(
        trials=args.trials,
        seed=args.seed,
        include_naive=args.with_baselines,
        include_monien=args.with_baselines,
    )
    print(report)
    for f in report.failures[:10]:
        print(f"  {f.kind}: k={f.k} edge={f.edge} n={f.n} -> {f.detail}")
    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# dynamic subcommand
# ---------------------------------------------------------------------------
def _monitor_step_line(record) -> str:
    """One human-readable line per monitor step."""
    verdict = "ACCEPT" if record.accepted else "REJECT"
    line = (
        f"step {record.version:>4}  {record.mutation.to_line():<12} "
        f"{record.action:<13} {verdict}"
    )
    if record.flipped:
        line += "  <- verdict flip"
    return line


def _replay_monitor(base: Graph, mutations, args: argparse.Namespace) -> int:
    """Shared run/replay body: drive a monitor, print, optionally log."""
    from .dynamic import CkMonitor

    monitor = CkMonitor(
        base, args.k, engine=_resolve_engine(args), epsilon=args.eps,
        seed=args.seed,
        faults=build_fault_model(args.faults, seed=args.seed),
    )
    verdict = "ACCEPT" if monitor.accepted else "REJECT"
    print(f"base: n={base.n} m={base.m} verdict={verdict} "
          f"hash={base.content_hash()[:12]}")
    log_records: List[Dict[str, object]] = []
    for mutation in mutations:
        record = monitor.apply(mutation)
        if not args.quiet:
            print(_monitor_step_line(record))
        log_records.append({
            "step": record.version,
            "mutation": record.mutation.to_line(),
            "action": record.action,
            "accepted": record.accepted,
            "flipped": record.flipped,
            "witness": list(record.witness) if record.witness else None,
        })
    stats = monitor.stats.as_dict()
    final = "ACCEPT" if monitor.accepted else "REJECT"
    print(f"final: n={monitor.graph.n} m={monitor.graph.m} verdict={final} "
          f"hash={monitor.dynamic.content_hash()[:12]}")
    print("monitor: " + ", ".join(f"{key}={stats[key]}" for key in (
        "steps", "cache_hits", "local_rechecks", "full_retests",
        "verdict_flips", "cache_hit_rate")))
    if args.log:
        path = Path(args.log)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for rec in log_records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
            fh.write(json.dumps({"summary": stats}, sort_keys=True) + "\n")
        print(f"log: {path}")
    return 0


def _cmd_dynamic_run(args: argparse.Namespace) -> int:
    from .dynamic import build_stream
    from .graphs import io as graph_io

    base = _build_graph(args)
    stream = build_stream(args.stream, base, seed=args.seed, k=args.k)
    print(f"stream: {stream.scenario} x{len(stream.mutations)} "
          f"({', '.join(f'{k}={v}' for k, v in sorted(stream.params.items()))})")
    if args.base_out:
        graph_io.write_edge_list(stream.base, args.base_out,
                                 comment=f"base graph, seed={args.seed}")
        print(f"base graph: {args.base_out}")
    if args.stream_out:
        graph_io.write_edge_stream(
            stream.mutations, args.stream_out,
            comment=f"{stream.scenario} stream, seed={args.seed}",
        )
        print(f"edge stream: {args.stream_out}")
    return _replay_monitor(stream.base, stream.mutations, args)


def _cmd_dynamic_replay(args: argparse.Namespace) -> int:
    from .graphs import io as graph_io

    base = graph_io.read_edge_list(args.base)
    mutations = graph_io.read_edge_stream(args.stream_file)
    print(f"replay: {args.stream_file} ({len(mutations)} mutations) "
          f"over {args.base}")
    return _replay_monitor(base, mutations, args)


def _cmd_dynamic_report(args: argparse.Namespace) -> int:
    path = Path(args.log)
    if not path.exists():
        raise SystemExit(f"no dynamic log at {args.log!r}")
    actions: Dict[str, int] = {}
    steps = reject_steps = flips = 0
    summary: Optional[Dict[str, object]] = None
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{args.log}:{lineno}: corrupt log line ({exc})")
        if "summary" in rec:
            summary = rec["summary"]
            continue
        steps += 1
        actions[rec["action"]] = actions.get(rec["action"], 0) + 1
        reject_steps += 0 if rec["accepted"] else 1
        flips += 1 if rec["flipped"] else 0
    print(f"dynamic log {args.log}: {steps} steps, "
          f"{reject_steps} rejecting, {flips} verdict flips")
    for action in sorted(actions):
        share = actions[action] / steps if steps else 0.0
        print(f"  {action:<13} {actions[action]:>6}  ({share:.1%})")
    if summary is not None:
        print("summary: " + ", ".join(
            f"{key}={value}" for key, value in sorted(summary.items())))
    return 0


# ---------------------------------------------------------------------------
# obs subcommand
# ---------------------------------------------------------------------------
def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Summarize telemetry artifacts: JSONL event logs and Prometheus
    textfiles written by ``--telemetry`` / ``Telemetry.finalize``."""
    from .obs import parse_textfile, read_events, summarize_events

    if not args.events and not args.textfile:
        raise SystemExit("error: give --events and/or --textfile")
    if args.events:
        path = Path(args.events)
        if not path.exists():
            raise SystemExit(f"no event log at {args.events!r}")
        agg = summarize_events(read_events(path))
        print(f"event log {path}: {agg['events']} events")
        if agg["spans"]:
            print("spans:")
            for name in sorted(agg["spans"]):
                s = agg["spans"][name]
                print(f"  {name:<24} x{s['count']:<6} "
                      f"total={s['total_ms']:.1f}ms "
                      f"mean={s['mean_ms']:.2f}ms max={s['max_ms']:.2f}ms")
        if agg["marks"]:
            print("marks: " + ", ".join(
                f"{name}={count}" for name, count in sorted(agg["marks"].items())))
        if agg["metrics"]:
            print("metrics (final snapshot):")
            for name, value in sorted(agg["metrics"].items()):
                print(f"  {name} = {value}")
    if args.textfile:
        path = Path(args.textfile)
        if not path.exists():
            raise SystemExit(f"no metrics textfile at {args.textfile!r}")
        families = parse_textfile(path.read_text(encoding="utf-8"))
        print(f"textfile {path}: {len(families)} metric families (valid)")
        for name in sorted(families):
            family = families[name]
            suffix = "_count" if family.kind == "histogram" else ""
            series = len(family.series(suffix))
            print(f"  {family.kind:<9} {name} ({series} series)")
    return 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    """Reconstruct span trees from a JSONL event log; ``--check`` asserts
    the causal invariants (unique span ids, resolvable parents, every
    span chains to its request wide event)."""
    from .obs import read_events
    from .obs.traceview import (
        check_traces,
        group_traces,
        render_slowest,
        render_trace,
    )

    path = Path(args.events)
    if not path.exists():
        raise SystemExit(f"no event log at {args.events!r}")
    events = read_events(path)
    traces = group_traces(events)
    requests = sum(1 for e in events if e.get("type") == "request")
    print(f"event log {path}: {len(events)} events, {len(traces)} traces, "
          f"{requests} requests")
    if args.check:
        problems = check_traces(events)
        if problems:
            for problem in problems:
                print(f"  VIOLATION: {problem}")
            raise SystemExit(
                f"trace check FAILED ({len(problems)} violation(s))"
            )
        print("trace check OK: span ids unique, parents resolve, every "
              "span chains to its request")
    if args.trace_id:
        print(render_trace(events, args.trace_id))
    elif args.slowest:
        print(render_slowest(events, args.slowest))
    return 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    """Print an engine phase-profile table; without ``--profile`` the
    profile is generated by running the chosen engine here and now."""
    from .congest.engine import create_engine, PhaseProfiler, validate_profile
    from .congest.network import Network
    from .runner.runtable import derive_seed

    if args.profile:
        path = Path(args.profile)
        if not path.exists():
            raise SystemExit(f"no profile at {args.profile!r}")
        doc = validate_profile(
            json.loads(path.read_text(encoding="utf-8"))
        )
    else:
        params = _parse_params(args.params) or {"n": 40, "p": 0.1}
        graph = registry.build_graph(args.family, seed=args.seed, **params)
        profiler = PhaseProfiler()
        engine = create_engine(
            _resolve_engine(args), Network(graph), profiler=profiler
        )
        for rep in range(max(1, args.reps)):
            engine.run_tester_repetition(
                args.k, derive_seed(args.seed, "profile", rep)
            )
        doc = validate_profile(profiler.report(engine=engine.name))
        if args.out:
            profiler.write(args.out, engine=engine.name)
            LOG.info("profile written", path=args.out)
    total = doc["total_seconds"] or 0.0
    print(f"engine {doc['engine'] or '?'}: "
          f"{len(doc['phases'])} phases, {total:.6f}s attributed")
    for name, entry in sorted(
        doc["phases"].items(), key=lambda kv: -kv[1]["seconds"]
    ):
        share = entry["seconds"] / total if total else 0.0
        print(f"  {name:<18} x{entry['calls']:<6} "
              f"{entry['seconds']:.6f}s  ({share:.1%})")
    return 0


# ---------------------------------------------------------------------------
# service subcommands (serve / loadgen)
# ---------------------------------------------------------------------------
def _parse_params(spec: Optional[str]) -> Dict[str, object]:
    """Parse ``n=40,p=0.1`` into a typed parameter dict."""
    params: Dict[str, object] = {}
    if not spec:
        return params
    for item in spec.split(","):
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: bad --params item {item!r} (need key=value)"
            )
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key.strip()] = value
    return params


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the detection service in the foreground until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from .obs import get_telemetry
    from .service import ServiceConfig, ServiceServer

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        request_timeout=args.request_timeout,
        debug=args.debug,
        default_engine=_resolve_engine(args),
    )
    # --telemetry installs the global before dispatch; hand it to the
    # server so wide events and spans land in the JSONL artifact.
    tel = get_telemetry()

    async def _run() -> None:
        server = ServiceServer(config, telemetry=tel if tel.enabled else None)
        await server.start()
        LOG.info(
            "service listening",
            host=config.host, port=server.port,
            max_sessions=config.max_sessions,
            request_timeout=config.request_timeout,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        LOG.info("service draining", sessions=len(server.sessions))
        await server.stop(drain=True)

    asyncio.run(_run())
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a loadgen profile (in-process server unless --host given)."""
    from .service.loadgen import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        clients=args.clients,
        family=args.family,
        params=_parse_params(args.params) or LoadgenConfig().params,
        stream=args.stream,
        k=args.k,
        engine=_resolve_engine(args),
        seed=args.seed,
        batch=args.batch,
        verify_parity=not args.no_parity,
        trace=args.trace,
    )
    summary = run_loadgen(
        config,
        host=args.host,
        port=args.port,
        out=args.out,
        metrics_out=args.metrics_out,
    )
    print(json.dumps({"summary": summary}, sort_keys=True, indent=2))
    if summary["errors"]:
        raise SystemExit(f"loadgen finished with {summary['errors']} errors")
    if not summary["parity_ok"]:
        raise SystemExit("loadgen parity check FAILED "
                         "(service vs offline monitor mismatch)")
    return 0


# ---------------------------------------------------------------------------
# campaign subcommand
# ---------------------------------------------------------------------------
#: Built-in campaign presets (factor grids); ``smoke`` is CI-sized.
_PRESETS: Dict[str, Callable[[int], CampaignSpec]] = {
    "smoke": lambda seed: CampaignSpec(
        name="smoke",
        generators=[
            {"family": "gnp", "params": {"n": [24, 36], "p": 0.08}},
            {"family": "eps-far", "params": {"n": 40}},
        ],
        ks=[4, 5],
        epsilons=[0.15],
        algorithms=["tester", "detect"],
        repetitions=2,
        seed=seed,
    ),
    "engines": lambda seed: CampaignSpec(
        name="engines",
        generators=[
            {"family": "gnp", "params": {"n": [64, 128], "p": 0.05}},
            {"family": "eps-far", "params": {"n": 64}},
            {"family": "theta", "params": {"paths": 4, "path_length": 2}},
        ],
        ks=[4, 5],
        epsilons=[0.15],
        algorithms=["tester", "detect"],
        engines=["reference", "fast", "sharded:2"],
        repetitions=3,
        seed=seed,
    ),
    "dynamic": lambda seed: CampaignSpec(
        name="dynamic",
        generators=[
            {"family": "gnp", "params": {"n": 24, "p": 0.1}},
            {"family": "cycle", "params": {"n": 16}},
        ],
        ks=[5],
        epsilons=[0.15],
        algorithms=["monitor", "tester"],
        streams=["uniform-churn:steps=24", "near-cycle:steps=16"],
        repetitions=2,
        seed=seed,
    ),
    "grid": lambda seed: CampaignSpec(
        name="grid",
        generators=[
            {"family": "gnp", "params": {"n": [64, 128], "p": 0.05}},
            {"family": "ba", "params": {"n": [64, 128], "attach": 3}},
            {"family": "ws", "params": {"n": [64, 128], "d": 4, "beta": 0.1}},
            {"family": "powerlaw", "params": {"n": [64, 128], "exponent": 2.5}},
            {"family": "eps-far", "params": {"n": 96}},
            {"family": "ck-free", "params": {"n": 96}},
        ],
        ks=[4, 5, 6],
        epsilons=[0.1],
        algorithms=["tester", "detect", "naive"],
        repetitions=3,
        seed=seed,
    ),
}


def _csv(cast: Callable[[str], object]) -> Callable[[str], List[object]]:
    def parse(text: str) -> List[object]:
        return [cast(item) for item in text.split(",") if item]

    return parse


def _optional_name(text: str) -> Optional[str]:
    """The literal ``none`` becomes ``None`` (the static/reliable axis
    value of the streams and faults factors); anything else passes
    through as a spec string."""
    return None if text == "none" else text


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Resolve the campaign spec: file > preset, then factor overrides."""
    if getattr(args, "spec", None):
        path = Path(args.spec)
        if not path.exists():
            raise SystemExit(f"error: no campaign spec at {args.spec!r}")
        try:
            spec = CampaignSpec.from_json(path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"error: {args.spec}: invalid JSON ({exc})") from exc
    else:
        preset = getattr(args, "preset", None) or "smoke"
        spec = _PRESETS[preset](getattr(args, "seed", 0) or 0)
        if getattr(args, "generators", None) is not None and \
                getattr(args, "name", None) is None:
            # An inline grid is not the preset it borrowed defaults from:
            # don't let it masquerade as (and share a store with) 'smoke'.
            spec.name = "custom"
    if getattr(args, "name", None) is not None:
        spec.name = args.name
    if getattr(args, "generators", None) is not None:
        ns = args.ns or [registry.PARAMETERS["n"].default]
        spec.generators = [
            {
                "family": family,
                "params": ({"n": ns} if "n" in registry.get(family).params else {}),
            }
            for family in args.generators
        ]
    elif getattr(args, "ns", None) is not None:
        # --ns without --generators: sweep n across the spec's existing
        # families (those that take an n at all).
        spec.generators = [
            {
                **entry,
                "params": {**entry.get("params", {}), "n": args.ns},
            }
            if "n" in registry.get(entry["family"]).params
            else entry
            for entry in spec.generators
        ]
    if getattr(args, "ks", None) is not None:
        spec.ks = args.ks
    if getattr(args, "eps_grid", None) is not None:
        spec.epsilons = args.eps_grid
    if getattr(args, "algorithms", None) is not None:
        spec.algorithms = args.algorithms
    if getattr(args, "engines", None) is not None:
        spec.engines = args.engines
    if getattr(args, "streams", None) is not None:
        spec.streams = args.streams
    if getattr(args, "faults", None) is not None:
        spec.faults = args.faults
    if getattr(args, "repetitions", None) is not None:
        spec.repetitions = args.repetitions
    if getattr(args, "seed", None) is not None:
        spec.seed = args.seed
    spec.validate()
    return spec


def _cmd_campaign_define(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    text = spec.to_json()
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    rows = len(spec.expand())
    print(f"wrote campaign {spec.name!r} ({rows} run rows) to {out}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    table = spec.expand()
    store_path = args.store or f"campaigns/{spec.name}.jsonl"
    store = CampaignStore(store_path)
    report = run_campaign(
        table, store, workers=args.workers, chunksize=args.chunksize
    )
    print(report.render())
    done = report.executed + report.skipped
    print(f"results: {store.path} ({done}/{report.total_rows} rows complete)")
    # Error rows are persisted (and will not be retried), but automation
    # must still be able to see that the campaign was not clean.
    return 1 if report.errors else 0


#: Columns a result record carries that reports may group by.
_REPORT_COLUMNS = ("campaign", "generator", "params", "k", "eps",
                   "algorithm", "engine", "stream", "faults", "repetition",
                   "seed", "n", "m", "status")


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    if not store.exists():
        raise SystemExit(f"no campaign results at {args.store!r}")
    group_by = args.group_by or list(DEFAULT_GROUP_BY)
    unknown = [c for c in group_by if c not in _REPORT_COLUMNS]
    if unknown:
        raise SystemExit(
            f"error: unknown group-by column(s) {', '.join(unknown)}; "
            f"choose from {', '.join(_REPORT_COLUMNS)}"
        )
    summary = summarize_store(store, group_by=group_by)
    print(summary.render())
    return 0


def _add_campaign_factor_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--spec", help="campaign spec JSON (from 'campaign define')")
    p.add_argument("--preset", choices=sorted(_PRESETS),
                   help="built-in factor grid (default: smoke)")
    p.add_argument("--name", help="override the campaign name")
    p.add_argument("--generators", type=_csv(str), metavar="F1,F2,...",
                   help=f"families from: {', '.join(registry.names())}")
    p.add_argument("--ns", type=_csv(int), metavar="N1,N2,...",
                   help="graph sizes to cross (families with an n parameter)")
    p.add_argument("--ks", type=_csv(int), metavar="K1,K2,...",
                   help="cycle lengths to cross")
    p.add_argument("--eps-grid", type=_csv(float), metavar="E1,E2,...",
                   help="farness parameters to cross")
    p.add_argument("--algorithms", type=_csv(str), metavar="A1,A2,...",
                   help=f"variants from: {', '.join(ALGORITHM_NAMES)}")
    p.add_argument("--engines", type=_csv(str), metavar="E1,E2,...",
                   help=f"scheduler backends to cross: "
                   f"{', '.join(ENGINE_NAMES)} (sharded accepts a "
                   "shard count, e.g. sharded:4)")
    p.add_argument("--streams", type=_optional_name, nargs="+",
                   metavar="SPEC",
                   help="stream scenarios to cross (temporal campaign), "
                   "e.g. uniform-churn burst:steps=40,burst=6; "
                   "'none' = static rows")
    p.add_argument("--faults", type=_optional_name, nargs="+",
                   metavar="SPEC",
                   help="fault models to cross, e.g. none drop:p=0.05 "
                   "targeted:u=0,v=1 (faulted rows run on the reference "
                   "engine)")
    p.add_argument("--repetitions", type=int, help="replicates per cell")
    p.add_argument("--seed", type=int, default=None, help="campaign master seed")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Ck-freeness testing (Fraigniaud & Olivetti, "
        "SPAA 2017) on a simulated CONGEST network.",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="show debug diagnostics")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress diagnostic commentary (results and "
                        "warnings still print)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_telemetry_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--telemetry", metavar="PATH", default=None,
                       help="record telemetry: JSONL events to PATH, "
                       "Prometheus textfile to PATH.prom")

    def add_graph_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--generator", default="gnp", choices=registry.names())
        for name, param in registry.PARAMETERS.items():
            if name in _RESERVED_PARAMS:
                continue  # --k/--eps belong to the tester, added per command
            p.add_argument(f"--{name.replace('_', '-')}", dest=name,
                           type=param.type, default=param.default,
                           help=param.help)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--engine", default="reference", type=_engine_arg,
                       metavar="ENGINE",
                       help=f"scheduler backend: {', '.join(ENGINE_NAMES)} "
                       "(identical verdicts); sharded accepts a shard "
                       "count, e.g. sharded:4")
        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard count for --engine sharded "
                       "(same as --engine sharded:N)")
        p.add_argument("--rep-chunk", type=int, default=None, metavar="C",
                       help="tester repetitions per batched kernel pass "
                       "for the numpy engines (same as chunk=C in the "
                       "engine spec)")
        p.add_argument("--faults", type=_optional_name, default=None,
                       metavar="SPEC",
                       help="fault model, e.g. drop:p=0.05 or "
                       "targeted:u=0,v=1 (reference engine only)")

    p_test = sub.add_parser("test", help="run the full Ck-freeness tester")
    add_graph_args(p_test)
    p_test.add_argument("--k", type=int, required=True)
    p_test.add_argument("--eps", type=float, default=0.1)
    p_test.add_argument("--repetitions", type=int, default=None)
    add_telemetry_arg(p_test)
    p_test.set_defaults(func=_cmd_test)

    p_detect = sub.add_parser(
        "detect", help="run Algorithm 1 for one edge (deterministic)"
    )
    add_graph_args(p_detect)
    p_detect.add_argument("--k", type=int, required=True)
    p_detect.add_argument("--eps", type=float, default=0.1)
    p_detect.add_argument("--edge", type=int, nargs=2, default=(0, 1))
    p_detect.add_argument("--timeline", action="store_true",
                          help="print the per-round bandwidth timeline")
    add_telemetry_arg(p_detect)
    p_detect.set_defaults(func=_cmd_detect)

    p_dyn = sub.add_parser(
        "dynamic",
        help="dynamic graphs: run churn scenarios, replay edge streams, "
        "report monitor logs",
    )
    dyn_sub = p_dyn.add_subparsers(dest="action", required=True)

    p_dyn_run = dyn_sub.add_parser(
        "run", help="generate a base graph, build a stream, run the monitor"
    )
    add_graph_args(p_dyn_run)
    p_dyn_run.add_argument("--k", type=int, required=True)
    p_dyn_run.add_argument("--eps", type=float, default=0.1)
    p_dyn_run.add_argument("--stream", default="uniform-churn",
                           metavar="SPEC",
                           help="scenario spec, e.g. uniform-churn or "
                           "burst:steps=40,burst=6")
    p_dyn_run.add_argument("--base-out", help="write the base graph "
                           "(edge-list format) here")
    p_dyn_run.add_argument("--stream-out", help="write the mutation "
                           "sequence (edge-stream format) here")
    p_dyn_run.add_argument("--log", help="write per-step JSONL records here")
    p_dyn_run.add_argument("--quiet", action="store_true",
                           default=argparse.SUPPRESS,
                           help="suppress per-step output")
    add_telemetry_arg(p_dyn_run)
    p_dyn_run.set_defaults(func=_cmd_dynamic_run)

    p_dyn_replay = dyn_sub.add_parser(
        "replay", help="replay a saved edge stream over a saved base graph"
    )
    p_dyn_replay.add_argument("--base", required=True,
                              help="base graph file (edge-list format)")
    p_dyn_replay.add_argument("--stream-file", required=True,
                              help="mutation file (edge-stream format)")
    p_dyn_replay.add_argument("--k", type=int, required=True)
    p_dyn_replay.add_argument("--eps", type=float, default=0.1)
    p_dyn_replay.add_argument("--seed", type=int, default=0)
    p_dyn_replay.add_argument("--engine", default="reference",
                              type=_engine_arg, metavar="ENGINE")
    p_dyn_replay.add_argument("--shards", type=int, default=None,
                              metavar="N")
    p_dyn_replay.add_argument("--rep-chunk", type=int, default=None,
                              metavar="C")
    p_dyn_replay.add_argument("--faults", type=_optional_name, default=None,
                              metavar="SPEC")
    p_dyn_replay.add_argument("--log", help="write per-step JSONL records")
    p_dyn_replay.add_argument("--quiet", action="store_true",
                              default=argparse.SUPPRESS)
    add_telemetry_arg(p_dyn_replay)
    p_dyn_replay.set_defaults(func=_cmd_dynamic_replay)

    p_dyn_report = dyn_sub.add_parser(
        "report", help="aggregate a per-step JSONL monitor log"
    )
    p_dyn_report.add_argument("--log", required=True)
    p_dyn_report.set_defaults(func=_cmd_dynamic_report)

    p_exp = sub.add_parser("experiment", help="run a DESIGN.md experiment")
    p_exp.add_argument("name", help="T1..T5, F1..F3 or 'all'")
    p_exp.set_defaults(func=_cmd_experiment)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential campaign vs the exact oracle"
    )
    p_fuzz.add_argument("--trials", type=int, default=100)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--with-baselines", action="store_true")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_camp = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns (define/run/resume/report)",
    )
    camp_sub = p_camp.add_subparsers(dest="action", required=True)

    p_define = camp_sub.add_parser(
        "define", help="write a campaign spec JSON for later runs"
    )
    _add_campaign_factor_args(p_define)
    p_define.add_argument("--out", required=True, help="spec output path")
    p_define.set_defaults(func=_cmd_campaign_define)

    for action, blurb in [
        ("run", "expand the grid and execute pending rows"),
        ("resume", "alias of run: only not-yet-completed rows execute"),
    ]:
        p_run = camp_sub.add_parser(action, help=blurb)
        _add_campaign_factor_args(p_run)
        p_run.add_argument("--store", help="JSONL results path "
                           "(default: campaigns/<name>.jsonl)")
        p_run.add_argument("--workers", type=int, default=4,
                           help="parallel worker processes (1 = serial)")
        p_run.add_argument("--chunksize", type=int, default=1,
                           help="rows per worker dispatch")
        add_telemetry_arg(p_run)
        p_run.set_defaults(func=_cmd_campaign_run)

    p_report = camp_sub.add_parser(
        "report", help="aggregate a results store into a summary table"
    )
    p_report.add_argument("--store", required=True)
    p_report.add_argument("--group-by", type=_csv(str), default=None,
                          metavar="C1,C2,...",
                          help=f"grouping columns (default: "
                          f"{','.join(DEFAULT_GROUP_BY)})")
    p_report.set_defaults(func=_cmd_campaign_report)

    p_obs = sub.add_parser(
        "obs", help="observability: inspect telemetry artifacts"
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)
    p_obs_report = obs_sub.add_parser(
        "report", help="summarize a JSONL event log / validate a textfile"
    )
    p_obs_report.add_argument("--events", help="JSONL event log "
                              "(written by --telemetry PATH)")
    p_obs_report.add_argument("--textfile", help="Prometheus textfile "
                              "(written as PATH.prom); parsed and validated")
    p_obs_report.set_defaults(func=_cmd_obs_report)

    p_obs_trace = obs_sub.add_parser(
        "trace", help="reconstruct span trees from a JSONL event log"
    )
    p_obs_trace.add_argument("--events", required=True,
                             help="JSONL event log (written by "
                             "--telemetry PATH)")
    p_obs_trace.add_argument("--check", action="store_true",
                             help="assert the causal invariants; non-zero "
                             "exit on any violation")
    p_obs_trace.add_argument("--slowest", type=int, default=5, metavar="N",
                             help="render the N slowest requests as span "
                             "trees (0 = none)")
    p_obs_trace.add_argument("--trace-id", default=None,
                             help="render exactly this trace instead")
    p_obs_trace.set_defaults(func=_cmd_obs_trace)

    p_obs_profile = obs_sub.add_parser(
        "profile", help="engine phase profile: print PROFILE.json or "
        "generate one by running an engine"
    )
    p_obs_profile.add_argument("--profile", default=None, metavar="PATH",
                               help="existing PROFILE.json to print "
                               "(skips the run)")
    p_obs_profile.add_argument("--engine", default="fast", type=_engine_arg,
                               metavar="ENGINE",
                               help="engine to profile when generating")
    p_obs_profile.add_argument("--shards", type=int, default=None,
                               metavar="N")
    p_obs_profile.add_argument("--rep-chunk", type=int, default=None,
                               metavar="C")
    p_obs_profile.add_argument("--family", default="gnp",
                               help="base-graph generator family")
    p_obs_profile.add_argument("--params", default=None, metavar="K=V,...",
                               help="generator parameters, e.g. n=60,p=0.1")
    p_obs_profile.add_argument("--k", type=int, default=5)
    p_obs_profile.add_argument("--seed", type=int, default=0)
    p_obs_profile.add_argument("--reps", type=int, default=3,
                               help="tester repetitions to profile")
    p_obs_profile.add_argument("--out", default=None, metavar="PATH",
                               help="write the schema-validated "
                               "PROFILE.json here")
    p_obs_profile.set_defaults(func=_cmd_obs_profile)

    p_serve = sub.add_parser(
        "serve",
        help="run the detection-as-a-service HTTP daemon (stdlib asyncio)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8757,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--max-sessions", type=int, default=64,
                         help="session cap before LRU eviction")
    p_serve.add_argument("--request-timeout", type=float, default=30.0,
                         help="per-request handler timeout (seconds)")
    p_serve.add_argument("--engine", default="reference",
                         type=_engine_arg, metavar="ENGINE",
                         help="default detection engine for new sessions "
                         "(name or spec, e.g. sharded:4)")
    p_serve.add_argument("--shards", type=int, default=None, metavar="N",
                         help="shard count for --engine sharded")
    p_serve.add_argument("--rep-chunk", type=int, default=None, metavar="C",
                         help="repetition chunk size for the numpy engines")
    p_serve.add_argument("--debug", action="store_true",
                         help="enable the /debug endpoints (tests only)")
    add_telemetry_arg(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_lg = sub.add_parser(
        "loadgen",
        help="drive the service with N concurrent seeded clients",
    )
    p_lg.add_argument("--clients", type=int, default=8)
    p_lg.add_argument("--family", default="gnp",
                      help="base-graph generator family")
    p_lg.add_argument("--params", default=None, metavar="K=V,...",
                      help="generator parameters, e.g. n=40,p=0.1")
    p_lg.add_argument("--stream", default="uniform-churn:steps=30,p=0.5",
                      metavar="SPEC", help="scenario spec per client")
    p_lg.add_argument("--k", type=int, default=5)
    p_lg.add_argument("--engine", default="reference", type=_engine_arg,
                      metavar="ENGINE")
    p_lg.add_argument("--shards", type=int, default=None, metavar="N")
    p_lg.add_argument("--rep-chunk", type=int, default=None, metavar="C")
    p_lg.add_argument("--seed", type=int, default=0)
    p_lg.add_argument("--batch", type=int, default=1,
                      help="mutations per request")
    p_lg.add_argument("--host", default=None,
                      help="target a running server (default: boot one "
                      "in-process for the run)")
    p_lg.add_argument("--port", type=int, default=None)
    p_lg.add_argument("--out", help="JSONL results path")
    p_lg.add_argument("--metrics-out",
                      help="scrape /metrics to this textfile after the run")
    p_lg.add_argument("--no-parity", action="store_true",
                      help="skip the offline CkMonitor parity replay")
    p_lg.add_argument("--trace", action="store_true",
                      help="propagate traceparent ids and join client rows "
                      "to server wide events (in-process server only)")
    p_lg.set_defaults(func=_cmd_loadgen)

    add_bench_subparser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    LOG.configure(
        verbose=getattr(args, "verbose", False),
        quiet=getattr(args, "quiet", False),
    )
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path:
        set_telemetry(Telemetry.to_jsonl(telemetry_path))
    try:
        return args.func(args)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from exc
    finally:
        if telemetry_path:
            tel = set_telemetry(None)
            tel.finalize(textfile=f"{telemetry_path}.prom")
            LOG.info("telemetry written", events=telemetry_path,
                     textfile=f"{telemetry_path}.prom")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

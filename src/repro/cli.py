"""Command-line interface.

Examples::

    repro-cycles test --generator gnp --n 200 --p 0.05 --k 5 --eps 0.1
    repro-cycles detect --generator figure1 --k 5 --edge 0 1
    repro-cycles experiment T2
    repro-cycles experiment all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from . import analysis
from .core.algorithm1 import detect_cycle_through_edge
from .core.tester import CkFreenessTester
from .graphs import generators
from .graphs.graph import Graph

__all__ = ["main", "build_parser"]


def _build_graph(args: argparse.Namespace) -> Graph:
    gen = args.generator
    if gen == "gnp":
        return generators.erdos_renyi_gnp(args.n, args.p, seed=args.seed)
    if gen == "gnm":
        return generators.erdos_renyi_gnm(args.n, args.m, seed=args.seed)
    if gen == "cycle":
        return generators.cycle_graph(args.n)
    if gen == "theta":
        return generators.theta_graph(args.paths, args.path_length)
    if gen == "flower":
        return generators.flower_graph(args.paths, args.k)
    if gen == "figure1":
        return generators.figure1_graph()
    if gen == "eps-far":
        g, certified = generators.planted_epsilon_far_graph(
            args.n, args.k, args.eps, seed=args.seed
        )
        print(f"# planted eps-far instance, certified farness {certified:.4f}")
        return g
    if gen == "ck-free":
        return generators.ck_free_graph(args.n, args.k, seed=args.seed)
    raise SystemExit(f"unknown generator {gen!r}")


def _cmd_test(args: argparse.Namespace) -> int:
    g = _build_graph(args)
    tester = CkFreenessTester(args.k, args.eps, repetitions=args.repetitions)
    result = tester.run(g, seed=args.seed)
    print(result)
    if result.rejected:
        print(f"cycle evidence (node IDs): {result.evidence}")
    return 0 if result.accepted else 1


def _cmd_detect(args: argparse.Namespace) -> int:
    g = _build_graph(args)
    u, v = args.edge
    det = detect_cycle_through_edge(g, (u, v), args.k)
    print(f"k={args.k} edge=({u},{v}) detected={det.detected}")
    if det.detected:
        print(f"cycle (node IDs): {det.any_cycle_ids()}")
        print(f"rejecting vertices: {det.rejecting_vertices}")
    print(f"rounds={det.run.trace.num_rounds} "
          f"max_seqs/msg={det.run.trace.max_sequences_per_message} "
          f"max_bits/msg={det.run.trace.max_message_bits}")
    if args.timeline:
        from .congest.timeline import render_trace

        print()
        print(render_trace(det.run.trace))
    return 0


_EXPERIMENTS: Dict[str, Callable[[], "analysis.ExperimentResult"]] = {
    "T1": analysis.run_round_complexity,
    "T2": analysis.run_message_bound,
    "T3": analysis.run_detection_rates,
    "T4": analysis.run_phase1_statistics,
    "T5": analysis.run_farness_packing,
    "F1": analysis.run_pruning_vs_naive,
    "F2": analysis.run_through_edge_exactness,
    "F3": analysis.run_scalability,
    "A5": analysis.run_boosting_curve,
    "A6": analysis.run_epsilon_sweep,
    "A7": analysis.run_k_sweep,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    names: List[str]
    if args.name == "all":
        names = list(_EXPERIMENTS)
    else:
        if args.name not in _EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {args.name!r}; choose from "
                f"{', '.join(_EXPERIMENTS)} or 'all'"
            )
        names = [args.name]
    for name in names:
        result = _EXPERIMENTS[name]()
        print(result.render())
        print()
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import differential_campaign

    report = differential_campaign(
        trials=args.trials,
        seed=args.seed,
        include_naive=args.with_baselines,
        include_monien=args.with_baselines,
    )
    print(report)
    for f in report.failures[:10]:
        print(f"  {f.kind}: k={f.k} edge={f.edge} n={f.n} -> {f.detail}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cycles",
        description="Distributed Ck-freeness testing (Fraigniaud & Olivetti, "
        "SPAA 2017) on a simulated CONGEST network.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--generator", default="gnp",
                       choices=["gnp", "gnm", "cycle", "theta", "flower",
                                "figure1", "eps-far", "ck-free"])
        p.add_argument("--n", type=int, default=100)
        p.add_argument("--m", type=int, default=200)
        p.add_argument("--p", type=float, default=0.05)
        p.add_argument("--paths", type=int, default=4)
        p.add_argument("--path-length", type=int, default=3)
        p.add_argument("--seed", type=int, default=0)

    p_test = sub.add_parser("test", help="run the full Ck-freeness tester")
    add_graph_args(p_test)
    p_test.add_argument("--k", type=int, required=True)
    p_test.add_argument("--eps", type=float, default=0.1)
    p_test.add_argument("--repetitions", type=int, default=None)
    p_test.set_defaults(func=_cmd_test)

    p_detect = sub.add_parser(
        "detect", help="run Algorithm 1 for one edge (deterministic)"
    )
    add_graph_args(p_detect)
    p_detect.add_argument("--k", type=int, required=True)
    p_detect.add_argument("--eps", type=float, default=0.1)
    p_detect.add_argument("--edge", type=int, nargs=2, default=(0, 1))
    p_detect.add_argument("--timeline", action="store_true",
                          help="print the per-round bandwidth timeline")
    p_detect.set_defaults(func=_cmd_detect)

    p_exp = sub.add_parser("experiment", help="run a DESIGN.md experiment")
    p_exp.add_argument("name", help="T1..T5, F1..F3 or 'all'")
    p_exp.set_defaults(func=_cmd_experiment)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential campaign vs the exact oracle"
    )
    p_fuzz.add_argument("--trials", type=int, default=100)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--with-baselines", action="store_true")
    p_fuzz.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Benchmark execution: suite resolution, timing policy, artifact assembly.

The runner reuses the campaign runner's two load-bearing pieces:

* **seeding** — each (benchmark, case) derives its RNG seed with
  :func:`repro.runner.runtable.derive_seed` from the master seed, the
  benchmark name and the case id, so a benchmark's protocol-determined
  metrics (round counts, audited bits) are reproducible anywhere and the
  comparison layer may demand exact equality on them;
* **parallelism** — work units fan out through
  :func:`repro.runner.executor.ordered_parallel_map`, so results arrive
  in a deterministic order regardless of worker count and artifacts are
  order-stable.

Timing policy: each case runs ``SUITE_REPEATS[suite]`` times back to
back; the per-repeat wall times are all recorded, and downstream
comparison judges ``wall_min`` (the least-noisy statistic on a shared
machine).  A benchmark body that raises becomes an ``error`` record —
the run completes, reports the failure, and exits nonzero.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..runner.executor import ordered_parallel_map
from ..runner.runtable import derive_seed
from . import registry
from .artifacts import write_artifact, SCHEMA_VERSION
from .environment import environment_fingerprint

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "SUITE_REPEATS",
    "BenchRunReport",
    "execute_benchmark",
    "run_suite",
]

#: Where ``bench run`` writes artifacts by default: the committed
#: baseline directory of a checkout, or ``benchmarks/results`` relative
#: to the invocation directory otherwise.
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"

#: Back-to-back repeats per case, by suite.  ``smoke`` favours total
#: wall time (CI runs it on every push); larger suites buy stability.
SUITE_REPEATS = {"smoke": 2, "default": 3, "full": 5}


def execute_benchmark(
    unit: Tuple[str, Dict[str, Any], str, int, int],
) -> Dict[str, Any]:
    """Execute one (benchmark, case) work unit; returns its result record.

    Module-level and driven by plain picklable data so it can cross a
    process-pool boundary.  Failures inside the benchmark body (including
    its correctness assertions) are captured as ``status: "error"``
    records rather than raised, so one broken benchmark cannot take down
    a whole suite run.
    """
    name, case, suite, repeats, seed = unit
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    spec = registry.get(name)
    record: Dict[str, Any] = {
        "benchmark": name,
        "area": spec.area,
        "case": dict(case),
        "case_id": registry.case_id(case),
        "suite": suite,
        "seed": seed,
        "repeats": repeats,
        "metrics": {},
    }
    walls: List[float] = []
    try:
        # Benchmarks must not observe each other's compiled engines: a
        # warm process-global cache would turn first-touch compile costs
        # into hits depending on unit order (and on whether units share
        # a worker process).  Start every unit cold.
        from ..congest.engine.cache import global_engine_cache

        global_engine_cache().clear()
        # Repeats run with the collector paused: allocation-heavy
        # kernels otherwise absorb whole-heap collection pauses whose
        # size tracks the import graph and unit order, not the code
        # under test.  Collection runs between repeats, outside the
        # timed windows; bodies that pause gc themselves see it already
        # disabled and leave it that way.
        gc_was_enabled = gc.isenabled()
        try:
            for _ in range(repeats):
                gc.collect()
                gc.disable()
                t0 = time.perf_counter()
                metrics = spec.func(dict(case), seed)
                walls.append(time.perf_counter() - t0)
                if gc_was_enabled:
                    gc.enable()
        finally:
            if gc_was_enabled:
                gc.enable()
        record["metrics"] = dict(metrics or {})
        record["wall_seconds"] = [round(w, 6) for w in walls]
        record["wall_min"] = round(min(walls), 6)
        record["wall_mean"] = round(sum(walls) / len(walls), 6)
        record["status"] = "ok"
    except Exception as exc:  # noqa: BLE001 - the contract: any body
        # failure (assertion, numpy error, bad case key, ...) becomes an
        # error record; only KeyboardInterrupt/SystemExit abort the run.
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


@dataclass
class BenchRunReport:
    """What one ``run_suite`` invocation measured and wrote."""

    suite: str
    seed: int
    workers: int
    wall_seconds: float
    results: List[Dict[str, Any]] = field(default_factory=list)
    artifact_paths: List[Path] = field(default_factory=list)

    @property
    def errors(self) -> List[Dict[str, Any]]:
        """The error records, if any benchmark body failed."""
        return [r for r in self.results if r["status"] != "ok"]

    @property
    def ok(self) -> bool:
        """Whether every benchmark completed (and its checks passed)."""
        return not self.errors

    @property
    def areas(self) -> List[str]:
        """Areas covered by this run, sorted."""
        return sorted({r["area"] for r in self.results})

    def render(self) -> str:
        """One-paragraph human summary of the run."""
        lines = [
            f"bench run: suite {self.suite!r}, {len(self.results)} case(s) "
            f"across {len(self.areas)} area(s), {self.workers} worker(s), "
            f"{self.wall_seconds:.1f}s total, "
            f"{len(self.errors)} error(s)"
        ]
        for path in self.artifact_paths:
            lines.append(f"  wrote {path}")
        for record in self.errors:
            lines.append(
                f"  ERROR {record['benchmark']} [{record['case_id']}]: "
                f"{record['error']}"
            )
        return "\n".join(lines)


def run_suite(
    suite: str = "smoke",
    *,
    areas: Optional[Sequence[str]] = None,
    out_dir: Optional[Union[str, Path]] = None,
    seed: int = 0,
    workers: int = 1,
    repeats: Optional[int] = None,
) -> BenchRunReport:
    """Run every registered benchmark of ``suite`` and write area artifacts.

    ``areas`` restricts the run; ``repeats`` overrides the suite's repeat
    policy; ``out_dir=None`` writes to :data:`DEFAULT_RESULTS_DIR` and
    ``out_dir=""``/``"-"`` skips writing entirely (measure-only).
    """
    specs = registry.specs_for(suite, list(areas) if areas is not None else None)
    effective_repeats = repeats if repeats is not None else SUITE_REPEATS[suite]
    if effective_repeats < 1:
        raise ConfigurationError(
            f"repeats must be >= 1, got {effective_repeats}"
        )
    units = [
        (
            spec.name,
            case,
            suite,
            effective_repeats,
            derive_seed(seed, spec.name, registry.case_id(case)),
        )
        for spec in specs
        for case in spec.cases_for(suite)
    ]
    t0 = time.perf_counter()
    results = list(
        ordered_parallel_map(execute_benchmark, units, workers=workers)
    )
    wall = time.perf_counter() - t0
    report = BenchRunReport(
        suite=suite, seed=seed, workers=workers, wall_seconds=wall,
        results=results,
    )
    if out_dir in ("", "-"):
        return report
    directory = Path(out_dir) if out_dir is not None else DEFAULT_RESULTS_DIR
    environment = environment_fingerprint()
    by_area: Dict[str, List[Dict[str, Any]]] = {}
    for record in results:
        by_area.setdefault(record["area"], []).append(record)
    for area in sorted(by_area):
        artifact = {
            "schema": SCHEMA_VERSION,
            "area": area,
            "suite": suite,
            "master_seed": seed,
            "environment": environment,
            "results": by_area[area],
        }
        report.artifact_paths.append(write_artifact(directory, artifact))
    return report

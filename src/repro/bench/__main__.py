"""``python -m repro.bench`` — the benchmark harness without the console
script, so a plain install (or a checkout on ``sys.path``) can run, gate
and report benchmarks with no extra setup."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

"""repro.bench — the unified, registry-driven performance harness.

Replaces the free-form output of the historical ``benchmarks/bench_*.py``
scripts with one subsystem every layer reports through:

* :mod:`repro.bench.registry` — ``@benchmark``-registered specs with
  declarative per-suite size grids (``smoke``/``default``/``full``);
* :mod:`repro.bench.specs` — the registered suite, one area per
  historical script (phase1, algorithm1, tester, engines, pruning,
  through_edge, primitives, campaign, ...), each body keeping its
  script's correctness assertions;
* :mod:`repro.bench.runner` — seeding + process-parallel execution
  reused from the campaign runner, a per-suite repeat policy, and
  artifact assembly;
* :mod:`repro.bench.environment` — the measuring-host fingerprint
  stamped into every artifact;
* :mod:`repro.bench.artifacts` — versioned, schema-validated
  ``BENCH_<area>.json`` readers/writers;
* :mod:`repro.bench.compare` — baseline pairing with noise-aware
  regression detection (the CI perf gate).

Entry points: ``repro bench run|compare|report|list`` and
``python -m repro.bench ...`` (same subcommands).

Quickstart::

    from repro.bench import run_suite, compare_dirs

    report = run_suite("smoke", out_dir="fresh-results")
    assert report.ok, report.render()
    gate = compare_dirs("benchmarks/results", "fresh-results", threshold=4.0)
    assert gate.ok, gate.render()
"""

from . import registry
from .artifacts import (
    SCHEMA_VERSION,
    ArtifactError,
    artifact_path,
    list_artifacts,
    read_artifact,
    validate_artifact,
    write_artifact,
)
from .compare import (
    ComparisonFinding,
    ComparisonReport,
    compare_artifacts,
    compare_dirs,
)
from .environment import environment_fingerprint
from .registry import BenchmarkSpec, SUITE_NAMES, benchmark
from .runner import BenchRunReport, SUITE_REPEATS, run_suite

__all__ = [
    "SCHEMA_VERSION",
    "SUITE_NAMES",
    "SUITE_REPEATS",
    "ArtifactError",
    "BenchRunReport",
    "BenchmarkSpec",
    "ComparisonFinding",
    "ComparisonReport",
    "artifact_path",
    "benchmark",
    "compare_artifacts",
    "compare_dirs",
    "environment_fingerprint",
    "list_artifacts",
    "read_artifact",
    "registry",
    "run_suite",
    "validate_artifact",
    "write_artifact",
]

"""Versioned, schema-validated ``BENCH_<area>.json`` artifacts.

One artifact per benchmark *area* (``BENCH_phase1.json``,
``BENCH_engines.json``, ...): a schema tag, the suite that produced it,
the environment fingerprint, and one result record per (benchmark,
case).  Artifacts are written with sorted keys and a stable indent so
committed baselines diff cleanly, and every read path re-validates the
structure — a hand-edited or truncated baseline fails loudly instead of
silently gating nothing.

The schema is deliberately hand-rolled (the container ships no
``jsonschema``): :func:`validate_artifact` checks the same constraints a
draft-07 schema would, with error messages that name the offending path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactError",
    "artifact_path",
    "list_artifacts",
    "read_artifact",
    "validate_artifact",
    "validate_result",
    "write_artifact",
]

#: Schema tag embedded in (and required of) every artifact.  Bump when a
#: field changes meaning; readers reject unknown versions.
SCHEMA_VERSION = "repro-bench/1"

#: Result statuses a record may carry.
_STATUSES = ("ok", "error")


class ArtifactError(ReproError):
    """Raised for malformed, mis-versioned or unreadable artifacts."""


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ArtifactError(f"{where}: {message}")


def validate_result(record: Dict[str, Any], where: str = "result") -> None:
    """Validate one benchmark result record (raises :class:`ArtifactError`)."""
    _require(isinstance(record, dict), where, "record must be an object")
    for key, typ in (
        ("benchmark", str),
        ("area", str),
        ("case_id", str),
        ("case", dict),
        ("suite", str),
        ("seed", int),
        ("status", str),
        ("metrics", dict),
    ):
        _require(key in record, where, f"missing key {key!r}")
        _require(
            isinstance(record[key], typ),
            where,
            f"{key!r} must be {typ.__name__}, got {type(record[key]).__name__}",
        )
    _require(
        record["status"] in _STATUSES,
        where,
        f"status must be one of {_STATUSES}, got {record['status']!r}",
    )
    if record["status"] == "ok":
        walls = record.get("wall_seconds")
        _require(
            isinstance(walls, list) and len(walls) >= 1,
            where,
            "'wall_seconds' must be a non-empty list for ok records",
        )
        _require(
            all(isinstance(w, (int, float)) and w >= 0 for w in walls),
            where,
            "'wall_seconds' entries must be non-negative numbers",
        )
        for key in ("wall_min", "wall_mean"):
            _require(
                isinstance(record.get(key), (int, float)),
                where,
                f"{key!r} must be a number for ok records",
            )
        for key, value in record["metrics"].items():
            _require(
                value is None or isinstance(value, (bool, int, float, str)),
                where,
                f"metric {key!r} must be a JSON scalar",
            )
    else:
        _require(
            isinstance(record.get("error"), str) and record["error"],
            where,
            "error records must carry a non-empty 'error' string",
        )


def validate_artifact(artifact: Dict[str, Any], where: str = "artifact") -> None:
    """Validate a whole area artifact (raises :class:`ArtifactError`)."""
    _require(isinstance(artifact, dict), where, "artifact must be an object")
    _require(
        artifact.get("schema") == SCHEMA_VERSION,
        where,
        f"schema must be {SCHEMA_VERSION!r}, got {artifact.get('schema')!r}",
    )
    for key, typ in (("area", str), ("suite", str), ("environment", dict),
                     ("results", list)):
        _require(key in artifact, where, f"missing key {key!r}")
        _require(
            isinstance(artifact[key], typ),
            where,
            f"{key!r} must be {typ.__name__}, got {type(artifact[key]).__name__}",
        )
    _require(len(artifact["results"]) >= 1, where, "'results' must be non-empty")
    seen = set()
    for idx, record in enumerate(artifact["results"]):
        slot = f"{where}.results[{idx}]"
        validate_result(record, slot)
        _require(
            record["area"] == artifact["area"],
            slot,
            f"area {record['area']!r} does not match artifact "
            f"area {artifact['area']!r}",
        )
        key = (record["benchmark"], record["case_id"])
        _require(key not in seen, slot, f"duplicate result for {key}")
        seen.add(key)


def artifact_path(directory: Union[str, Path], area: str) -> Path:
    """The canonical ``BENCH_<area>.json`` path inside ``directory``."""
    return Path(directory) / f"BENCH_{area}.json"


def write_artifact(directory: Union[str, Path], artifact: Dict[str, Any]) -> Path:
    """Validate and write one area artifact; returns the written path."""
    validate_artifact(artifact)
    path = artifact_path(directory, artifact["area"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def read_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate one artifact file."""
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no benchmark artifact at {path}")
    try:
        artifact = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: invalid JSON ({exc})") from None
    validate_artifact(artifact, where=str(path))
    return artifact


def list_artifacts(
    directory: Union[str, Path], areas: Optional[List[str]] = None
) -> List[Path]:
    """All ``BENCH_*.json`` paths in ``directory`` (optionally filtered).

    Sorted by area name so reports and comparisons are order-stable.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ArtifactError(f"no benchmark artifact directory at {directory}")
    paths = sorted(directory.glob("BENCH_*.json"))
    if areas is not None:
        wanted = {f"BENCH_{area}.json" for area in areas}
        paths = [p for p in paths if p.name in wanted]
    return paths

"""Baseline comparison and noise-aware regression detection.

Fresh results pair with baseline results by ``(benchmark, case_id)``;
three kinds of finding come out of a pairing:

* **regression** — fresh best-of-repeats wall time exceeds the baseline
  by more than ``threshold``x *and* by more than ``min_wall`` seconds.
  The two-part test is what makes the gate noise-aware: microsecond
  benchmarks jitter by large ratios, and long benchmarks jitter by large
  absolute amounts, but CI noise rarely does both at once.
* **metric drift** — an integer-valued metric (round counts, audited
  message bits, packing sizes: quantities the protocol determines
  exactly given the derived seed) differs at all.  Float metrics are
  treated as informational (wall-derived) and never gate.
* **error** — a fresh record whose status is not ``ok`` while the
  baseline's was.

Missing pairings are findings too: a benchmark present in the baseline
but absent from the fresh run means the gate silently shrank, so it
fails the comparison; fresh-only benchmarks are reported but pass (the
baseline is regenerated in the same change that adds a benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..analysis.tables import Table
from .artifacts import list_artifacts, read_artifact

__all__ = [
    "DEFAULT_MIN_WALL",
    "DEFAULT_THRESHOLD",
    "ComparisonFinding",
    "ComparisonReport",
    "compare_artifacts",
    "compare_dirs",
    "comparison_table",
]

#: Default slowdown ratio that flags a regression (1.5 = 50% slower).
DEFAULT_THRESHOLD = 1.5

#: Default absolute floor (seconds) below which ratio excursions are noise.
DEFAULT_MIN_WALL = 0.01


@dataclass(frozen=True)
class ComparisonFinding:
    """One judged pairing (or failed pairing) of baseline vs fresh."""

    kind: str  # "ok" | "regression" | "improvement" | "metric-drift"
    #         | "missing" | "added" | "error"
    benchmark: str
    case_id: str
    base_wall: Optional[float] = None
    fresh_wall: Optional[float] = None
    detail: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """fresh/base wall ratio when both sides were measured."""
        if self.base_wall and self.fresh_wall is not None:
            return self.fresh_wall / self.base_wall
        return None

    def render(self) -> str:
        """One human-readable line for CLI output."""
        parts = [f"{self.kind:12s} {self.benchmark} [{self.case_id}]"]
        if self.ratio is not None:
            parts.append(
                f"{self.base_wall * 1e3:.2f}ms -> {self.fresh_wall * 1e3:.2f}ms "
                f"({self.ratio:.2f}x)"
            )
        if self.detail:
            parts.append(self.detail)
        return "  ".join(parts)


#: Finding kinds that fail a comparison.
_FAILING = ("regression", "metric-drift", "missing", "error")


@dataclass
class ComparisonReport:
    """Every finding from comparing one baseline set against one fresh set."""

    threshold: float
    min_wall: float
    findings: List[ComparisonFinding] = field(default_factory=list)
    #: First compared pair's fingerprints (reference only; drift is
    #: accumulated across *every* area pair in ``environment_drift``).
    base_environment: Dict[str, Any] = field(default_factory=dict)
    fresh_environment: Dict[str, Any] = field(default_factory=dict)
    environment_drift: List[str] = field(default_factory=list)

    def by_kind(self, kind: str) -> List[ComparisonFinding]:
        """All findings of one kind."""
        return [f for f in self.findings if f.kind == kind]

    @property
    def ok(self) -> bool:
        """Whether the fresh run passes the gate."""
        return not any(f.kind in _FAILING for f in self.findings)

    @property
    def compared(self) -> int:
        """Number of (benchmark, case) pairings that were actually judged."""
        return sum(
            1 for f in self.findings if f.kind not in ("missing", "added")
        )

    def render(self) -> str:
        """Multi-line CLI summary: verdict, counts, then failing findings."""
        counts = {}
        for f in self.findings:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        summary = ", ".join(f"{n} {kind}" for kind, n in sorted(counts.items()))
        lines = [
            f"bench compare: {'PASS' if self.ok else 'FAIL'} "
            f"({self.compared} pairings judged; {summary}; "
            f"threshold {self.threshold:g}x, floor {self.min_wall * 1e3:g}ms)"
        ]
        if self.environment_drift:
            lines.append(
                "environment drift (wall-clock findings may be incomparable): "
                + "; ".join(self.environment_drift)
            )
        for finding in self.findings:
            if finding.kind in _FAILING or finding.kind == "improvement":
                lines.append("  " + finding.render())
        return "\n".join(lines)


def _is_exact_metric(value: Any) -> bool:
    # bools and ints are protocol-determined facts; floats are timings or
    # rates and jitter between hosts.
    return isinstance(value, bool) or isinstance(value, int)


def _judge_pair(
    base: Dict[str, Any],
    fresh: Dict[str, Any],
    threshold: float,
    min_wall: float,
    exact_metrics: bool,
) -> ComparisonFinding:
    name, cid = base["benchmark"], base["case_id"]
    if fresh["status"] != "ok":
        return ComparisonFinding(
            "error", name, cid, detail=fresh.get("error", "fresh run errored")
        )
    if base["status"] != "ok":
        # A baseline error record gates nothing; a fresh ok run heals it.
        return ComparisonFinding(
            "ok", name, cid, detail="baseline record was an error; now ok"
        )
    if exact_metrics:
        drifted = [
            f"{key}: {base['metrics'][key]!r} -> {fresh['metrics'][key]!r}"
            for key in sorted(set(base["metrics"]) & set(fresh["metrics"]))
            if _is_exact_metric(base["metrics"][key])
            and _is_exact_metric(fresh["metrics"][key])
            and base["metrics"][key] != fresh["metrics"][key]
        ]
        # A gated metric disappearing is the metric-level version of a
        # missing benchmark: the gate silently shrank.  Fresh-only
        # metrics are fine (a new metric gates once it is baselined).
        drifted.extend(
            f"{key}: {base['metrics'][key]!r} -> (removed)"
            for key in sorted(set(base["metrics"]) - set(fresh["metrics"]))
            if _is_exact_metric(base["metrics"][key])
        )
        if drifted:
            return ComparisonFinding(
                "metric-drift", name, cid, detail="; ".join(drifted)
            )
    base_wall, fresh_wall = base["wall_min"], fresh["wall_min"]
    if (fresh_wall > threshold * base_wall
            and fresh_wall - base_wall > min_wall):
        return ComparisonFinding("regression", name, cid, base_wall, fresh_wall)
    if (base_wall > threshold * fresh_wall
            and base_wall - fresh_wall > min_wall):
        return ComparisonFinding(
            "improvement", name, cid, base_wall, fresh_wall,
            detail="consider refreshing the committed baseline",
        )
    return ComparisonFinding("ok", name, cid, base_wall, fresh_wall)


def compare_artifacts(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_wall: float = DEFAULT_MIN_WALL,
    exact_metrics: bool = True,
    report: Optional[ComparisonReport] = None,
) -> ComparisonReport:
    """Compare one fresh area artifact against its baseline artifact.

    Pass ``report`` to accumulate findings across areas (as
    :func:`compare_dirs` does); otherwise a fresh report is returned.
    """
    if report is None:
        report = ComparisonReport(threshold=threshold, min_wall=min_wall)
    base_env = baseline.get("environment", {})
    fresh_env = fresh.get("environment", {})
    if not report.base_environment:
        report.base_environment = base_env
        report.fresh_environment = fresh_env
    # Accumulated (not overwritten) per area pair: a fresh dir stitched
    # together from runs on different hosts still surfaces every drift.
    for key in ("python", "numpy", "git_sha", "cpu_count", "platform"):
        if base_env.get(key) != fresh_env.get(key):
            note = f"{key}: {base_env.get(key)} -> {fresh_env.get(key)}"
            if note not in report.environment_drift:
                report.environment_drift.append(note)
    base_by_key = {
        (r["benchmark"], r["case_id"]): r for r in baseline["results"]
    }
    fresh_by_key = {
        (r["benchmark"], r["case_id"]): r for r in fresh["results"]
    }
    for key in sorted(base_by_key):
        name, cid = key
        if key not in fresh_by_key:
            report.findings.append(
                ComparisonFinding(
                    "missing", name, cid,
                    detail="present in baseline, absent from fresh run",
                )
            )
            continue
        report.findings.append(
            _judge_pair(
                base_by_key[key], fresh_by_key[key],
                threshold, min_wall, exact_metrics,
            )
        )
    for key in sorted(set(fresh_by_key) - set(base_by_key)):
        report.findings.append(
            ComparisonFinding(
                "added", key[0], key[1],
                detail="no baseline yet; commit one to start gating it",
            )
        )
    return report


def compare_dirs(
    baseline_dir: Union[str, Path],
    fresh_dir: Union[str, Path],
    *,
    areas: Optional[Sequence[str]] = None,
    threshold: float = DEFAULT_THRESHOLD,
    min_wall: float = DEFAULT_MIN_WALL,
    exact_metrics: bool = True,
) -> ComparisonReport:
    """Compare every fresh ``BENCH_*.json`` against the baseline directory.

    Areas are taken from the *baseline* (the committed contract); a fresh
    area with no baseline counterpart surfaces as ``added`` findings, and
    a baseline area with no fresh artifact fails as ``missing``.
    """
    report = ComparisonReport(threshold=threshold, min_wall=min_wall)
    base_paths = {
        p.name: p
        for p in list_artifacts(baseline_dir, list(areas) if areas else None)
    }
    fresh_paths = {
        p.name: p for p in list_artifacts(fresh_dir, list(areas) if areas else None)
    }
    for name in sorted(base_paths):
        baseline = read_artifact(base_paths[name])
        if name not in fresh_paths:
            for record in baseline["results"]:
                report.findings.append(
                    ComparisonFinding(
                        "missing", record["benchmark"], record["case_id"],
                        detail=f"fresh run produced no {name}",
                    )
                )
            continue
        compare_artifacts(
            baseline, read_artifact(fresh_paths[name]),
            threshold=threshold, min_wall=min_wall,
            exact_metrics=exact_metrics, report=report,
        )
    for name in sorted(set(fresh_paths) - set(base_paths)):
        for record in read_artifact(fresh_paths[name])["results"]:
            report.findings.append(
                ComparisonFinding(
                    "added", record["benchmark"], record["case_id"],
                    detail=f"no baseline {name} committed yet",
                )
            )
    return report


def comparison_table(report: ComparisonReport) -> Table:
    """All judged pairings as a render-ready table (for ``bench report``)."""
    table = Table(
        ["benchmark", "case", "base ms", "fresh ms", "ratio", "verdict"],
        title="bench compare - baseline vs fresh (wall_min)",
    )
    for f in report.findings:
        table.add_row(
            f.benchmark,
            f.case_id,
            "-" if f.base_wall is None else f"{f.base_wall * 1e3:.2f}",
            "-" if f.fresh_wall is None else f"{f.fresh_wall * 1e3:.2f}",
            "-" if f.ratio is None else f"{f.ratio:.2f}",
            f.kind,
        )
    return table

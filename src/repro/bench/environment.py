"""Environment fingerprint attached to every benchmark artifact.

Wall-clock numbers are only comparable within one environment, so every
``BENCH_<area>.json`` records where it was measured: interpreter, numpy,
platform/CPU, and the git commit of the working tree (when the package
runs from a checkout).  Baseline comparison prints both fingerprints so
a cross-machine "regression" can be recognised for what it is.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional

from .._version import __version__

__all__ = ["environment_fingerprint", "git_sha"]


def git_sha() -> Optional[str]:
    """The HEAD commit of the checkout this package runs from, if any.

    Returns ``None`` for installed (non-checkout) packages, missing git,
    or any other failure — the fingerprint is best-effort by design.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a core dependency
        return None
    return numpy.__version__


def environment_fingerprint() -> Dict[str, Any]:
    """A flat, JSON-safe description of the measuring environment."""
    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": _numpy_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }

"""Benchmark registry: ``@benchmark``-decorated specs organised by area.

A :class:`BenchmarkSpec` names one measurable operation (its ``area``
groups related specs into one ``BENCH_<area>.json`` artifact) together
with a declarative *size grid*: per-suite lists of case dictionaries.
The three named suites nest by intent —

* ``smoke``   — seconds-sized cases, run by CI on every push;
* ``default`` — the figures quoted in docs, minutes on a laptop;
* ``full``    — the idle-host grid behind committed tables.

A spec only has to declare the suites where its grid actually changes:
:meth:`BenchmarkSpec.cases_for` falls back ``full -> default -> smoke``,
so a spec declared with only ``smoke`` cases runs those cases in every
suite.

Registration happens at import time of :mod:`repro.bench.specs`; call
:func:`load_default_specs` before resolving names so the registry is
populated regardless of which entry point (CLI, shim, test) got here
first.
"""

from __future__ import annotations

import hashlib
import importlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..runner.runtable import canonical_json

__all__ = [
    "SUITE_NAMES",
    "BenchmarkSpec",
    "benchmark",
    "case_id",
    "clear",
    "get",
    "areas",
    "names",
    "load_default_specs",
    "specs_for",
]

#: The named suites, smallest first; later suites fall back to earlier
#: ones when a spec does not declare them.
SUITE_NAMES: Tuple[str, ...] = ("smoke", "default", "full")

#: A benchmark body: takes one case dict and a derived seed, runs the
#: workload once (asserting its correctness claims), and returns a flat
#: metrics dict.  The runner supplies the timing around the call.
BenchFunc = Callable[[Dict[str, Any], int], Dict[str, Any]]


def case_id(case: Mapping[str, Any]) -> str:
    """Stable short id of a case dict (content hash of its canonical JSON).

    Baseline comparison matches fresh results to baseline results by
    ``(benchmark, case_id)``, so renaming a parameter or changing a value
    deliberately severs the pairing instead of comparing unlike runs.
    """
    digest = hashlib.sha256(canonical_json(dict(case)).encode()).hexdigest()
    return digest[:12]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered benchmark: an area-scoped name, a body, a size grid."""

    name: str
    area: str
    func: BenchFunc
    summary: str
    suites: Mapping[str, Tuple[Dict[str, Any], ...]] = field(default_factory=dict)

    def cases_for(self, suite: str) -> Tuple[Dict[str, Any], ...]:
        """The case grid for ``suite``, falling back to smaller suites."""
        if suite not in SUITE_NAMES:
            raise ConfigurationError(
                f"unknown suite {suite!r}; choose from {', '.join(SUITE_NAMES)}"
            )
        for candidate in SUITE_NAMES[SUITE_NAMES.index(suite)::-1]:
            if candidate in self.suites:
                return self.suites[candidate]
        raise ConfigurationError(
            f"benchmark {self.name!r} declares no cases for any suite"
        )


_REGISTRY: Dict[str, BenchmarkSpec] = {}
_DEFAULTS_LOADED = False


def benchmark(
    area: str,
    *,
    smoke: Optional[Sequence[Dict[str, Any]]] = None,
    default: Optional[Sequence[Dict[str, Any]]] = None,
    full: Optional[Sequence[Dict[str, Any]]] = None,
    name: Optional[str] = None,
) -> Callable[[BenchFunc], BenchFunc]:
    """Register the decorated function as a benchmark in ``area``.

    The registered name is ``<area>.<function name>`` unless ``name``
    overrides the second component.  At least the ``smoke`` grid must be
    supplied (CI runs it; every larger suite may fall back to it).
    """
    grids = {"smoke": smoke, "default": default, "full": full}

    def register(func: BenchFunc) -> BenchFunc:
        bench_name = f"{area}.{name or func.__name__}"
        if smoke is None:
            raise ConfigurationError(
                f"benchmark {bench_name!r} must declare a smoke grid"
            )
        if bench_name in _REGISTRY:
            raise ConfigurationError(
                f"duplicate benchmark registration: {bench_name!r}"
            )
        _REGISTRY[bench_name] = BenchmarkSpec(
            name=bench_name,
            area=area,
            func=func,
            summary=(func.__doc__ or "").strip().split("\n")[0],
            suites={
                suite: tuple(dict(c) for c in cases)
                for suite, cases in grids.items()
                if cases is not None
            },
        )
        return func

    return register


def load_default_specs() -> None:
    """Import :mod:`repro.bench.specs` once, populating the registry."""
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        importlib.import_module(".specs", __package__)
        _DEFAULTS_LOADED = True


def clear() -> None:
    """Empty the registry (test isolation only).

    Also drops the cached :mod:`repro.bench.specs` module, so the next
    :func:`load_default_specs` re-executes its ``@benchmark`` decorators
    instead of finding an already-imported (and therefore no-op) module.
    """
    global _DEFAULTS_LOADED
    _REGISTRY.clear()
    _DEFAULTS_LOADED = False
    sys.modules.pop(f"{__package__}.specs", None)


def get(name: str) -> BenchmarkSpec:
    """Look up one spec by its registered ``area.name``."""
    load_default_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def names() -> List[str]:
    """All registered benchmark names, sorted."""
    load_default_specs()
    return sorted(_REGISTRY)


def areas() -> List[str]:
    """All areas with at least one registered benchmark, sorted."""
    load_default_specs()
    return sorted({spec.area for spec in _REGISTRY.values()})


def specs_for(
    suite: str, areas_filter: Optional[Sequence[str]] = None
) -> List[BenchmarkSpec]:
    """Specs selected by ``areas_filter`` (all areas when ``None``).

    ``suite`` is validated eagerly so a typo fails before any work runs.
    """
    load_default_specs()
    if suite not in SUITE_NAMES:
        raise ConfigurationError(
            f"unknown suite {suite!r}; choose from {', '.join(SUITE_NAMES)}"
        )
    known = areas()
    if areas_filter is not None:
        unknown = sorted(set(areas_filter) - set(known))
        if unknown:
            raise ConfigurationError(
                f"unknown benchmark area(s) {', '.join(unknown)}; "
                f"choose from {', '.join(known)}"
            )
    selected = set(known if areas_filter is None else areas_filter)
    return [
        _REGISTRY[name]
        for name in sorted(_REGISTRY)
        if _REGISTRY[name].area in selected
    ]

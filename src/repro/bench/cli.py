"""The ``bench`` command group: run / compare / report / list.

Registered under the main ``repro`` parser by
:func:`add_bench_subparser`, and exposed standalone through
``python -m repro.bench`` (see :mod:`repro.bench.__main__`) so any
install — or a checkout with ``src/`` on ``sys.path`` — can drive the
harness without the console script.  (From a plain uninstalled checkout,
the self-bootstrapping ``benchmarks/bench_*.py`` shims are the no-setup
entry point.)

Exit codes: ``run`` is nonzero when any benchmark body failed its
checks; ``compare`` is nonzero when the regression gate fails — that
pair is what CI's ``perf-smoke`` job is built on.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..analysis.tables import Table
from . import registry
from .artifacts import list_artifacts, read_artifact
from .compare import (
    DEFAULT_MIN_WALL,
    DEFAULT_THRESHOLD,
    compare_dirs,
    comparison_table,
)
from .runner import DEFAULT_RESULTS_DIR, run_suite

__all__ = [
    "add_bench_subparser",
    "build_parser",
    "format_metrics",
    "format_record_line",
    "main",
]


def _csv(text: str) -> List[str]:
    return [item for item in text.split(",") if item]


def format_metrics(metrics: dict) -> str:
    """Render a metrics dict as ``k=v`` pairs (floats to 3 significant
    digits) — the one formatting rule shared by reports and shims."""
    return ", ".join(
        f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
        for k, v in sorted(metrics.items())
    )


def format_record_line(record: dict) -> str:
    """One plain-text line for a result record (shim direct execution)."""
    status = record["status"]
    wall = ("       -" if status != "ok"
            else f"{record['wall_min'] * 1e3:8.2f}ms")
    line = (f"{record['benchmark']:32s} {status:5s} {wall}  "
            f"{format_metrics(record['metrics']) or '-'}")
    if status != "ok":
        line += f"\n  {record['error']}"
    return line


def cmd_run(args: argparse.Namespace) -> int:
    """``bench run``: execute a suite and write BENCH_*.json artifacts."""
    report = run_suite(
        args.suite,
        areas=args.areas,
        out_dir=args.out,
        seed=args.seed,
        workers=args.workers,
        repeats=args.repeats,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    """``bench compare``: gate fresh artifacts against a baseline."""
    report = compare_dirs(
        args.baseline,
        args.fresh,
        areas=args.areas,
        threshold=args.threshold,
        min_wall=args.min_wall,
        exact_metrics=not args.no_exact_metrics,
    )
    if getattr(args, "table", False):
        print(comparison_table(report).render())
        print()
    print(report.render())
    return 0 if report.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    """``bench report``: render artifacts from a results directory."""
    paths = list_artifacts(args.dir, args.areas)
    if not paths:
        raise SystemExit(f"no BENCH_*.json artifacts under {args.dir!r}")
    for path in paths:
        artifact = read_artifact(path)
        env = artifact["environment"]
        table = Table(
            ["benchmark", "case", "status", "wall_min ms", "wall_mean ms",
             "metrics"],
            title=(
                f"BENCH_{artifact['area']} - suite {artifact['suite']!r}, "
                f"python {env.get('python')}, git "
                f"{(env.get('git_sha') or 'unknown')[:12]}"
            ),
        )
        for record in artifact["results"]:
            metrics = format_metrics(record["metrics"])
            table.add_row(
                record["benchmark"],
                record["case_id"],
                record["status"],
                "-" if record["status"] != "ok"
                else f"{record['wall_min'] * 1e3:.2f}",
                "-" if record["status"] != "ok"
                else f"{record['wall_mean'] * 1e3:.2f}",
                metrics or "-",
            )
        print(table.render())
        print()
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """``bench list``: show registered benchmarks and their case grids."""
    table = Table(
        ["benchmark", "area", "suite cases (smoke/default/full)", "summary"],
        title="registered benchmarks",
    )
    for name in registry.names():
        spec = registry.get(name)
        counts = "/".join(
            str(len(spec.cases_for(suite))) for suite in registry.SUITE_NAMES
        )
        table.add_row(name, spec.area, counts, spec.summary)
    print(table.render())
    print(f"{len(registry.names())} benchmarks across "
          f"{len(registry.areas())} areas: {', '.join(registry.areas())}")
    return 0


def add_bench_subparser(
    sub: argparse._SubParsersAction,
) -> argparse.ArgumentParser:
    """Attach the ``bench`` command group to a subparsers object."""
    p_bench = sub.add_parser(
        "bench",
        help="unified perf harness (run/compare/report/list BENCH_*.json)",
    )
    bench_sub = p_bench.add_subparsers(dest="action", required=True)

    p_run = bench_sub.add_parser(
        "run", help="run a benchmark suite and write BENCH_<area>.json"
    )
    p_run.add_argument("--suite", default="smoke",
                       choices=list(registry.SUITE_NAMES),
                       help="size grid to run (default: smoke)")
    p_run.add_argument("--areas", type=_csv, default=None, metavar="A1,A2,...",
                       help="restrict to these areas (default: all)")
    p_run.add_argument("--out", default=None,
                       help=f"artifact directory (default: "
                       f"{DEFAULT_RESULTS_DIR}; '-' to skip writing)")
    p_run.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes (1 = serial)")
    p_run.add_argument("--seed", type=int, default=0,
                       help="master seed for derived per-case seeds")
    p_run.add_argument("--repeats", type=int, default=None,
                       help="override the suite's repeat policy")
    p_run.set_defaults(func=cmd_run)

    p_cmp = bench_sub.add_parser(
        "compare", help="gate fresh artifacts against a committed baseline"
    )
    p_cmp.add_argument("--baseline", default=str(DEFAULT_RESULTS_DIR),
                       help=f"baseline artifact directory (default: "
                       f"{DEFAULT_RESULTS_DIR})")
    p_cmp.add_argument("--fresh", required=True,
                       help="directory of freshly measured artifacts")
    p_cmp.add_argument("--areas", type=_csv, default=None, metavar="A1,A2,...")
    p_cmp.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="slowdown ratio that flags a regression "
                       f"(default: {DEFAULT_THRESHOLD})")
    p_cmp.add_argument("--min-wall", type=float, default=DEFAULT_MIN_WALL,
                       help="absolute seconds floor below which ratio "
                       f"excursions are noise (default: {DEFAULT_MIN_WALL})")
    p_cmp.add_argument("--no-exact-metrics", action="store_true",
                       help="skip exact comparison of integer metrics "
                       "(round counts, audited bits)")
    p_cmp.add_argument("--table", action="store_true",
                       help="also print the full pairing table")
    p_cmp.set_defaults(func=cmd_compare)

    p_rep = bench_sub.add_parser(
        "report", help="render BENCH_*.json artifacts as tables"
    )
    p_rep.add_argument("--dir", default=str(DEFAULT_RESULTS_DIR),
                       help=f"artifact directory (default: "
                       f"{DEFAULT_RESULTS_DIR})")
    p_rep.add_argument("--areas", type=_csv, default=None, metavar="A1,A2,...")
    p_rep.set_defaults(func=cmd_report)

    p_list = bench_sub.add_parser(
        "list", help="show registered benchmarks, areas and case grids"
    )
    p_list.set_defaults(func=cmd_list)
    return p_bench


def build_parser() -> argparse.ArgumentParser:
    """Standalone parser for ``python -m repro.bench`` (same command group
    the main ``repro`` CLI mounts, reached without the ``bench`` token)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Unified perf harness: registry-driven benchmarks with "
        "machine-readable BENCH_<area>.json artifacts and baseline gating.",
    )
    add_bench_subparser(parser.add_subparsers(dest="command", required=True))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.bench``; returns the exit code."""
    import sys

    from ..errors import ReproError

    parser = build_parser()
    args = parser.parse_args(
        ["bench"] + (list(argv) if argv is not None else sys.argv[1:])
    )
    try:
        return args.func(args)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from exc

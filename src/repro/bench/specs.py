"""The registered benchmark suite: one area per historical ``bench_*.py``.

Importing this module populates :mod:`repro.bench.registry`.  Every
benchmark body keeps the correctness assertions of the ad-hoc script it
subsumes (Lemma bounds, verdict parity, oracle agreement, ...), so a
benchmark run doubles as a claims check: a failed assertion surfaces as
an ``error`` record and fails the run.

Metric conventions (enforced by :mod:`repro.bench.compare`):

* **integers / booleans** — protocol-determined facts (round counts,
  audited bits, packing sizes).  Deterministic given the derived seed;
  baseline comparison demands exact equality.
* **floats** — wall-derived or statistical figures (speedups, rows/s,
  empirical rates).  Recorded for trend plots, never gated.

Area map (script -> area): phase1 -> ``phase1``, round_complexity ->
``rounds``, message_bound -> ``algorithm1``, detection -> ``tester``,
engines -> ``engines``, pruning_vs_naive -> ``pruning``, through_edge ->
``through_edge``, primitives -> ``primitives``, campaign -> ``campaign``,
representative -> ``combinatorics``, scalability -> ``scalability``,
farness -> ``farness``, sweeps -> ``sweeps``, ablations -> ``ablations``.
The ``dynamic`` area (no historical script) measures the incremental
:class:`~repro.dynamic.monitor.CkMonitor` against naive per-step
re-detection; its shim is ``benchmarks/bench_dynamic.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Any, Dict

import numpy as np

from .registry import benchmark

# ---------------------------------------------------------------------------
# phase1 — rank drawing and Lemma 5 collision statistics
# ---------------------------------------------------------------------------


@benchmark(
    "phase1",
    smoke=[{"degree": 64, "m": 2048, "draws": 200}],
    full=[{"degree": 64, "m": 2048, "draws": 200},
          {"degree": 256, "m": 8192, "draws": 200}],
)
def rank_draw(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Per-node Phase-1 rank draws for a fixed-degree node."""
    from ..core import draw_ranks

    rng = np.random.default_rng(seed)
    neighbors = tuple(range(1, case["degree"] + 1))
    out = None
    for _ in range(case["draws"]):
        out = draw_ranks(0, neighbors, m=case["m"], rng=rng)
    assert out is not None and len(out) == case["degree"]
    return {"degree": case["degree"], "draws": case["draws"]}


@benchmark(
    "phase1",
    smoke=[{"ms": [4, 16], "trials": 300}],
    default=[{"ms": [4, 16, 64], "trials": 1000}],
    full=[{"ms": [4, 16, 64, 256], "trials": 2000}],
)
def collision_stats(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Lemma 5 rank-collision statistics (exact vs empirical)."""
    from ..analysis import run_phase1_statistics
    from ..core import lemma5_bound

    result = run_phase1_statistics(
        ms=tuple(case["ms"]), trials=case["trials"], seed=seed
    )
    for row in result.rows:
        assert row["exact"] >= lemma5_bound()
        assert row["empirical"] >= lemma5_bound()
        # Deterministic under the derived seed, so no flake risk even
        # at smoke trial counts.
        assert abs(row["empirical"] - row["exact"]) < 0.05
    return {
        "cells": len(result.rows),
        "min_empirical": float(min(r["empirical"] for r in result.rows)),
    }


# ---------------------------------------------------------------------------
# rounds — Theorem 1: round complexity constant in n, O(1/eps)
# ---------------------------------------------------------------------------


@benchmark(
    "rounds",
    smoke=[{"n": 64, "k": 5, "eps": 0.1}],
    default=[{"n": 256, "k": 5, "eps": 0.1}],
    full=[{"n": 1024, "k": 5, "eps": 0.1}],
)
def repetition(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One full protocol repetition on a planted ε-far instance."""
    from ..core import CkFreenessTester, rounds_per_repetition
    from ..graphs import planted_epsilon_far_graph

    g, _ = planted_epsilon_far_graph(case["n"], case["k"], case["eps"], seed=0)
    tester = CkFreenessTester(case["k"], case["eps"], repetitions=1)
    result = tester.run(g, seed=seed, keep_traces=True)
    rounds = result.traces[0].num_rounds
    assert rounds == rounds_per_repetition(case["k"])
    return {"n": g.n, "m": g.m, "rounds": rounds}


@benchmark(
    "rounds",
    smoke=[{"ns": [32, 64], "ks": [3, 5], "epsilons": [0.1, 0.4]}],
    default=[{"ns": [64, 256], "ks": [3, 5, 8], "epsilons": [0.1, 0.4]}],
)
def round_table(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """The T1 grid: total rounds constant in n, scaling as O(1/ε)."""
    from ..analysis import run_round_complexity
    from ..core import repetitions_needed

    result = run_round_complexity(
        ns=tuple(case["ns"]), ks=tuple(case["ks"]),
        epsilons=tuple(case["epsilons"]),
    )
    by_keps: Dict[Any, set] = {}
    for row in result.rows:
        by_keps.setdefault((row["k"], row["eps"]), set()).add(row["total"])
    assert all(len(v) == 1 for v in by_keps.values()), "rounds vary with n"
    assert repetitions_needed(0.1) >= 3 * repetitions_needed(0.4)
    return {"cells": len(result.rows)}


# ---------------------------------------------------------------------------
# algorithm1 — Lemma 3 message bound on the blowup stress instance
# ---------------------------------------------------------------------------


@benchmark(
    "algorithm1",
    smoke=[{"width": 6, "k": 6}],
    default=[{"width": 8, "k": 6}],
    full=[{"width": 8, "k": 8}],
)
def blowup_detect(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Algorithm 1 on the high-multiplicity blowup instance."""
    from ..core import detect_cycle_through_edge, lemma3_bound
    from ..graphs import blowup_graph

    g = blowup_graph(case["width"], case["k"])
    det = detect_cycle_through_edge(g, (0, 1), case["k"])
    assert det.detected
    for t, measured in enumerate(
        det.run.trace.max_sequences_by_round(), start=1
    ):
        assert measured <= lemma3_bound(case["k"], t)
    return {
        "n": g.n,
        "m": g.m,
        "rounds": det.run.trace.num_rounds,
        "max_sequences_per_message": det.run.trace.max_sequences_per_message,
        "max_message_bits": det.run.trace.max_message_bits,
    }


# ---------------------------------------------------------------------------
# tester — detection guarantees (1-sided acceptance, >= 2/3 rejection)
# ---------------------------------------------------------------------------


@benchmark(
    "tester",
    smoke=[{"n": 64, "k": 5, "eps": 0.1}],
    default=[{"n": 120, "k": 5, "eps": 0.1}],
)
def far_reject(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Complete tester run on an ε-far instance (must reject)."""
    from ..core import CkFreenessTester
    from ..graphs import planted_epsilon_far_graph

    g, _ = planted_epsilon_far_graph(case["n"], case["k"], case["eps"], seed=0)
    result = CkFreenessTester(case["k"], case["eps"]).run(g, seed=seed)
    assert result.rejected
    return {
        "n": g.n,
        "m": g.m,
        "repetitions_run": result.repetitions_run,
        "repetitions_planned": result.repetitions_planned,
    }


@benchmark(
    "tester",
    smoke=[{"n": 64, "k": 5, "eps": 0.1}],
    default=[{"n": 120, "k": 5, "eps": 0.1}],
)
def free_accept(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Complete (never stopping early) run on a Ck-free instance."""
    from ..core import CkFreenessTester
    from ..graphs import ck_free_graph

    g = ck_free_graph(case["n"], case["k"], seed=1)
    result = CkFreenessTester(case["k"], case["eps"]).run(g, seed=seed)
    assert result.accepted, "1-sidedness violated"
    return {"n": g.n, "m": g.m, "repetitions_run": result.repetitions_run}


# ---------------------------------------------------------------------------
# engines — reference vs batched-numpy backend
# ---------------------------------------------------------------------------


@benchmark(
    "engines",
    # min_speedup keeps the old bench_engines.py acceptance bar alive:
    # idle-host figures are ~7-9x, so even the smoke floor has headroom
    # on noisy CI containers; the full grid keeps the historical >= 3x
    # bar at n=2000.
    smoke=[{"n": 300, "p": 0.0134, "k": 5, "reps": 2, "min_speedup": 1.5}],
    default=[{"n": 1000, "p": 0.004, "k": 5, "reps": 3, "min_speedup": 2.5}],
    full=[{"n": 2000, "p": 0.002, "k": 5, "reps": 3, "min_speedup": 3.0}],
)
def tester_speedup(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Reference vs fast engine on one tester repetition (gnp, avg deg 4)."""
    from ..congest.engine import available_engines, create_engine
    from ..congest.network import Network
    from ..graphs.generators import erdos_renyi_gnp
    from ..testing import compare_engines_once

    g = erdos_renyi_gnp(case["n"], case["p"], seed=1)
    if "fast" not in available_engines():
        # numpy missing: record the fact instead of failing the area.
        # "skipped" is a string on purpose — strings never gate, so a
        # no-numpy fresh run still passes compare against a with-numpy
        # baseline (and vice versa: extra baseline-only float metrics
        # never gate either).
        return {"n": g.n, "m": g.m, "skipped": "numpy unavailable"}
    mismatches = compare_engines_once(g, case["k"], seed % (2**32))
    assert not mismatches, mismatches
    net = Network(g)
    times = {}
    for name in ("reference", "fast"):
        eng = create_engine(name, net)
        t0 = time.perf_counter()
        for rep in range(case["reps"]):
            eng.run_tester_repetition(case["k"], rep)
        times[name] = (time.perf_counter() - t0) / case["reps"]
    speedup = times["reference"] / max(times["fast"], 1e-12)
    assert speedup >= case["min_speedup"], (
        f"fast engine speedup {speedup:.2f}x fell below the "
        f"{case['min_speedup']}x floor"
    )
    return {
        "n": g.n,
        "m": g.m,
        "reference_ms_per_rep": times["reference"] * 1e3,
        "fast_ms_per_rep": times["fast"] * 1e3,
        "speedup": speedup,
    }


@benchmark(
    "engines",
    # Parity is the gate (the rejecting-vertex count is an integer and
    # must match the baseline exactly); the fast-vs-sharded walls are
    # floats for the trend record — on few-core runners the pool can be
    # slower than the single-process fast engine at these sizes.
    smoke=[{"n": 2000, "p": 0.002, "k": 5, "reps": 2, "shards": 2}],
    default=[{"n": 20000, "p": 0.0002, "k": 5, "reps": 2, "shards": 4}],
    full=[{"n": 50000, "p": 0.00008, "k": 5, "reps": 2, "shards": 4}],
)
def sharded_parity(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Fast vs sharded engine: full bit-parity, then per-rep walls."""
    from ..congest.engine import available_engines, create_engine
    from ..congest.network import Network
    from ..graphs.generators import erdos_renyi_gnp
    from ..testing import compare_engines_once

    if "sharded" not in available_engines():
        # Same convention as tester_speedup: strings never gate.
        return {"n": case["n"], "skipped": "sharded engine unavailable"}
    g = erdos_renyi_gnp(case["n"], case["p"], seed=1)
    spec = f"sharded:{case['shards']}"
    mismatches = compare_engines_once(
        g, case["k"], seed % (2**32), engines=("fast", spec)
    )
    assert not mismatches, mismatches
    net = Network(g)
    times = {}
    rejecting = {}
    for name in ("fast", spec):
        eng = create_engine(name, net)
        run = None
        t0 = time.perf_counter()
        for rep in range(case["reps"]):
            run = eng.run_tester_repetition(case["k"], rep)
        times[name] = (time.perf_counter() - t0) / case["reps"]
        rejecting[name] = sum(1 for o in run.outputs.values() if o.rejects)
        if hasattr(eng, "close"):
            eng.close()
    assert rejecting["fast"] == rejecting[spec], (
        f"verdict drift: {rejecting}"
    )
    return {
        "n": g.n,
        "m": g.m,
        "shards": case["shards"],
        "rejecting_vertices": rejecting["fast"],
        "fast_ms_per_rep": times["fast"] * 1e3,
        "sharded_ms_per_rep": times[spec] * 1e3,
        "sharded_over_fast": times[spec] / max(times["fast"], 1e-12),
    }


@benchmark(
    "engines",
    # Cross-repetition batching amortises the per-repetition kernel
    # overhead (rank draws, lexsorts, scatter setup) over chunk=C
    # repetitions; measured ~3x at chunk=8 on this container, so the
    # smoke floor leaves headroom for noisy CI.
    smoke=[{"n": 300, "k": 5, "reps": 12, "chunk": 8, "timing_reps": 3,
            "min_speedup": 1.5}],
    default=[{"n": 600, "k": 5, "reps": 16, "chunk": 16, "timing_reps": 3,
              "min_speedup": 2.0}],
    full=[{"n": 1200, "k": 5, "reps": 16, "chunk": 16, "timing_reps": 4,
           "min_speedup": 2.0}],
)
def batched_reps(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Chunked vs serial tester repetitions on the fast engine.

    Asserts full bit-parity first — verdicts, per-repetition reports and
    telemetry protocol counters must be identical for ``chunk=1`` and
    ``chunk=C`` — then gates on the min-of-N pair speedup of the batched
    kernels (gc paused, same workload back to back).
    """
    from ..congest.engine import available_engines
    from ..core import CkFreenessTester
    from ..graphs.generators import ck_free_graph
    from ..obs import Telemetry

    if "fast" not in available_engines():
        # Strings never gate: a no-numpy fresh run still compares clean.
        return {"n": case["n"], "skipped": "numpy unavailable"}
    # Ck-free instance: every repetition accepts, so all `reps`
    # repetitions run and the chunked kernels are fully exercised.
    g = ck_free_graph(case["n"], case["k"], seed=1)
    chunked_spec = f"fast:chunk={case['chunk']}"

    def workload(spec, telemetry=None):
        tester = CkFreenessTester(
            case["k"], 0.1, repetitions=case["reps"], engine=spec,
            telemetry=telemetry,
        )
        return tester.run(g, seed=seed, stop_on_reject=False)

    tel_serial, tel_chunked = Telemetry(), Telemetry()
    r_serial = workload("fast", tel_serial)
    r_chunked = workload(chunked_spec, tel_chunked)
    assert r_serial.accepted == r_chunked.accepted
    assert [
        (rep.index, rep.rejected, rep.cycle_ids, rep.rejecting_vertices,
         rep.rounds)
        for rep in r_serial.reports
    ] == [
        (rep.index, rep.rejected, rep.cycle_ids, rep.rejecting_vertices,
         rep.rounds)
        for rep in r_chunked.reports
    ], "chunked repetitions diverged from serial"
    # Protocol counters (rounds, messages, audited bits) must be
    # identical, not merely close: chunking may not change a single
    # exported aggregate.
    assert tel_serial.summary() == tel_chunked.summary(), (
        "telemetry aggregates diverged"
    )

    import gc

    best_serial = best_chunked = float("inf")
    best_speedup = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(case["timing_reps"]):
            t0 = time.perf_counter()
            workload("fast")
            serial = time.perf_counter() - t0
            t0 = time.perf_counter()
            workload(chunked_spec)
            chunked = time.perf_counter() - t0
            best_serial = min(best_serial, serial)
            best_chunked = min(best_chunked, chunked)
            best_speedup = max(best_speedup, serial / max(chunked, 1e-12))
    finally:
        if gc_was_enabled:
            gc.enable()
    assert best_speedup >= case["min_speedup"], (
        f"chunk={case['chunk']} speedup {best_speedup:.2f}x fell below "
        f"the {case['min_speedup']}x floor"
    )
    return {
        "n": g.n,
        "m": g.m,
        "repetitions": case["reps"],
        "chunk": case["chunk"],
        "serial_ms": best_serial * 1e3,
        "chunked_ms": best_chunked * 1e3,
        "speedup": best_speedup,
    }


# ---------------------------------------------------------------------------
# pruning — Instruction 15 vs naive forwarding (the Figure-1 claim)
# ---------------------------------------------------------------------------


@benchmark(
    "pruning",
    # The F1 crossover (naive load strictly exceeds pruned) is a claim
    # about *large* widths — the smoke instance is below the crossover
    # point, so only the larger grids assert it.
    smoke=[{"width": 4, "k": 7, "cap": 10_000, "crossover": False}],
    default=[{"width": 6, "k": 9, "cap": 10_000, "crossover": True}],
    full=[{"width": 8, "k": 9, "cap": 10_000, "crossover": True}],
)
def pruned_vs_naive(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Pruned vs naive per-message sequence load on the blowup instance."""
    from ..baselines import naive_detect_cycle_through_edge
    from ..core import detect_cycle_through_edge, max_sequences_any_round
    from ..graphs import blowup_graph

    g = blowup_graph(case["width"], case["k"])
    naive = naive_detect_cycle_through_edge(
        g, (0, 1), case["k"], max_sequences_cap=case["cap"]
    )
    pruned = detect_cycle_through_edge(g, (0, 1), case["k"])
    assert naive.detected and pruned.detected
    bound = max_sequences_any_round(case["k"])
    assert pruned.run.trace.max_sequences_per_message <= bound
    if case["crossover"]:
        assert (naive.max_sequences_per_message
                > pruned.run.trace.max_sequences_per_message), (
            "F1 crossover lost: naive load no longer exceeds pruned"
        )
    return {
        "n": g.n,
        "m": g.m,
        "naive_max_sequences": naive.max_sequences_per_message,
        "pruned_max_sequences": pruned.run.trace.max_sequences_per_message,
        "lemma3_ceiling": bound,
    }


# ---------------------------------------------------------------------------
# through_edge — deterministic detection through a planted edge
# ---------------------------------------------------------------------------


@benchmark(
    "through_edge",
    smoke=[{"n": 60, "k": 5}],
    default=[{"n": 80, "k": 7}],
    full=[{"n": 80, "k": 7}, {"n": 80, "k": 10}],
)
def planted_cycle(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Algorithm 1 through an edge of a planted k-cycle (must detect)."""
    from ..core import detect_cycle_through_edge
    from ..graphs import planted_cycle_graph

    g, cyc = planted_cycle_graph(
        case["n"], case["k"], seed=3, extra_edge_prob=0.01
    )
    det = detect_cycle_through_edge(g, (cyc[0], cyc[1]), case["k"])
    assert det.detected, "missed a planted cycle - determinism broken"
    return {
        "n": g.n,
        "m": g.m,
        "rounds": det.run.trace.num_rounds,
        "max_message_bits": det.run.trace.max_message_bits,
    }


# ---------------------------------------------------------------------------
# primitives — the simulator's classic CONGEST building blocks
# ---------------------------------------------------------------------------


@benchmark(
    "primitives",
    smoke=[{"rows": 8, "cols": 8}],
    default=[{"rows": 12, "cols": 12}],
)
def leader_election(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Leader election on a torus."""
    from ..congest import Network, elect_leader
    from ..graphs import torus_graph

    net = Network(torus_graph(case["rows"], case["cols"]))
    leader, run = elect_leader(net)
    assert leader == 0
    return {"n": net.graph.n, "rounds": run.trace.num_rounds}


@benchmark(
    "primitives",
    smoke=[{"rows": 8, "cols": 8}],
    default=[{"rows": 12, "cols": 12}],
)
def bfs_tree(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """BFS tree construction on a grid (depth checked against diameter)."""
    from ..congest import Network, build_bfs_tree
    from ..graphs import grid_graph
    from ..graphs.properties import diameter

    g = grid_graph(case["rows"], case["cols"])
    bfs = build_bfs_tree(Network(g), 0)
    assert bfs[g.n - 1].distance == diameter(g)
    return {"n": g.n, "depth": bfs[g.n - 1].distance}


@benchmark(
    "primitives",
    smoke=[{"n": 100}],
    default=[{"n": 150}],
)
def convergecast(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Convergecast sum over a random tree."""
    from ..congest import Network, aggregate
    from ..graphs import random_tree

    n = case["n"]
    net = Network(random_tree(n, seed=3))
    total = aggregate(net, 0, {v: v for v in range(n)}, lambda a, b: a + b)
    assert total == sum(range(n))
    return {"n": n, "total": total}


@benchmark(
    "primitives",
    # Repeated detect calls on one graph version pay network compilation
    # (CSR + half-edge tables) every time without a cache and once with
    # one; measured ~3-5x at this size, so the 2x floor has headroom.
    smoke=[{"n": 400, "p": 0.005, "k": 5, "calls": 6, "timing_reps": 3,
            "min_speedup": 2.0}],
    default=[{"n": 1000, "p": 0.002, "k": 5, "calls": 6, "timing_reps": 3,
              "min_speedup": 2.0}],
)
def compile_cache(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Compiled-instance cache on repeated same-graph edge detections.

    Asserts every cached call returns the identical detection result,
    that the cache registers exactly one miss, then gates on the
    min-of-N pair speedup of cached over uncached call loops.
    """
    from ..congest.engine import available_engines
    from ..congest.engine.cache import EngineCache
    from ..core.algorithm1 import detect_cycle_through_edge
    from ..graphs.generators import erdos_renyi_gnp

    if "fast" not in available_engines():
        # Strings never gate: a no-numpy fresh run still compares clean.
        return {"n": case["n"], "skipped": "numpy unavailable"}
    g = erdos_renyi_gnp(case["n"], case["p"], seed=1)
    edge = next(iter(g.edges()))

    def call_loop(cache):
        results = []
        for _ in range(case["calls"]):
            det = detect_cycle_through_edge(
                g, edge, case["k"], engine="fast", cache=cache,
            )
            results.append(
                (det.detected, sorted(det.rejecting_vertices))
            )
        return results

    cache = EngineCache()
    baseline = call_loop(None)
    cached = call_loop(cache)
    assert cached == baseline, "cached detection diverged from uncached"
    assert cache.misses == 1 and cache.hits == case["calls"] - 1, (
        f"unexpected cache traffic: {cache!r}"
    )

    import gc

    best_uncached = best_cached = float("inf")
    best_speedup = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(case["timing_reps"]):
            t0 = time.perf_counter()
            call_loop(None)
            uncached = time.perf_counter() - t0
            t0 = time.perf_counter()
            call_loop(cache)
            cached_wall = time.perf_counter() - t0
            best_uncached = min(best_uncached, uncached)
            best_cached = min(best_cached, cached_wall)
            best_speedup = max(
                best_speedup, uncached / max(cached_wall, 1e-12)
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    assert best_speedup >= case["min_speedup"], (
        f"compile-cache speedup {best_speedup:.2f}x fell below the "
        f"{case['min_speedup']}x floor"
    )
    return {
        "n": g.n,
        "m": g.m,
        "calls": case["calls"],
        "detected": int(baseline[0][0]),
        "uncached_ms": best_uncached * 1e3,
        "cached_ms": best_cached * 1e3,
        "speedup": best_speedup,
    }


# ---------------------------------------------------------------------------
# campaign — runner throughput (rows/s through the campaign machinery)
# ---------------------------------------------------------------------------


@benchmark(
    "campaign",
    smoke=[{"ns": [24, 30], "ks": [4], "repetitions": 1}],
    default=[{"ns": [48, 64], "ks": [4, 5], "repetitions": 2}],
)
def throughput(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Serial campaign execution over a small tester/detect grid.

    Runs single-worker on purpose: the benchmark runner may itself be
    process-parallel, and nesting pools measures contention, not work.
    """
    from ..runner import CampaignSpec, CampaignStore, run_campaign

    spec = CampaignSpec(
        name="bench",
        generators=[
            {"family": "gnp", "params": {"n": case["ns"], "p": 0.08}},
            {"family": "eps-far", "params": {"n": case["ns"][-1]}},
        ],
        ks=case["ks"],
        epsilons=[0.15],
        algorithms=["tester", "detect"],
        repetitions=case["repetitions"],
        seed=seed % (2**32),
    )
    table = spec.expand()
    with tempfile.TemporaryDirectory() as tmp:
        report = run_campaign(
            table, CampaignStore(Path(tmp) / "bench.jsonl"), workers=1
        )
    assert report.errors == 0
    assert report.executed == len(table)
    return {
        "rows": report.executed,
        "rows_per_second": report.rows_per_second,
    }


# ---------------------------------------------------------------------------
# combinatorics — representative families and the Monien comparator
# ---------------------------------------------------------------------------


@benchmark(
    "combinatorics",
    smoke=[{"ground": 14, "p": 2, "q": 3}],
    default=[{"ground": 16, "p": 2, "q": 3}],
)
def representative_family(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Greedy p-subset family reduction against the (q+1)^p bound."""
    from itertools import combinations

    from ..combinatorics import greedy_bound, greedy_representative_family

    family = [
        frozenset(c) for c in combinations(range(case["ground"]), case["p"])
    ]
    kept = greedy_representative_family(family, case["q"])
    assert len(kept) <= greedy_bound(case["p"], case["q"])
    assert len(kept) < len(family)
    return {"input_family": len(family), "kept": len(kept)}


@benchmark(
    "combinatorics",
    smoke=[{"n": 20, "p": 0.12, "k": 5}],
    default=[{"n": 24, "p": 0.12, "k": 5}, {"n": 24, "p": 0.12, "k": 7}],
)
def monien_cycle(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Monien's representative-family k-cycle decision vs the oracle."""
    from ..graphs import erdos_renyi_gnp, has_k_cycle
    from ..sequential import monien_has_k_cycle

    g = erdos_renyi_gnp(case["n"], case["p"], seed=4)
    got = monien_has_k_cycle(g, case["k"])
    assert got == has_k_cycle(g, case["k"])
    return {"n": g.n, "m": g.m, "found": bool(got)}


# ---------------------------------------------------------------------------
# scalability — simulator wall-clock per repetition vs network size
# ---------------------------------------------------------------------------


@benchmark(
    "scalability",
    smoke=[{"n": 200, "k": 5}],
    default=[{"n": 800, "k": 5}],
    full=[{"n": 800, "k": 5}, {"n": 1600, "k": 5}],
)
def repetition_wall(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One tester repetition on G(n, m=2n) — wall clock is the datum."""
    from ..core import CkFreenessTester
    from ..graphs import erdos_renyi_gnm

    g = erdos_renyi_gnm(case["n"], 2 * case["n"], seed=1)
    tester = CkFreenessTester(case["k"], 0.1, repetitions=1)
    result = tester.run(g, seed=seed)
    assert result.repetitions_run == 1
    return {"n": g.n, "m": g.m}


@benchmark(
    "scalability",
    smoke=[{"ns": [100, 200, 400], "k": 5}],
    default=[{"ns": [100, 200, 400, 800], "k": 5}],
)
def per_edge_scaling(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """F3: per-round time per edge grows sub-quadratically (6x slack)."""
    from ..analysis import run_scalability

    result = run_scalability(
        k=case["k"], ns=tuple(case["ns"]), seed=seed % (2**32)
    )
    rows = result.rows
    t_small = rows[0]["per_round"] / max(rows[0]["m"], 1)
    t_large = rows[-1]["per_round"] / max(rows[-1]["m"], 1)
    assert t_large < 6 * t_small, (
        f"per-edge round time grew {t_large / t_small:.1f}x from "
        f"n={rows[0]['n']} to n={rows[-1]['n']}"
    )
    return {"cells": len(rows), "per_edge_ratio": float(t_large / t_small)}


@benchmark(
    "scalability",
    # The 10^5+ point of the roadmap's scaling curve: one repetition on
    # G(n, m=2n) per shard count.  The verdict (an integer) gates; the
    # per-shard-count walls are the scaling record — with >= 2 cores the
    # multi-shard walls drop below the single-shard one.
    smoke=[{"n": 100_000, "k": 5, "shard_counts": [1, 2]}],
    default=[{"n": 250_000, "k": 5, "shard_counts": [1, 2, 4]}],
    full=[{"n": 1_000_000, "k": 5, "shard_counts": [1, 4, 8]}],
)
def sharded_scale(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Sharded tester repetition at 10^5+ nodes, swept over shard counts."""
    from ..congest.engine import available_engines, create_engine
    from ..congest.network import Network
    from ..graphs import erdos_renyi_gnm

    if "sharded" not in available_engines():
        return {"n": case["n"], "skipped": "sharded engine unavailable"}
    g = erdos_renyi_gnm(case["n"], 2 * case["n"], seed=1)
    net = Network(g)
    rep_seed = seed % (2**32)
    rejects = {}
    metrics: Dict[str, Any] = {"n": g.n, "m": g.m}
    for shards in case["shard_counts"]:
        eng = create_engine("sharded", net, shards=shards)
        t0 = time.perf_counter()
        run = eng.run_tester_repetition(case["k"], rep_seed)
        metrics[f"wall_shards{shards}"] = time.perf_counter() - t0
        rejects[shards] = frozenset(
            v for v, o in run.outputs.items() if o.rejects
        )
        eng.close()
    assert len(set(rejects.values())) == 1, (
        "shard count changed the verdict"
    )
    metrics["rejecting_vertices"] = len(next(iter(rejects.values())))
    return metrics


# ---------------------------------------------------------------------------
# farness — Lemma 4 edge-disjoint cycle packings
# ---------------------------------------------------------------------------


@benchmark(
    "farness",
    smoke=[{"n": 100, "k": 5, "eps": 0.1}],
    default=[{"n": 200, "k": 5, "eps": 0.1}],
)
def greedy_packing(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Greedy cycle packing on a planted ε-far instance vs Lemma 4."""
    from ..graphs import (
        greedy_cycle_packing,
        lemma4_bound,
        planted_epsilon_far_graph,
    )

    g, certified = planted_epsilon_far_graph(
        case["n"], case["k"], case["eps"], seed=0
    )
    packing = greedy_cycle_packing(g, case["k"])
    assert len(packing) >= lemma4_bound(g.m, case["k"], certified) - 1e-9
    return {"n": g.n, "m": g.m, "packing": len(packing)}


# ---------------------------------------------------------------------------
# sweeps — boosting curve, ε scaling, k scaling
# ---------------------------------------------------------------------------


@benchmark(
    "sweeps",
    smoke=[{"epsilons": [0.4, 0.2, 0.1]}],
    default=[{"epsilons": [0.4, 0.2, 0.1, 0.05, 0.025]}],
)
def epsilon_sweep(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A6: total rounds double (within ceil slack) when ε halves."""
    from ..analysis import run_epsilon_sweep

    result = run_epsilon_sweep(k=5, epsilons=tuple(case["epsilons"]))
    rows = result.rows
    for a, b in zip(rows, rows[1:]):
        assert b["total"] <= 2 * a["total"] + 3
    return {"cells": len(rows), "max_total_rounds": rows[-1]["total"]}


@benchmark(
    "sweeps",
    smoke=[{"ks": [3, 4, 5], "width": 4}],
    default=[{"ks": [3, 4, 5, 6, 7, 8], "width": 6}],
)
def k_sweep(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A7: measured max sequences stay under the Lemma-3 ceiling as k grows."""
    from ..analysis import run_k_sweep

    result = run_k_sweep(ks=tuple(case["ks"]), width=case["width"])
    for row in result.rows:
        assert row["measured"] <= row["ceiling"]
    return {"cells": len(result.rows)}


@benchmark(
    "sweeps",
    smoke=[{"n": 48, "rep_counts": [1, 2, 4], "trials": 12, "strict": False}],
    default=[{"n": 60, "rep_counts": [1, 2, 4, 8, 16], "trials": 20,
              "strict": True}],
)
def boosting_curve(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A5: empirical rejection rate vs the theoretical boosting bound."""
    from ..analysis import run_boosting_curve

    result = run_boosting_curve(
        k=5, eps=0.1, n=case["n"], rep_counts=tuple(case["rep_counts"]),
        trials=case["trials"], seed=seed % (2**32),
    )
    rows = result.rows
    assert all(0.0 <= row["rate"] <= 1.0 for row in rows)
    if case["strict"]:
        # Wilson upper bound must dominate the theoretical curve; with
        # few trials (smoke) the interval is too wide to be meaningful.
        for row in rows:
            assert row["hi"] >= row["bound"]
    return {
        "cells": len(rows),
        "final_rate": float(rows[-1]["rate"]),
    }


# ---------------------------------------------------------------------------
# ablations — pruner implementations (identical semantics, different cost)
# ---------------------------------------------------------------------------


def _ablation_sequences(num: int, t: int, seed: int):
    rng = np.random.default_rng(seed)
    seqs = []
    while len(seqs) < num:
        cand = tuple(int(x) for x in rng.choice(30, size=t - 1, replace=False))
        if cand not in seqs:
            seqs.append(cand)
    return seqs


@benchmark(
    "ablations",
    smoke=[{"k": 8, "t": 3, "num_seqs": 8}],
    default=[{"k": 8, "t": 3, "num_seqs": 8}, {"k": 10, "t": 4, "num_seqs": 10}],
)
def explicit_pruner(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Literal Instruction-15 subset enumeration (the slow twin)."""
    from ..core import ExplicitPruner, HittingSetPruner

    seqs = _ablation_sequences(case["num_seqs"], case["t"], seed)
    out = ExplicitPruner(max_subsets=5_000_000).select(
        seqs, case["k"], case["t"]
    )
    assert out == HittingSetPruner().select(seqs, case["k"], case["t"])
    return {"kept": len(out)}


@benchmark(
    "ablations",
    smoke=[{"k": 8, "t": 3, "num_seqs": 8}],
    default=[{"k": 8, "t": 3, "num_seqs": 8}, {"k": 10, "t": 4, "num_seqs": 10}],
)
def hitting_pruner(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Lazy hitting-set pruner (the production implementation)."""
    from ..core import HittingSetPruner

    seqs = _ablation_sequences(case["num_seqs"], case["t"], seed)
    out = HittingSetPruner().select(seqs, case["k"], case["t"])
    assert len(out) >= 1
    return {"kept": len(out)}


@benchmark(
    "ablations",
    smoke=[{"n": 80, "k": 5, "eps": 0.1}],
    default=[{"n": 100, "k": 5, "eps": 0.1}],
)
def batched_tester(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A2: batched repetitions trade bandwidth for rounds."""
    from ..extensions import BatchedCkTester
    from ..graphs import planted_epsilon_far_graph

    g, _ = planted_epsilon_far_graph(case["n"], case["k"], case["eps"], seed=0)
    res = BatchedCkTester(case["k"], case["eps"]).run(g, seed=seed % (2**32))
    assert res.rejected
    return {"n": g.n, "m": g.m, "rounds": res.rounds}


@benchmark(
    "ablations",
    smoke=[{"ks": [6, 7]}],
    default=[{"ks": [6, 7, 8, 9]}],
)
def chord_obstruction(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A3: the §4 obstruction — oblivious chord certification must fail."""
    from ..extensions import (
        build_obstruction_instance,
        has_chorded_cycle_through_edge,
        oblivious_chorded_detect,
    )

    for k in case["ks"]:
        g, e = build_obstruction_instance(k)
        assert has_chorded_cycle_through_edge(g, e, k)
        res = oblivious_chorded_detect(g, e, k)
        assert res.cycle_detected and not res.chord_certified, (
            f"k={k}: the obstruction stopped obstructing"
        )
    return {"cells": len(case["ks"])}


@benchmark(
    "ablations",
    smoke=[{"k": 6, "trials": 30, "drop_probs": [0.0, 0.3, 0.6]}],
    default=[{"k": 6, "trials": 60, "drop_probs": [0.0, 0.1, 0.3, 0.6]}],
)
def fault_injection(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A4: completeness decays under message loss; soundness holds at 0."""
    from ..congest import DropFaults, FaultyScheduler, Network
    from ..core import DetectCkProgram, DetectionOutcome, phase2_rounds
    from ..graphs import cycle_graph

    k, trials = case["k"], case["trials"]
    g = cycle_graph(k)
    rates: Dict[float, float] = {}
    for p in case["drop_probs"]:
        hits = 0
        for s in range(trials):
            net = Network(g)
            sched = FaultyScheduler(net, DropFaults(p, seed=s))
            run = sched.run(
                lambda ctx: DetectCkProgram(ctx, k, net.edge_ids(0, 1)),
                num_rounds=phase2_rounds(k),
            )
            if any(
                o.rejects for o in run.outputs.values()
                if isinstance(o, DetectionOutcome)
            ):
                hits += 1
        rates[p] = hits / trials
    assert rates[0.0] == 1.0, "reliable links must detect deterministically"
    worst = max(case["drop_probs"])
    assert rates[worst] < rates[0.0], "loss must erode completeness"
    mildest = min(p for p in case["drop_probs"] if p > 0)
    assert rates[worst] <= rates[mildest] + 0.05, (
        "detection rate must decay (roughly) monotonically with loss"
    )
    return {
        "trials": trials,
        "rate_at_max_drop": float(rates[worst]),
    }


# ---------------------------------------------------------------------------
# dynamic — incremental monitoring vs naive per-step re-detection
# ---------------------------------------------------------------------------


@benchmark(
    "dynamic",
    smoke=[{"family": "gnp", "n": 40, "p": 0.1, "k": 5,
            "stream": "uniform-churn:steps=30,p=0.5", "min_speedup": 1.5}],
    default=[{"family": "gnp", "n": 96, "p": 0.05, "k": 5,
              "stream": "uniform-churn:steps=60,p=0.5", "min_speedup": 3.0}],
    full=[{"family": "gnp", "n": 192, "p": 0.03, "k": 5,
           "stream": "uniform-churn:steps=120,p=0.5", "min_speedup": 5.0}],
)
def churn_speedup(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Incremental CkMonitor vs naive per-step re-detection on churn.

    Both strategies replay the identical scenario on the identical
    per-step seed schedule; their verdict trajectories must agree exactly
    (the parity claim rides along with the timing), and the cached
    monitor must beat the naive baseline by the case's speedup floor.
    """
    from ..dynamic.campaign import run_monitor_stream, run_naive_stream
    from ..runner import registry

    base = registry.build_graph(
        case["family"], seed=seed, n=case["n"], p=case["p"]
    )
    t0 = time.perf_counter()
    incremental = run_monitor_stream(base, case["stream"], case["k"], seed=seed)
    wall_incremental = time.perf_counter() - t0
    t0 = time.perf_counter()
    naive = run_naive_stream(base, case["stream"], case["k"], seed=seed)
    wall_naive = time.perf_counter() - t0
    for field in ("final_accepted", "reject_steps", "verdict_flips",
                  "final_hash", "final_n", "final_m"):
        assert incremental[field] == naive[field], (
            f"incremental/naive divergence on {field}: "
            f"{incremental[field]!r} != {naive[field]!r}"
        )
    speedup = wall_naive / max(wall_incremental, 1e-12)
    assert speedup >= case["min_speedup"], (
        f"incremental monitoring speedup {speedup:.2f}x fell below the "
        f"{case['min_speedup']}x floor"
    )
    return {
        "steps": incremental["steps"],
        "cache_hits": incremental["cache_hits"],
        "local_rechecks": incremental["local_rechecks"],
        "full_retests": incremental["full_retests"],
        "reject_steps": incremental["reject_steps"],
        "speedup": round(speedup, 3),
    }


@benchmark(
    "dynamic",
    smoke=[{"family": "cycle", "n": 12, "k": 5,
            "stream": "growth:steps=40,p=0.4,attach=2"}],
    default=[{"family": "cycle", "n": 24, "k": 5,
              "stream": "growth:steps=160,p=0.4,attach=2"}],
)
def growth_monitor(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Monitor throughput on an insert-only growth stream (no re-tests).

    Growth never deletes, so a cached witness can never be invalidated:
    the monitor must finish the whole stream without a single full
    re-test — the structural claim behind its best-case throughput.
    """
    from ..dynamic import CkMonitor, build_stream
    from ..runner import registry

    base = registry.build_graph(case["family"], seed=seed, n=case["n"])
    stream = build_stream(case["stream"], base, seed=seed, k=case["k"])
    monitor = CkMonitor(stream.base, case["k"], seed=seed)
    monitor.run_stream(stream.mutations)
    assert monitor.stats.full_retests == 0, (
        "insert-only stream forced a full re-test"
    )
    assert monitor.stats.steps == len(stream.mutations)
    return {
        "steps": monitor.stats.steps,
        "cache_hits": monitor.stats.cache_hits,
        "local_rechecks": monitor.stats.local_rechecks,
        "final_n": monitor.graph.n,
        "final_m": monitor.graph.m,
    }


# ---------------------------------------------------------------------------
# obs — telemetry overhead and exposition round-trip
# ---------------------------------------------------------------------------


@benchmark(
    "obs",
    # The <5% overhead budget of docs/observability.md.  Timed via
    # alternating min-of-N pairs so scheduler noise cannot fake a
    # regression; the verdict/evidence identity assertions ride along,
    # making this the perf half of the bit-identity guarantee.
    smoke=[{"n": 96, "k": 5, "eps": 0.1, "reps": 4, "timing_reps": 10,
            "max_overhead_pct": 5.0}],
    default=[{"n": 128, "k": 5, "eps": 0.1, "reps": 6, "timing_reps": 12,
              "max_overhead_pct": 5.0}],
)
def instrumentation_overhead(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Tester with telemetry on vs off: identical results, <5% slower.

    Runs the identical fixed-repetition tester workload under a live
    :class:`~repro.obs.Telemetry` and under the disabled default,
    asserting (a) verdicts, repetition reports and evidence are equal
    and (b) the minimum-of-N wall-clock overhead stays inside the
    documented budget.
    """
    from ..core import CkFreenessTester
    from ..graphs import planted_epsilon_far_graph
    from ..obs import Telemetry

    g, _ = planted_epsilon_far_graph(case["n"], case["k"], case["eps"], seed=0)

    def workload(telemetry):
        tester = CkFreenessTester(
            case["k"], case["eps"], repetitions=case["reps"],
            telemetry=telemetry,
        )
        return tester.run(g, seed=seed, stop_on_reject=False)

    # Identity: telemetry must be invisible to the protocol.
    r_off = workload(None)
    tel = Telemetry()
    r_on = workload(tel)
    assert r_on.accepted == r_off.accepted
    assert r_on.evidence == r_off.evidence
    assert [
        (rep.index, rep.rejected, rep.cycle_ids) for rep in r_on.reports
    ] == [
        (rep.index, rep.rejected, rep.cycle_ids) for rep in r_off.reports
    ], "telemetry changed per-repetition behaviour"
    summary = tel.summary()
    assert summary["repro_tester_repetitions_total"] == case["reps"]

    # GC pauses and co-tenant load dwarf the ~1% signal, so measure
    # off/on back to back in pairs with collection paused and gate on
    # the *minimum* pair ratio: external noise only inflates a ratio's
    # numerator or denominator for that pair, and a single undisturbed
    # pair is enough to show the instrumentation itself is cheap.
    import gc

    best_off = best_on = best_ratio = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(case["timing_reps"]):
            t0 = time.perf_counter()
            workload(None)
            off = time.perf_counter() - t0
            t0 = time.perf_counter()
            workload(Telemetry())
            on = time.perf_counter() - t0
            best_off = min(best_off, off)
            best_on = min(best_on, on)
            best_ratio = min(best_ratio, on / off)
    finally:
        if gc_was_enabled:
            gc.enable()
    # Lower-bound estimate: noise can push a pair's ratio below 1, which
    # means "overhead too small to resolve", not a speedup.
    overhead_pct = max(0.0, (best_ratio - 1.0) * 100.0)
    assert overhead_pct < case["max_overhead_pct"], (
        f"telemetry overhead {overhead_pct:.2f}% exceeded the "
        f"{case['max_overhead_pct']}% budget"
    )
    return {
        "repetitions": case["reps"],
        "congest_runs": int(summary["repro_congest_runs_total"]),
        "congest_rounds": int(summary["repro_congest_rounds_total"]),
        "off_ms": best_off * 1e3,
        "on_ms": best_on * 1e3,
        "overhead_pct": overhead_pct,
    }


@benchmark(
    "obs",
    # The request-tracing + phase-profiler analogue of
    # instrumentation_overhead: spans joined to an ambient trace context
    # plus a live PhaseProfiler on the engine, vs everything off.  Same
    # alternating min-of-N pair timing, same <5% budget.
    smoke=[{"n": 96, "k": 5, "eps": 0.1, "reps": 4, "timing_reps": 10,
            "max_overhead_pct": 5.0}],
    default=[{"n": 128, "k": 5, "eps": 0.1, "reps": 6, "timing_reps": 12,
              "max_overhead_pct": 5.0}],
)
def trace_overhead(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Tracing + profiling on vs off: bit-identical outputs, <5% slower.

    The "on" configuration is the full request-tracing stack the service
    runs under: an ambient :func:`~repro.obs.tracing.activate_trace`
    context, per-repetition spans emitted to an in-memory sink, and a
    live :class:`~repro.congest.engine.PhaseProfiler` on the engine.
    Asserts (a) engine outputs are identical on/off, (b) every emitted
    event joins the ambient trace, (c) the profile document validates
    against the ``repro.profile/v1`` schema, and (d) the min-of-N
    wall-clock overhead stays inside the budget.
    """
    from ..congest.engine import (
        PhaseProfiler,
        available_engines,
        create_engine,
        validate_profile,
    )
    from ..congest.network import Network
    from ..graphs import planted_epsilon_far_graph
    from ..obs import ListSink, Telemetry, resolve_telemetry
    from ..obs.tracing import TraceContext, activate_trace

    if "fast" not in available_engines():
        return {"n": case["n"], "skipped": "fast engine unavailable"}
    g, _ = planted_epsilon_far_graph(case["n"], case["k"], case["eps"], seed=0)
    net = Network(g)
    rep_seeds = [(seed + i) % (2**32) for i in range(case["reps"])]

    def workload(telemetry=None, profiler=None, context=None):
        tel = resolve_telemetry(telemetry)
        engine = create_engine(
            "fast", net, telemetry=telemetry, profiler=profiler
        )
        fingerprints = []
        with activate_trace(context):
            for i, rep_seed in enumerate(rep_seeds):
                with tel.span("bench.rep", rep=i):
                    run = engine.run_tester_repetition(case["k"], rep_seed)
                fingerprints.append(sorted(
                    (
                        v,
                        bool(getattr(out, "rejects", False)),
                        getattr(out, "cycle", None),
                    )
                    for v, out in run.outputs.items()
                ))
        return fingerprints

    # Identity: tracing and profiling must be invisible to the protocol.
    fp_off = workload()
    sink = ListSink()
    tel = Telemetry(sink=sink, trace_seed=seed)
    profiler = PhaseProfiler()
    context = TraceContext(tel.ids.trace_id(), tel.ids.span_id())
    fp_on = workload(telemetry=tel, profiler=profiler, context=context)
    assert fp_on == fp_off, "tracing/profiling changed engine outputs"

    spans = [e for e in sink.events if e.get("type") == "span"]
    assert len(spans) == case["reps"], (
        f"expected {case['reps']} span events, got {len(spans)}"
    )
    assert all(e["trace_id"] == context.trace_id for e in spans), (
        "a span escaped the ambient trace context"
    )
    assert all(e["parent_id"] == context.span_id for e in spans), (
        "a root span is not parented to the ambient context"
    )
    doc = validate_profile(profiler.report(engine="fast"))
    assert doc["phases"], "profiler attributed no phases"
    assert doc["total_seconds"] >= 0

    import gc

    best_off = best_on = best_ratio = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for i in range(case["timing_reps"]):
            t0 = time.perf_counter()
            workload()
            off = time.perf_counter() - t0
            on_tel = Telemetry(sink=ListSink(), trace_seed=seed + i)
            on_context = TraceContext(
                on_tel.ids.trace_id(), on_tel.ids.span_id()
            )
            t0 = time.perf_counter()
            workload(
                telemetry=on_tel, profiler=PhaseProfiler(),
                context=on_context,
            )
            on = time.perf_counter() - t0
            best_off = min(best_off, off)
            best_on = min(best_on, on)
            best_ratio = min(best_ratio, on / off)
    finally:
        if gc_was_enabled:
            gc.enable()
    overhead_pct = max(0.0, (best_ratio - 1.0) * 100.0)
    assert overhead_pct < case["max_overhead_pct"], (
        f"tracing overhead {overhead_pct:.2f}% exceeded the "
        f"{case['max_overhead_pct']}% budget"
    )
    return {
        "repetitions": case["reps"],
        "span_events": len(spans),
        "profiled_phases": len(doc["phases"]),
        "off_ms": best_off * 1e3,
        "on_ms": best_on * 1e3,
        "overhead_pct": overhead_pct,
    }


@benchmark(
    "obs",
    smoke=[{"families": 20, "children": 8, "iters": 20}],
    default=[{"families": 50, "children": 16, "iters": 50}],
)
def exposition_roundtrip(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Prometheus render→parse→render fixed point on a synthetic registry."""
    from ..obs import MetricsRegistry, parse_textfile, render_textfile
    from ..obs.exposition import render_parsed

    registry = MetricsRegistry()
    for i in range(case["families"]):
        counter = registry.counter(
            f"repro_bench_family_{i}_total", f"Synthetic family {i}.",
            ("shard",),
        )
        for child in range(case["children"]):
            counter.inc(i * child + 1, shard=str(child))
    hist = registry.histogram(
        "repro_bench_sizes", "Synthetic sizes.", ("kind",)
    )
    for i in range(256):
        hist.observe((i * 37) % 700, kind="a" if i % 2 else "b")

    text = render_textfile(registry)
    for _ in range(case["iters"]):
        text = render_textfile(registry)
        families = parse_textfile(text)
    assert render_parsed(families) == text, "round trip is not a fixed point"
    lines = text.count("\n")
    assert len(families) == case["families"] + 1
    return {
        "families": len(families),
        "lines": lines,
        "bytes": len(text),
    }


@benchmark(
    "dynamic",
    smoke=[{"n": 512, "p": 0.02, "snapshots": 20}],
    default=[{"n": 2048, "p": 0.005, "snapshots": 20}],
)
def snapshot_hash(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Content-hashed snapshot cost on a mid-sized evolving graph."""
    from ..dynamic import DynamicGraph
    from ..graphs.generators import erdos_renyi_gnp

    g = erdos_renyi_gnp(case["n"], case["p"], seed=seed)
    dyn = DynamicGraph(g)
    seen = set()
    for i in range(case["snapshots"]):
        dyn.add_vertex()
        dyn.add_edge(i, dyn.n - 1)
        snap = dyn.snapshot()
        assert snap.version == dyn.version
        seen.add(snap.content_hash)
    assert len(seen) == case["snapshots"], "snapshot hashes must be distinct"
    # Identical history must reproduce the identical final hash.
    assert DynamicGraph.replay(g, dyn.log).content_hash() == dyn.content_hash()
    return {"snapshots": case["snapshots"], "final_n": dyn.n, "final_m": dyn.m}


# ---------------------------------------------------------------------------
# service — detection-as-a-service: loadgen throughput and session lifecycle
# ---------------------------------------------------------------------------


@benchmark(
    "service",
    smoke=[{"clients": 8, "batch": 1, "min_rps": 500.0}],
    default=[{"clients": 16, "batch": 2, "min_rps": 500.0}],
)
def loadgen_throughput(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Aggregate service throughput under the seeded loadgen profile.

    Boots an in-process server, drives ``clients`` concurrent sessions
    through the smoke scenario, and asserts the two service guarantees
    in-body: the latency gate (aggregate requests/second above
    ``min_rps``) and bit-exact parity between every session's final
    state and an offline :class:`~repro.dynamic.CkMonitor` replay.
    """
    from ..service.loadgen import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        clients=case["clients"], batch=case["batch"], seed=seed
    )
    summary = run_loadgen(config)
    assert summary["errors"] == 0, (
        f"loadgen hit {summary['errors']} request errors"
    )
    assert summary["parity_ok"], (
        "service sessions diverged from the offline CkMonitor replay"
    )
    assert summary["rps"] >= case["min_rps"], (
        f"throughput {summary['rps']:.0f} req/s below the "
        f"{case['min_rps']:.0f} req/s gate"
    )
    return {
        "clients": case["clients"],
        "requests": summary["requests"],
        "errors": summary["errors"],
        "rps": summary["rps"],
        "p50_ms": summary["p50_ms"],
        "p99_ms": summary["p99_ms"],
    }


@benchmark(
    "service",
    smoke=[{"n": 40, "p": 0.1, "steps": 30, "k": 5}],
    default=[{"n": 80, "p": 0.05, "steps": 60, "k": 5}],
)
def session_lifecycle(case: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One full session lifetime over HTTP vs the offline monitor.

    Walks create → mutate (one request per step) → verdict → snapshot →
    delete through the real wire protocol and asserts the snapshot's
    ``(version, content_hash, accepted)`` triple is bit-identical to an
    offline monitor fed the same base graph and stream.
    """
    from ..dynamic import CkMonitor, build_stream
    from ..graphs import io as graph_io
    from ..runner import registry as graph_registry
    from ..service import ServerHarness

    base = graph_registry.build_graph(
        "gnp", seed=seed, n=case["n"], p=case["p"]
    )
    stream = build_stream(
        f"uniform-churn:steps={case['steps']},p=0.5",
        base, seed=seed, k=case["k"],
    )
    with ServerHarness(max_sessions=4) as harness:
        client = harness.client()
        client.create_session(
            name="bench", k=case["k"], seed=seed,
            base=graph_io.dumps(stream.base),
        )
        for mutation in stream.mutations:
            client.mutate("bench", mutation.to_line() + "\n")
        verdict = client.verdict("bench")
        snapshot = client.snapshot("bench")
        client.delete("bench")

    monitor = CkMonitor(stream.base, case["k"], seed=seed)
    monitor.run_stream(stream.mutations)
    assert snapshot["version"] == monitor.version
    assert snapshot["content_hash"] == monitor.dynamic.content_hash(), (
        "service content hash diverged from the offline replay"
    )
    assert snapshot["accepted"] == monitor.accepted
    assert verdict["accepted"] == monitor.accepted
    return {
        "steps": case["steps"],
        "version": snapshot["version"],
        "final_m": snapshot["m"],
        "accepted": int(snapshot["accepted"]),
    }

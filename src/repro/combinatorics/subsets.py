"""Small subset utilities shared by the pruners and the EHM machinery."""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import FrozenSet, Iterable, Iterator, Sequence

__all__ = ["k_subsets", "count_k_subsets", "disjoint_subsets"]


def k_subsets(ground: Sequence, k: int) -> Iterator[FrozenSet]:
    """All k-element subsets of ``ground`` as frozensets, in the
    deterministic order induced by the input sequence."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    for combo in combinations(ground, k):
        yield frozenset(combo)


def count_k_subsets(n: int, k: int) -> int:
    """``C(n, k)`` (0 when k > n)."""
    if k < 0 or k > n:
        return 0
    return comb(n, k)


def disjoint_subsets(
    ground: Sequence, k: int, avoid: Iterable
) -> Iterator[FrozenSet]:
    """All k-subsets of ``ground`` disjoint from ``avoid``."""
    avoid_set = set(avoid)
    filtered = [x for x in ground if x not in avoid_set]
    yield from k_subsets(filtered, k)

"""Bounded hitting-set solver (classic FPT branching).

Given a family of non-empty sets, each of size at most ``p``, decide
whether some set ``H`` of at most ``q`` elements intersects every member.
The bounded search tree branches on the elements of an arbitrary un-hit
set, giving worst-case ``O(p^q)`` tree nodes — tiny for the parameters of
Algorithm 1 (``p = t-1 <= k/2 - 1``, ``q = k - t``).

This is the computational core of the fast pruner: a sequence ``L`` can be
extended to a candidate k-cycle witness iff the family
``{L'' \\ L : L'' already kept}`` admits a hitting set of size ``<= k - t``
(see :mod:`repro.core.pruning` for the reduction).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

__all__ = ["has_hitting_set", "find_hitting_set", "min_hitting_set_size"]


def find_hitting_set(
    family: Sequence[Iterable], budget: int
) -> Optional[Set]:
    """Return a hitting set of size <= ``budget`` or ``None``.

    The empty family is hit by the empty set.  A family containing an empty
    set is unhittable (returns ``None``).
    """
    sets: List[FrozenSet] = [frozenset(s) for s in family]
    if any(not s for s in sets):
        return None
    # Deduplicate and drop supersets (hitting a subset hits its supersets).
    sets = _reduce(sets)
    chosen: Set = set()
    result = _branch(sets, budget, chosen)
    return result


def has_hitting_set(family: Sequence[Iterable], budget: int) -> bool:
    """Whether a hitting set of size <= ``budget`` exists."""
    return find_hitting_set(family, budget) is not None


def min_hitting_set_size(family: Sequence[Iterable], cap: int) -> Optional[int]:
    """Smallest hitting-set size, or ``None`` if it exceeds ``cap``."""
    for b in range(0, cap + 1):
        if has_hitting_set(family, b):
            return b
    return None


def _reduce(sets: List[FrozenSet]) -> List[FrozenSet]:
    """Remove duplicates and strict supersets (standard kernelisation)."""
    uniq = sorted(set(sets), key=lambda s: (len(s), sorted(map(repr, s))))
    kept: List[FrozenSet] = []
    for s in uniq:
        if not any(t <= s for t in kept):
            kept.append(s)
    return kept


def _branch(
    sets: List[FrozenSet], budget: int, chosen: Set
) -> Optional[Set]:
    # Find an un-hit set.
    unhit = None
    for s in sets:
        if not (s & chosen):
            unhit = s
            break
    if unhit is None:
        return set(chosen)
    if budget == 0:
        return None
    # Branch on each element of the smallest un-hit set for a tighter tree.
    for s in sets:
        if not (s & chosen) and len(s) < len(unhit):
            unhit = s
    for x in sorted(unhit, key=repr):
        chosen.add(x)
        found = _branch(sets, budget - 1, chosen)
        chosen.discard(x)
        if found is not None:
            return found
    return None

"""Erdős–Hajnal–Moon representative families.

The paper (§1.2) observes that its pruning technique is a distributed
implementation of a 1964 lemma of Erdős, Hajnal and Moon:

    Let ``F`` be a family of subsets of size <= p of a ground set V, and
    fix q with p + q <= |V|.  Then there is a subfamily ``F̂ ⊆ F`` with
    ``|F̂| <= C(p+q, p)`` such that for every set C of size <= q: if some
    ``L ∈ F`` is disjoint from C, then some ``L̂ ∈ F̂`` is disjoint from C.

``F̂`` is called a *q-representative* subfamily of ``F``.  This module
provides:

* :func:`greedy_representative_family` — the greedy subfamily computed by
  exactly the rule Algorithm 1 applies at each node (kept sets "consume"
  the witnesses disjoint from them).  Its size obeys the Lemma-3-style
  bound ``(q+1)^p`` (not the optimal binomial, but constant for constant
  p, q — which is all the distributed algorithm needs).
* :func:`is_representative` — brute-force verifier of the representation
  property (test oracle).
* :func:`ehm_bound` / :func:`greedy_bound` — the two size bounds.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import FrozenSet, Iterable, List, Sequence

from .hitting import has_hitting_set

__all__ = [
    "greedy_representative_family",
    "is_representative",
    "ehm_bound",
    "greedy_bound",
]


def greedy_representative_family(
    family: Sequence[Iterable],
    q: int,
) -> List[FrozenSet]:
    """Greedy q-representative subfamily, in input order.

    A set ``L`` is kept iff there remains a *witness*: a q-element set
    disjoint from ``L`` (over an implicit ground set large enough to pad —
    the paper's "fake IDs") that intersects every previously kept set.
    By the hitting-set duality this holds iff ``{K \\ L : K kept}`` has a
    hitting set of size <= q, with no kept set fully inside ``L``.

    This reproduces Algorithm 1's Instructions 16–23 verbatim at the level
    of kept/discarded decisions (see the equivalence tests).
    """
    if q < 0:
        raise ValueError(f"q must be non-negative, got {q}")
    kept: List[FrozenSet] = []
    for raw in family:
        L = frozenset(raw)
        if _keeps(kept, L, q):
            kept.append(L)
    return kept


def _keeps(kept: Sequence[FrozenSet], L: FrozenSet, q: int) -> bool:
    residues = []
    for K in kept:
        r = K - L
        if not r:
            # K ⊆ L: every witness disjoint from L misses K too.
            return False
        residues.append(r)
    return has_hitting_set(residues, q)


def is_representative(
    subfamily: Sequence[Iterable],
    family: Sequence[Iterable],
    q: int,
    ground: Sequence,
) -> bool:
    """Brute-force check of the EHM property over an explicit ground set.

    For every C ⊆ ground with |C| <= q: if some member of ``family`` is
    disjoint from C then some member of ``subfamily`` must be too.
    Exponential in |ground|; test-oracle only.
    """
    fam = [frozenset(s) for s in family]
    sub = [frozenset(s) for s in subfamily]
    ground_list = list(ground)
    for size in range(0, q + 1):
        for combo in combinations(ground_list, size):
            C = frozenset(combo)
            if any(not (L & C) for L in fam) and not any(
                not (Lh & C) for Lh in sub
            ):
                return False
    return True


def ehm_bound(p: int, q: int) -> int:
    """The Erdős–Hajnal–Moon bound ``C(p+q, p)`` on an optimal
    q-representative subfamily of p-sets."""
    return comb(p + q, p)


def greedy_bound(p: int, q: int) -> int:
    """Size bound ``(q+1)^p`` achieved by the greedy rule (the Lemma-3
    argument of the paper, rephrased with p = sequence length and
    q = k - t)."""
    return (q + 1) ** p

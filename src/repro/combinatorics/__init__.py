"""Combinatorial substrate: hitting sets and EHM representative families."""

from .hitting import find_hitting_set, has_hitting_set, min_hitting_set_size
from .representative import (
    ehm_bound,
    greedy_bound,
    greedy_representative_family,
    is_representative,
)
from .subsets import count_k_subsets, disjoint_subsets, k_subsets

__all__ = [
    "count_k_subsets",
    "disjoint_subsets",
    "ehm_bound",
    "find_hitting_set",
    "greedy_bound",
    "greedy_representative_family",
    "has_hitting_set",
    "is_representative",
    "k_subsets",
    "min_hitting_set_size",
]

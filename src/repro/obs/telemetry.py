"""The Telemetry object: registry + tracer + sink, global but injectable.

One :class:`Telemetry` bundles the three observability surfaces —

* a :class:`~repro.obs.metrics.MetricsRegistry` (counters / gauges /
  histograms),
* span tracing (:mod:`repro.obs.tracing`),
* a structured event sink (:mod:`repro.obs.events`),

and is what the instrumented layers (engines, tester, monitor, campaign
executor) accept as their ``telemetry=`` parameter.  Resolution order is
*explicit argument > process global > disabled*:

* passing a :class:`Telemetry` uses exactly that object (campaign
  workers build a private one per row so parallel runs cannot share
  state);
* passing ``None`` (the default everywhere) uses the process-global
  object, which **starts disabled** — a :class:`NullTelemetry` whose
  every operation is a no-op.

The disabled default is a guarantee, not an optimisation: no code path
may behave differently under telemetry, and since metrics/spans never
draw randomness or reorder work, fixed-seed verdicts and evidence are
bit-identical with telemetry off, on, or absent (asserted by
``tests/test_obs_integration.py`` and the ``obs`` benchmark area).

Enable globally for a process with::

    from repro.obs import Telemetry, set_telemetry

    set_telemetry(Telemetry())          # in-memory metrics only
    set_telemetry(Telemetry.to_jsonl("events.jsonl"))  # + event log
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from .events import JsonlSink, NullSink
from .exposition import render_registry
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_SIZE_BUCKETS,
)
from .tracing import NULL_SPAN, NullSpan, Span, TraceIdSource, current_trace

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "get_telemetry",
    "resolve_telemetry",
    "set_telemetry",
]


class Telemetry:
    """Enabled telemetry: metrics, spans and events share one lifetime.

    Parameters
    ----------
    registry:
        Metrics registry to record into; a fresh one by default.
    sink:
        Event sink for spans/marks/snapshots; discarded by default
        (metrics-only telemetry is the common campaign configuration).
    trace_seed:
        Seed of the :class:`~repro.obs.tracing.TraceIdSource` handing
        out trace/span ids — deterministic, so fixed-seed runs emit
        replayable id sequences.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[Any] = None,
        *,
        trace_seed: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else NullSink()
        self.ids = TraceIdSource(trace_seed)
        self._span_stack: list = []

    @classmethod
    def to_jsonl(cls, path: Union[str, Path]) -> "Telemetry":
        """Telemetry whose events append to the JSONL file at ``path``."""
        return cls(sink=JsonlSink(path))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter family in this telemetry's registry."""
        return self.registry.counter(name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family."""
        return self.registry.gauge(name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family."""
        return self.registry.histogram(name, help, labelnames, buckets=buckets)

    # ------------------------------------------------------------------
    # Tracing and events
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A nestable timed span; use as a context manager."""
        return Span(self, name, attrs)

    def mark(self, name: str, **fields: Any) -> None:
        """Emit one explicit ``mark`` event to the sink.

        Marks inherit the trace context of the innermost open span (or
        the ambient :func:`~repro.obs.tracing.activate_trace` context),
        recorded as ``trace_id``/``parent_id``, so explicit events join
        the same causal tree as spans.
        """
        event: Dict[str, Any] = {"type": "mark", "name": name}
        if self._span_stack:
            _, trace_id, span_id = self._span_stack[-1]
            event["trace_id"], event["parent_id"] = trace_id, span_id
        else:
            context = current_trace()
            if context is not None:
                event["trace_id"] = context.trace_id
                event["parent_id"] = context.span_id
        if fields:
            event["fields"] = fields
        self.sink.emit(event)

    # ------------------------------------------------------------------
    # Snapshots and lifecycle
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Deterministic totals (counters summed, gauges peaked,
        histogram ``{count, sum}`` per child).

        This is the view campaign records persist: protocol-determined
        values only, independent of wall clock and worker count (see
        :meth:`~repro.obs.metrics.MetricsRegistry.summary` for the
        wall-derived-histogram carve-out).
        """
        return self.registry.summary()

    def render(self) -> str:
        """The registry in Prometheus text-exposition format."""
        return render_registry(self.registry)

    def finalize(self, textfile: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
        """End-of-process bookkeeping; returns the final summary.

        Emits a ``snapshot`` event (full metric snapshot + flat summary)
        to the sink, closes it, and — when ``textfile`` is given —
        writes the rendered Prometheus textfile there.
        """
        summary = self.summary()
        self.sink.emit({
            "type": "snapshot",
            "summary": summary,
            "metrics": self.registry.snapshot(),
        })
        self.sink.close()
        if textfile is not None:
            path = Path(textfile)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(self.render(), encoding="utf-8")
        return summary


class NullTelemetry:
    """Disabled telemetry: every operation is a cheap no-op.

    Mirrors the :class:`Telemetry` surface so instrumented code never
    branches — it calls the same methods and nothing happens.  The
    metric accessors return a shared :class:`_NullMetric` that swallows
    ``inc``/``set``/``observe``.
    """

    enabled = False

    def __init__(self) -> None:
        self.registry = None
        self.sink = NullSink()
        self.ids = None
        self._span_stack: list = []

    def counter(self, *args: Any, **kwargs: Any) -> "_NullMetric":
        """A no-op metric handle."""
        return _NULL_METRIC

    gauge = counter
    histogram = counter

    def span(self, name: str, **attrs: Any) -> NullSpan:
        """The shared no-op span."""
        return NULL_SPAN

    def mark(self, name: str, **fields: Any) -> None:
        """Discarded."""

    def summary(self) -> Dict[str, float]:
        """Always empty."""
        return {}

    def render(self) -> str:
        """Always empty."""
        return ""

    def finalize(self, textfile: Optional[Union[str, Path]] = None) -> Dict[str, float]:
        """No-op; returns the empty summary."""
        return {}


class _NullMetric:
    """Accepts any recording call and does nothing."""

    __slots__ = ()

    def inc(self, *args: Any, **kwargs: Any) -> None:
        return None

    def set(self, *args: Any, **kwargs: Any) -> None:
        return None

    def set_max(self, *args: Any, **kwargs: Any) -> None:
        return None

    def observe(self, *args: Any, **kwargs: Any) -> None:
        return None

    def value(self, *args: Any, **kwargs: Any) -> float:
        return 0

    def total(self) -> float:
        return 0


_NULL_METRIC = _NullMetric()

#: The shared disabled instance (the process-global default).
NULL_TELEMETRY = NullTelemetry()

_GLOBAL: Any = NULL_TELEMETRY


def get_telemetry() -> Any:
    """The process-global telemetry (disabled unless explicitly set)."""
    return _GLOBAL


def set_telemetry(telemetry: Optional[Any]) -> Any:
    """Install ``telemetry`` as the process global; returns the previous.

    ``None`` restores the disabled default.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


def resolve_telemetry(telemetry: Optional[Any]) -> Any:
    """Resolution rule used by every instrumented layer:
    explicit argument > process global (which defaults to disabled)."""
    return telemetry if telemetry is not None else _GLOBAL

"""Structured JSONL event sink and its reader/summarizer.

Telemetry events (span completions, explicit marks, the final metrics
snapshot) are appended as one JSON object per line — the same
append-only discipline as the campaign stores, so a crashed run leaves
a readable prefix.  :func:`read_events` tolerates a torn final line for
exactly that reason; anything else malformed is an error.

``repro obs report --events <path>`` renders the summary computed by
:func:`summarize_events`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..errors import ReproError

__all__ = [
    "EventLogError",
    "JsonlSink",
    "ListSink",
    "NullSink",
    "read_events",
    "summarize_events",
]


class EventLogError(ReproError):
    """A JSONL event log was malformed beyond the torn-tail allowance."""


class NullSink:
    """Swallows events; the sink of disabled telemetry."""

    def emit(self, event: Dict[str, Any]) -> None:
        """Discard ``event``."""

    def close(self) -> None:
        """No-op."""


class ListSink:
    """Collect events in memory (tests and in-process join checks).

    The load generator's in-process mode hands the server harness a
    telemetry built on one of these so its wide events can be joined
    against client rows without going through the filesystem.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        """Append ``event`` to :attr:`events`."""
        self.events.append(event)

    def close(self) -> None:
        """No-op (the list stays readable after close)."""


class JsonlSink:
    """Append events to a JSONL file, one canonical object per line.

    The file (and its parent directory) is created lazily on the first
    event, so constructing telemetry never touches the filesystem.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None
        self.events_written = 0

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one event as a canonical (sorted-key) JSON line."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL event log; a torn *final* line is silently dropped.

    A malformed line anywhere else raises :class:`EventLogError` with
    its line number — that is corruption, not an interrupted run.
    """
    p = Path(path)
    if not p.exists():
        raise EventLogError(f"no event log at {str(p)!r}")
    lines = p.read_text(encoding="utf-8").splitlines()
    events: List[Dict[str, Any]] = []
    last = len(lines)
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == last:
                break  # torn tail from an interrupted writer
            raise EventLogError(f"{p}:{lineno}: corrupt event line ({exc})") from exc
    return events


def summarize_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate an event stream: per-span stats + the last snapshot.

    Returns ``{"events", "spans", "marks", "metrics"}`` where ``spans``
    maps span name to ``{count, total_ms, max_ms, mean_ms}``, ``marks``
    counts explicit events by name, and ``metrics`` is the flat summary
    carried by the final ``snapshot`` event (empty if none was written).
    """
    spans: Dict[str, Dict[str, float]] = {}
    marks: Dict[str, int] = {}
    metrics: Dict[str, Any] = {}
    for event in events:
        kind = event.get("type")
        if kind == "span":
            name = str(event.get("name"))
            elapsed = float(event.get("elapsed_ms", 0.0))
            stats = spans.setdefault(name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
            stats["count"] += 1
            stats["total_ms"] += elapsed
            if elapsed > stats["max_ms"]:
                stats["max_ms"] = elapsed
        elif kind == "mark":
            name = str(event.get("name"))
            marks[name] = marks.get(name, 0) + 1
        elif kind == "snapshot":
            metrics = dict(event.get("summary") or {})
    for stats in spans.values():
        stats["mean_ms"] = (
            stats["total_ms"] / stats["count"] if stats["count"] else 0.0
        )
    return {
        "events": len(events),
        "spans": spans,
        "marks": marks,
        "metrics": metrics,
    }

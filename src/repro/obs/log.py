"""A small structured logger for CLI diagnostics.

The CLI used to sprinkle bare ``print`` calls for its diagnostic chatter
(instance parameters, progress notes).  They now flow through one
:class:`StructuredLogger`, so ``--quiet`` can silence them, ``--verbose``
can add debug detail, and every line has a uniform shape::

    # <message> key=value key=value

Diagnostics keep their historical leading ``# `` on stdout — they are
commentary a shell pipeline can strip with ``grep -v '^#'`` — while
*results* (verdicts, tables, file paths) remain plain ``print`` output
and are never suppressed.  Warnings and errors go to stderr regardless
of level, so ``--quiet`` never hides a problem.

The module-level :data:`LOG` is what the CLI configures from its
``--verbose``/``--quiet`` flags; library code should not log (it records
telemetry instead).
"""

from __future__ import annotations

import sys
from typing import Any, Optional, TextIO

__all__ = ["LEVELS", "LOG", "StructuredLogger", "configure", "get_logger"]

#: Numeric severities, ascending.
LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}


def _format_fields(fields: Any) -> str:
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


class StructuredLogger:
    """Leveled ``message + fields`` logging with a quiet/verbose switch."""

    def __init__(
        self,
        level: str = "info",
        stream: Optional[TextIO] = None,
        err_stream: Optional[TextIO] = None,
    ) -> None:
        self.configure(level=level, stream=stream, err_stream=err_stream)

    def configure(
        self,
        *,
        verbose: bool = False,
        quiet: bool = False,
        level: Optional[str] = None,
        stream: Optional[TextIO] = None,
        err_stream: Optional[TextIO] = None,
    ) -> "StructuredLogger":
        """(Re)configure; ``verbose``/``quiet`` beat an explicit level."""
        if level is None:
            level = "info"
        if verbose:
            level = "debug"
        if quiet:
            level = "warn"
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
            )
        self.level = level
        self._threshold = LEVELS[level]
        self._stream = stream
        self._err_stream = err_stream
        return self

    # ------------------------------------------------------------------
    def enabled_for(self, level: str) -> bool:
        """Whether messages at ``level`` currently pass the threshold."""
        return LEVELS[level] >= self._threshold

    def _emit(self, level: str, message: str, fields: Any) -> None:
        if not self.enabled_for(level):
            return
        tail = _format_fields(fields)
        line = message if not tail else f"{message} {tail}"
        if level in ("warn", "error"):
            stream = self._err_stream or sys.stderr
            print(f"{level}: {line}", file=stream)
        else:
            # Diagnostics keep the historical '# ' comment prefix.
            stream = self._stream or sys.stdout
            print(f"# {line}", file=stream)

    def debug(self, message: str, **fields: Any) -> None:
        """Verbose-only diagnostic (shown under ``--verbose``)."""
        self._emit("debug", message, fields)

    def info(self, message: str, **fields: Any) -> None:
        """Default diagnostic commentary (hidden under ``--quiet``)."""
        self._emit("info", message, fields)

    def warn(self, message: str, **fields: Any) -> None:
        """Problem worth seeing even under ``--quiet`` (stderr)."""
        self._emit("warn", message, fields)

    def error(self, message: str, **fields: Any) -> None:
        """Failure diagnostic (stderr, never suppressed)."""
        self._emit("error", message, fields)


#: The CLI's logger; ``repro --verbose/--quiet`` configure it.
LOG = StructuredLogger()


def get_logger() -> StructuredLogger:
    """The shared CLI logger."""
    return LOG


def configure(**kwargs: Any) -> StructuredLogger:
    """Configure the shared logger (see
    :meth:`StructuredLogger.configure`)."""
    return LOG.configure(**kwargs)

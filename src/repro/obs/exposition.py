"""Prometheus text exposition: rendering and a strict round-trip parser.

:func:`render_textfile` serialises a :class:`~repro.obs.metrics.
MetricsRegistry` in the Prometheus text format (version 0.0.4) — the
format the ROADMAP's detection-as-a-service daemon will serve from its
``/metrics`` endpoint, and the one node_exporter's textfile collector
ingests from disk.  Histograms render with cumulative ``_bucket`` series
(``le`` label, ``+Inf`` last), ``_sum`` and ``_count``, exactly as
Prometheus clients do.

:func:`parse_textfile` is the strict inverse used by the tests: it
re-reads a rendered file into :class:`ParsedMetric` values and
*validates* the invariants renderers can silently break — ``TYPE``
before samples, no duplicate series, bucket cumulativity and
``_count``/``+Inf`` agreement.  ``render → parse → render`` must be a
fixed point (asserted by ``tests/test_obs_exposition.py`` and the
``obs`` benchmark area), so the exposition surface cannot drift without
a test noticing.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "ExpositionError",
    "ParsedMetric",
    "parse_textfile",
    "render_registry",
    "render_textfile",
]


class ExpositionError(ReproError):
    """A textfile violated the exposition format or its invariants."""


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    """Canonical sample value: integral floats render without a dot."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def render_registry(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text format (families sorted by name)."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, (Counter, Gauge)):
            for key, value in family.samples():
                labels = _format_labels(list(zip(family.labelnames, key)))
                lines.append(f"{family.name}{labels} {_format_value(value)}")
        elif isinstance(family, Histogram):
            for key, value in family.samples():
                base = list(zip(family.labelnames, key))
                bounds = [_format_value(b) for b in value["buckets"]]
                for bound, cumulative in zip(bounds + ["+Inf"], value["cumulative"]):
                    labels = _format_labels(base + [("le", bound)])
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                labels = _format_labels(base)
                lines.append(f"{family.name}_sum{labels} {_format_value(value['sum'])}")
                lines.append(f"{family.name}_count{labels} {value['count']}")
        else:  # pragma: no cover - registry only creates the three kinds
            raise ExpositionError(f"cannot render metric kind {family.kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


#: Alias under the name the docs and CLI use ("render the textfile").
render_textfile = render_registry


@dataclass
class ParsedMetric:
    """One metric family re-read from a textfile."""

    name: str
    kind: str
    help: str = ""
    #: ``(sample_name, label pairs, value)`` in file order.  For plain
    #: counters/gauges the sample name equals the family name; histograms
    #: additionally carry ``<name>_bucket`` / ``_sum`` / ``_count``.
    samples: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = field(
        default_factory=list
    )

    def series(
        self, suffix: str = ""
    ) -> List[Tuple[Tuple[Tuple[str, str], ...], float]]:
        """Samples of ``<name><suffix>`` (empty list when absent)."""
        wanted = self.name + suffix
        return [
            (labels, value)
            for sample_name, labels, value in self.samples
            if sample_name == wanted
        ]


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"{where}: invalid sample value {text!r}") from None


def _parse_labels(text: str, where: str) -> Tuple[Tuple[str, str], ...]:
    pairs: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR_RE.match(text, pos)
        if match is None:
            raise ExpositionError(f"{where}: malformed labels {text!r}")
        pairs.append((match.group("name"), _unescape(match.group("value"))))
        pos = match.end()
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise ExpositionError(f"{where}: duplicate label names in {text!r}")
    return tuple(pairs)


def _family_of(sample_name: str, families: Dict[str, ParsedMetric]) -> Optional[str]:
    """Resolve a sample name to its declaring family (histogram suffixes)."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base].kind == "histogram":
                return base
    return None


def parse_textfile(text: str) -> Dict[str, ParsedMetric]:
    """Parse and validate a Prometheus textfile; ``{name: ParsedMetric}``.

    Strictness (each violation raises :class:`ExpositionError`):

    * every sample must follow a ``# TYPE`` declaration of its family;
    * duplicate ``TYPE`` declarations and duplicate series are rejected;
    * histogram children must carry ``le`` buckets ending in ``+Inf``,
      with non-decreasing cumulative counts that agree with ``_count``.
    """
    families: Dict[str, ParsedMetric] = {}
    pending_help: Dict[str, str] = {}
    seen_series: set = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        where = f"line {lineno}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                pending_help[parts[2]] = _unescape(parts[3] if len(parts) > 3 else "")
            elif len(parts) >= 3 and parts[1] == "TYPE":
                name = parts[2]
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "untyped"):
                    raise ExpositionError(f"{where}: unknown metric type {kind!r}")
                if name in families:
                    raise ExpositionError(f"{where}: duplicate TYPE for {name!r}")
                families[name] = ParsedMetric(
                    name=name, kind=kind, help=pending_help.pop(name, "")
                )
            # other comments are ignored, as the format requires
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"{where}: malformed sample {line!r}")
        sample_name = match.group("name")
        family_name = _family_of(sample_name, families)
        if family_name is None:
            raise ExpositionError(
                f"{where}: sample {sample_name!r} has no preceding TYPE"
            )
        labels = _parse_labels(match.group("labels") or "", where)
        series_key = (sample_name, labels)
        if series_key in seen_series:
            raise ExpositionError(
                f"{where}: duplicate series {sample_name}{dict(labels)!r}"
            )
        seen_series.add(series_key)
        value = _parse_value(match.group("value"), where)
        families[family_name].samples.append((sample_name, labels, value))
    for family in families.values():
        if family.kind == "histogram":
            _validate_histogram(family)
    return families


def _validate_histogram(family: ParsedMetric) -> None:
    """Check bucket cumulativity and the ``_count``/``+Inf`` agreement."""
    by_child: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
    for labels, value in family.series("_bucket"):
        le = dict(labels).get("le")
        if le is None:
            raise ExpositionError(
                f"histogram {family.name!r}: bucket sample without le label"
            )
        base = tuple(pair for pair in labels if pair[0] != "le")
        by_child.setdefault(base, []).append(
            (_parse_value(le, f"histogram {family.name!r}"), value)
        )
    counts = {tuple(labels): value for labels, value in family.series("_count")}
    if set(counts) != set(by_child):
        raise ExpositionError(
            f"histogram {family.name!r}: _count series do not match buckets"
        )
    for base, buckets in by_child.items():
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            raise ExpositionError(
                f"histogram {family.name!r}: bucket bounds out of order"
            )
        if not bounds or not math.isinf(bounds[-1]):
            raise ExpositionError(f"histogram {family.name!r}: missing +Inf bucket")
        values = [v for _, v in buckets]
        if any(v2 < v1 for v1, v2 in zip(values, values[1:])):
            raise ExpositionError(
                f"histogram {family.name!r}: cumulative counts decrease"
            )
        if values[-1] != counts[base]:
            raise ExpositionError(
                f"histogram {family.name!r}: +Inf bucket ({values[-1]:g}) "
                f"!= _count ({counts[base]:g})"
            )


def render_parsed(families: Dict[str, ParsedMetric]) -> str:
    """Re-render parsed metrics (the round-trip fixed-point check)."""
    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample_name, labels, value in family.samples:
            lines.append(
                f"{sample_name}{_format_labels(list(labels))} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def registry_equals_parsed(
    registry: MetricsRegistry, families: Dict[str, ParsedMetric]
) -> bool:
    """Whether a parsed textfile carries exactly the registry's data."""
    return render_registry(registry) == render_parsed(families)

"""Metrics registry: counters, gauges and fixed-bucket histograms.

The paper's claims are quantitative — round counts, per-edge bandwidth,
error probability — so the reproduction keeps one uniform measurement
vocabulary instead of ad-hoc counter structs per subsystem:

* :class:`Counter` — monotone event totals (rounds executed, messages
  delivered, cache hits).  Integer-deterministic under fixed seeds, so
  campaign stores and benchmark baselines may gate on them exactly.
* :class:`Gauge` — point-in-time or high-water values (max message bits
  of a run).
* :class:`Histogram` — fixed-bucket distributions with cumulative
  Prometheus semantics and conservative p50/p99 summaries (ball-recheck
  sizes, span latencies).

All three support *labels*: a metric family declares its label names at
registration and every distinct label-value combination becomes one
child time series (``engine="reference"`` vs ``engine="fast"``).

A :class:`MetricsRegistry` owns the families, deduplicates registration
(get-or-create; conflicting re-registration is a
:class:`~repro.errors.ConfigurationError`) and renders deterministic
snapshots.  Prometheus text exposition lives in
:mod:`repro.obs.exposition`; the process-global wiring in
:mod:`repro.obs.telemetry`.

Everything here is pure Python with zero dependencies and no hidden
clock or RNG access — recording a metric can never perturb a protocol's
random stream, which is what makes the telemetry-off/on verdict
identity guarantee structural (see ``tests/test_obs_integration.py``).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
]

#: Metric and label names follow the Prometheus data model.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Log-spaced seconds buckets for span latencies (100µs .. 10s).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Power-of-two buckets for cardinalities (ball sizes, sequence counts).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1024,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    out = tuple(labelnames)
    for label in out:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ConfigurationError(f"invalid label name {label!r}")
    if len(set(out)) != len(out):
        raise ConfigurationError(f"duplicate label names in {out!r}")
    return out


class MetricFamily:
    """One named metric family: fixed type, help text and label names.

    Children (one per label-value combination) are created lazily on
    first use; the unlabeled family has a single child keyed ``()``.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._children: Dict[Tuple[str, ...], Any] = {}

    # ------------------------------------------------------------------
    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _child(self, key: Tuple[str, ...]) -> Any:
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self) -> Any:  # pragma: no cover - subclasses override
        raise NotImplementedError

    # ------------------------------------------------------------------
    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """``(label_values, child_value)`` pairs, sorted by label values."""
        return [
            (key, self._child_value(self._children[key]))
            for key in sorted(self._children)
        ]

    def _child_value(self, child: Any) -> Any:
        return child

    def describe(self) -> Dict[str, Any]:
        """Static description (name/kind/help/labels) for listings."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
        }


class Counter(MetricFamily):
    """Monotonically increasing totals (per label-value child)."""

    kind = "counter"

    def _new_child(self) -> List[float]:
        return [0]

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to the child selected by ``labels``."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._child(self._key(labels))[0] += amount

    def value(self, **labels: Any) -> float:
        """Current value of one child (0 if never incremented)."""
        child = self._children.get(self._key(labels))
        return child[0] if child is not None else 0

    def total(self) -> float:
        """Sum across all children."""
        return sum(child[0] for child in self._children.values())

    def _child_value(self, child: List[float]) -> float:
        return child[0]


class Gauge(MetricFamily):
    """Settable point-in-time values, with a high-water helper."""

    kind = "gauge"

    def _new_child(self) -> List[float]:
        return [0]

    def set(self, value: float, **labels: Any) -> None:
        """Set one child to ``value``."""
        self._child(self._key(labels))[0] = value

    def set_max(self, value: float, **labels: Any) -> None:
        """Raise one child to ``value`` if it is below (high-water mark)."""
        child = self._child(self._key(labels))
        if value > child[0]:
            child[0] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to one child."""
        self._child(self._key(labels))[0] += amount

    def value(self, **labels: Any) -> float:
        """Current value of one child (0 if never set)."""
        child = self._children.get(self._key(labels))
        return child[0] if child is not None else 0

    def total(self) -> float:
        """Max across children (a gauge family's headline is its peak)."""
        return max((child[0] for child in self._children.values()), default=0)

    def _child_value(self, child: List[float]) -> float:
        return child[0]


class _HistogramChild:
    """Cumulative bucket counts plus sum/count/max for one time series."""

    __slots__ = ("bucket_counts", "count", "sum", "max")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # + the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0


class Histogram(MetricFamily):
    """Fixed-bucket distribution with Prometheus cumulative semantics.

    ``buckets`` are the finite upper bounds, strictly increasing; a
    ``+Inf`` bucket is always appended.  :meth:`quantile` answers from
    bucket boundaries (conservative: the upper bound of the bucket the
    quantile falls in, clamped to the observed maximum), which is the
    usual fixed-bucket p50/p99 estimate — exact ranks would require
    keeping every observation.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(len(self.buckets))

    def observe(self, value: float, **labels: Any) -> None:
        """Fold one observation into the child selected by ``labels``."""
        child = self._child(self._key(labels))
        child.count += 1
        child.sum += value
        if value > child.max:
            child.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                child.bucket_counts[i] += 1
                return
        child.bucket_counts[-1] += 1

    # ------------------------------------------------------------------
    def _resolve(self, labels: Mapping[str, Any]) -> Optional[_HistogramChild]:
        return self._children.get(self._key(labels))

    def count(self, **labels: Any) -> int:
        """Observations folded into one child."""
        child = self._resolve(labels)
        return child.count if child is not None else 0

    def quantile(self, q: float, **labels: Any) -> float:
        """Bucket-boundary quantile estimate for one child.

        Returns 0.0 for an empty child.  Observations above the largest
        finite bound report the observed maximum (the +Inf bucket has no
        finite boundary to answer with).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0,1], got {q}")
        child = self._resolve(labels)
        if child is None or child.count == 0:
            return 0.0
        rank = q * child.count
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            cumulative += child.bucket_counts[i]
            if cumulative >= rank and cumulative > 0:
                return min(bound, child.max)
        return child.max

    def summary(self, **labels: Any) -> Dict[str, float]:
        """``{count, sum, p50, p99}`` for one child."""
        child = self._resolve(labels)
        return {
            "count": child.count if child else 0,
            "sum": child.sum if child else 0.0,
            "p50": self.quantile(0.5, **labels),
            "p99": self.quantile(0.99, **labels),
        }

    def _child_value(self, child: _HistogramChild) -> Dict[str, Any]:
        cumulative: List[int] = []
        running = 0
        for c in child.bucket_counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "cumulative": cumulative,
            "count": child.count,
            "sum": child.sum,
        }


class MetricsRegistry:
    """Owns metric families; get-or-create registration, stable snapshots."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _register(
        self,
        cls,
        name: str,
        help: str,
        labelnames: Sequence[str],
        **kwargs: Any,
    ):
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {cls.kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise ConfigurationError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames!r}, requested {tuple(labelnames)!r}"
                )
            return existing
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` family (buckets fixed at
        first registration)."""
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        """All registered families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily:
        """Look up one family by name."""
        try:
            return self._families[name]
        except KeyError:
            raise ConfigurationError(
                f"no metric named {name!r} is registered"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic nested view: name -> description + samples.

        Samples are keyed by the canonical ``label=value`` joined string
        (empty string for the unlabeled child), values are numbers for
        counters/gauges and bucket dicts for histograms.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for family in self.families():
            samples = {
                ",".join(f"{n}={v}" for n, v in zip(family.labelnames, key)): value
                for key, value in family.samples()
            }
            out[family.name] = {**family.describe(), "samples": samples}
        return out

    def counter_totals(self) -> Dict[str, float]:
        """``{name: total}`` over every counter family (delta tracking)."""
        return {
            family.name: family.total()
            for family in self.families()
            if isinstance(family, Counter)
        }

    def summary(self) -> Dict[str, Any]:
        """Deterministic totals: counters summed, gauges peaked, and
        per-child histogram ``{count, sum}`` mappings.

        This summary is what campaign records persist and byte-identity
        tests compare, so only protocol-determined values may appear.
        Histogram *counts* are always deterministic (one per
        observation); sums are too, except for wall-clock histograms —
        by convention every wall-derived family's name ends in
        ``_seconds`` (Prometheus unit suffix), and those children carry
        ``count`` only.
        """
        out: Dict[str, Any] = {}
        for family in self.families():
            if isinstance(family, (Counter, Gauge)):
                total = family.total()
                out[family.name] = int(total) if float(total).is_integer() else total
            elif isinstance(family, Histogram):
                wall = family.name.endswith("_seconds")
                children: Dict[str, Dict[str, Any]] = {}
                for key, value in family.samples():
                    label = ",".join(f"{n}={v}" for n, v in zip(family.labelnames, key))
                    entry: Dict[str, Any] = {"count": value["count"]}
                    if not wall:
                        total = value["sum"]
                        entry["sum"] = (
                            int(total) if float(total).is_integer() else total
                        )
                    children[label] = entry
                out[family.name] = children
        return out

    def clear(self) -> None:
        """Drop every family (test isolation)."""
        self._families.clear()

"""Span-style tracing: nestable timed phases with counter deltas.

A span brackets one phase of work::

    with telemetry.span("tester.run", k=5, engine="fast"):
        ...

On exit it knows three things and emits them as one ``span`` event to
the telemetry's sink:

* **wall clock** — elapsed milliseconds (``time.perf_counter``);
* **counter deltas** — how much every counter in the registry grew
  while the span was open (only non-zero deltas are recorded), so an
  event like ``tester.run`` carries "this run cost 18 rounds and 412
  messages" without the protocol code saying so twice;
* **nesting** — spans stack per telemetry object; each event records
  its depth and parent span name.

Span durations are additionally folded into the
``repro_span_seconds`` histogram (labeled by span name), which is where
the Prometheus exposition gets its p50/p99 phase latencies.

Spans never touch RNG state and a disabled telemetry's
:class:`NullSpan` does nothing at all, so tracing cannot perturb
verdicts (the bit-identity guarantee of :mod:`repro.obs.telemetry`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from .metrics import DEFAULT_LATENCY_BUCKETS

__all__ = ["NULL_SPAN", "NullSpan", "Span"]

#: Histogram family recording span durations (seconds, by span name).
SPAN_SECONDS = "repro_span_seconds"


class NullSpan:
    """The span of disabled telemetry: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


#: Shared instance — entering it allocates nothing.
NULL_SPAN = NullSpan()


class Span:
    """One live span; created by :meth:`Telemetry.span`, used as a
    context manager."""

    __slots__ = ("_telemetry", "name", "attrs", "_t0", "_counters0")

    def __init__(
        self, telemetry, name: str, attrs: Dict[str, Any]
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._counters0: Dict[str, float] = {}

    def __enter__(self) -> "Span":
        self._counters0 = self._telemetry.registry.counter_totals()
        self._telemetry._span_stack.append(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - self._t0
        telemetry = self._telemetry
        stack = telemetry._span_stack
        stack.pop()
        deltas = {
            name: total - self._counters0.get(name, 0)
            for name, total in telemetry.registry.counter_totals().items()
            if total != self._counters0.get(name, 0)
        }
        telemetry.registry.histogram(
            SPAN_SECONDS,
            "Span duration in seconds, by span name.",
            ("span",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).observe(elapsed, span=self.name)
        event: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "elapsed_ms": round(elapsed * 1e3, 3),
            "depth": len(stack),
        }
        if stack:
            event["parent"] = stack[-1]
        if self.attrs:
            event["attrs"] = self.attrs
        if deltas:
            event["deltas"] = {
                name: int(v) if float(v).is_integer() else v
                for name, v in sorted(deltas.items())
            }
        telemetry.sink.emit(event)


def current_span(telemetry) -> Optional[str]:
    """Name of the innermost open span of ``telemetry`` (or ``None``)."""
    stack = getattr(telemetry, "_span_stack", None)
    return stack[-1] if stack else None

"""Span-style tracing: nestable timed phases with causal trace context.

A span brackets one phase of work::

    with telemetry.span("tester.run", k=5, engine="fast"):
        ...

On exit it knows four things and emits them as one ``span`` event to
the telemetry's sink:

* **wall clock** — elapsed milliseconds (``time.perf_counter``);
* **counter deltas** — how much every counter in the registry grew
  while the span was open (only non-zero deltas are recorded), so an
  event like ``tester.run`` carries "this run cost 18 rounds and 412
  messages" without the protocol code saying so twice;
* **nesting** — spans stack per telemetry object; each event records
  its depth and parent span name;
* **trace context** — W3C-style ``trace_id`` / ``span_id`` /
  ``parent_id`` hex identifiers, so a span tree can be reconstructed
  across process boundaries (``repro obs trace``).

Trace identifiers come from a :class:`TraceIdSource` — a *seeded*
generator, never the protocol RNG — so traces are replayable and
tracing cannot perturb verdicts.  A root span (no enclosing span)
either joins the ambient :class:`TraceContext` installed by
:func:`activate_trace` (the service server installs one per request)
or starts a fresh trace of its own.

The ambient context lives in a :class:`contextvars.ContextVar`, so
concurrently handled asyncio requests each see their own trace.

Span durations are additionally folded into the
``repro_span_seconds`` histogram (labeled by span name), which is where
the Prometheus exposition gets its p50/p99 phase latencies.

Spans never touch RNG state and a disabled telemetry's
:class:`NullSpan` does nothing at all, so tracing cannot perturb
verdicts (the bit-identity guarantee of :mod:`repro.obs.telemetry`).
"""

from __future__ import annotations

import contextlib
import random
import re
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional

from .metrics import DEFAULT_LATENCY_BUCKETS

__all__ = [
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "TraceContext",
    "TraceIdSource",
    "activate_trace",
    "current_trace",
    "format_traceparent",
    "parse_traceparent",
]

#: Histogram family recording span durations (seconds, by span name).
SPAN_SECONDS = "repro_span_seconds"

#: Strict W3C ``traceparent`` shape: version, trace-id, parent-id, flags.
_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

_ZERO_TRACE_ID = "0" * 32
_ZERO_SPAN_ID = "0" * 16


class TraceIdSource:
    """Deterministic W3C trace/span id generator.

    Ids are drawn from a private ``random.Random(seed)`` — *never* the
    protocol RNG — so a fixed-seed run emits the same ids every time
    (replayable traces) while verdicts stay bit-identical with tracing
    on or off.
    """

    __slots__ = ("_rand",)

    def __init__(self, seed: int = 0) -> None:
        self._rand = random.Random(seed)

    def trace_id(self) -> str:
        """A fresh 32-hex-digit (128-bit) non-zero trace id."""
        while True:
            out = f"{self._rand.getrandbits(128):032x}"
            if out != _ZERO_TRACE_ID:
                return out

    def span_id(self) -> str:
        """A fresh 16-hex-digit (64-bit) non-zero span id."""
        while True:
            out = f"{self._rand.getrandbits(64):016x}"
            if out != _ZERO_SPAN_ID:
                return out


class TraceContext:
    """One ambient trace position: the trace and the current parent span.

    ``span_id`` names the span that any *new* root span should attach
    to — for the service server this is the per-request wide-event id.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def traceparent(self) -> str:
        """This context rendered as a W3C ``traceparent`` header value."""
        return format_traceparent(self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"


#: The ambient trace context; asyncio-task-local via contextvars.
_ACTIVE_TRACE: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext` of this task (or ``None``)."""
    return _ACTIVE_TRACE.get()


@contextlib.contextmanager
def activate_trace(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``context`` as the ambient trace for the enclosed block.

    Root spans opened inside the block join ``context``'s trace with
    ``context.span_id`` as their parent.  ``None`` deactivates tracing
    for the block (new root spans then start fresh traces).
    """
    token = _ACTIVE_TRACE.set(context)
    try:
        yield context
    finally:
        _ACTIVE_TRACE.reset(token)


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render ids as a version-00, sampled W3C ``traceparent`` value."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a W3C ``traceparent`` header into a :class:`TraceContext`.

    Returns ``None`` for anything invalid — missing, malformed,
    non-lowercase hex, the forbidden ``ff`` version, or all-zero ids —
    which per the W3C spec means the receiver must *restart* the trace
    with fresh ids rather than fail the request.  Never raises.
    """
    if not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    version, trace_id, span_id, _flags = match.groups()
    if version == "ff":
        return None
    if trace_id == _ZERO_TRACE_ID or span_id == _ZERO_SPAN_ID:
        return None
    return TraceContext(trace_id, span_id)


class NullSpan:
    """The span of disabled telemetry: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


#: Shared instance — entering it allocates nothing.
NULL_SPAN = NullSpan()


class Span:
    """One live span; created by :meth:`Telemetry.span`, used as a
    context manager.

    After ``__enter__`` the span knows its :attr:`trace_id`,
    :attr:`span_id` and :attr:`parent_id`: a nested span inherits the
    trace of (and is parented to) the enclosing span; a root span joins
    the ambient :func:`activate_trace` context if one is installed,
    otherwise it starts a fresh trace.
    """

    __slots__ = (
        "_telemetry",
        "name",
        "attrs",
        "_t0",
        "_counters0",
        "trace_id",
        "span_id",
        "parent_id",
    )

    def __init__(self, telemetry, name: str, attrs: Dict[str, Any]) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._counters0: Dict[str, float] = {}
        self.trace_id: str = ""
        self.span_id: str = ""
        self.parent_id: Optional[str] = None

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        self._counters0 = telemetry.registry.counter_totals()
        stack = telemetry._span_stack
        if stack:
            _, parent_trace, parent_span = stack[-1]
            self.trace_id, self.parent_id = parent_trace, parent_span
        else:
            context = _ACTIVE_TRACE.get()
            if context is not None:
                self.trace_id = context.trace_id
                self.parent_id = context.span_id
            else:
                self.trace_id = telemetry.ids.trace_id()
                self.parent_id = None
        self.span_id = telemetry.ids.span_id()
        stack.append((self.name, self.trace_id, self.span_id))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - self._t0
        telemetry = self._telemetry
        stack = telemetry._span_stack
        stack.pop()
        deltas = {
            name: total - self._counters0.get(name, 0)
            for name, total in telemetry.registry.counter_totals().items()
            if total != self._counters0.get(name, 0)
        }
        telemetry.registry.histogram(
            SPAN_SECONDS,
            "Span duration in seconds, by span name.",
            ("span",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).observe(elapsed, span=self.name)
        event: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "elapsed_ms": round(elapsed * 1e3, 3),
            "depth": len(stack),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }
        if stack:
            event["parent"] = stack[-1][0]
        if self.attrs:
            event["attrs"] = self.attrs
        if deltas:
            event["deltas"] = {
                name: int(v) if float(v).is_integer() else v
                for name, v in sorted(deltas.items())
            }
        telemetry.sink.emit(event)


def current_span(telemetry) -> Optional[str]:
    """Name of the innermost open span of ``telemetry`` (or ``None``)."""
    stack = getattr(telemetry, "_span_stack", None)
    return stack[-1][0] if stack else None

"""repro.obs — the unified telemetry layer.

The reproduction's claims are quantitative (round complexity, per-edge
bandwidth, cache-hit behaviour), so measurement is a first-class
subsystem rather than per-module counter structs:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  families with labels, owned by a :class:`MetricsRegistry`;
* :mod:`repro.obs.exposition` — Prometheus text rendering
  (:func:`render_textfile`) and the strict round-trip parser
  (:func:`parse_textfile`) that keeps it honest;
* :mod:`repro.obs.tracing` — nestable spans (wall clock + counter
  deltas) emitted as structured events;
* :mod:`repro.obs.events` — the JSONL event sink and its summarizer;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` bundle threaded
  through engines, tester, monitor and campaigns; process-global but
  injectable, **disabled by default** with a bit-identity guarantee;
* :mod:`repro.obs.log` — the CLI's structured diagnostic logger.

Quickstart::

    from repro.obs import Telemetry

    telemetry = Telemetry.to_jsonl("events.jsonl")
    with telemetry.span("experiment"):
        telemetry.counter("repro_demo_total", "Demo events.").inc()
    print(telemetry.render())        # Prometheus textfile
    telemetry.finalize()             # snapshot event + close the log

See ``docs/observability.md`` for the metric-name catalogue, label
conventions, span taxonomy and the instrumentation overhead budget.
"""

from .events import (
    EventLogError,
    JsonlSink,
    ListSink,
    NullSink,
    read_events,
    summarize_events,
)
from .exposition import (
    ExpositionError,
    ParsedMetric,
    parse_textfile,
    render_textfile,
)
from .log import LOG, StructuredLogger, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    resolve_telemetry,
    set_telemetry,
)
from .tracing import (
    NullSpan,
    Span,
    TraceContext,
    TraceIdSource,
    activate_trace,
    current_trace,
    format_traceparent,
    parse_traceparent,
)

__all__ = [
    "Counter",
    "EventLogError",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LOG",
    "ListSink",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullSink",
    "NullSpan",
    "NullTelemetry",
    "ParsedMetric",
    "Span",
    "StructuredLogger",
    "Telemetry",
    "TraceContext",
    "TraceIdSource",
    "activate_trace",
    "current_trace",
    "format_traceparent",
    "get_logger",
    "get_telemetry",
    "parse_textfile",
    "parse_traceparent",
    "read_events",
    "render_textfile",
    "resolve_telemetry",
    "set_telemetry",
    "summarize_events",
]

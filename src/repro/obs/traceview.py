"""Reconstruct, check and render span trees from JSONL event logs.

The service server emits one ``request`` wide event per HTTP request
and every span/mark event carries ``trace_id``/``span_id``/``parent_id``
(:mod:`repro.obs.tracing`), so an event log is a forest of causal
trees: request → session span → monitor span → engine spans.  This
module is the analysis half of that contract, behind
``repro obs trace``:

* :func:`group_traces` — bucket events by ``trace_id``;
* :func:`check_traces` — assert the parent/child invariants (unique
  span ids, resolvable parents, one wide event per trace) and return
  every violation found;
* :func:`slowest_requests` — the wide events ranked by duration;
* :func:`render_trace` / :func:`render_slowest` — ASCII span trees.

Everything operates on plain event dicts (the output of
:func:`repro.obs.events.read_events`), so the same functions check the
CI service-smoke artifacts and in-memory test sinks alike.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ReproError

__all__ = [
    "TraceCheckError",
    "check_traces",
    "group_traces",
    "render_slowest",
    "render_trace",
    "slowest_requests",
]

#: Event types that occupy a node in the causal tree.
_NODE_TYPES = ("request", "span")


class TraceCheckError(ReproError):
    """One or more trace invariants failed (``repro obs trace --check``)."""


def _traced(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The subset of ``events`` that carries a trace id."""
    return [e for e in events if e.get("trace_id")]


def group_traces(
    events: List[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    """Bucket traced events by ``trace_id`` (insertion-ordered)."""
    out: Dict[str, List[Dict[str, Any]]] = {}
    for event in _traced(events):
        out.setdefault(str(event["trace_id"]), []).append(event)
    return out


def check_traces(events: List[Dict[str, Any]]) -> List[str]:
    """Validate the causal invariants; returns the list of violations.

    Checked per trace:

    * span ids are globally unique across requests and spans;
    * every non-``None`` ``parent_id`` of a span or mark resolves to a
      request or span **in the same trace**;
    * a trace contains at most one ``request`` wide event, and when it
      has one, every span of the trace reaches it by following
      ``parent_id`` links (the acceptance invariant: a request's wide
      event is the root of everything it caused).

    An empty return value means the log is causally consistent.
    """
    problems: List[str] = []
    seen_span_ids: Dict[str, str] = {}
    for event in _traced(events):
        if event.get("type") in _NODE_TYPES:
            span_id = str(event.get("span_id"))
            if span_id in seen_span_ids:
                problems.append(
                    f"duplicate span_id {span_id} (traces "
                    f"{seen_span_ids[span_id]} and {event['trace_id']})"
                )
            else:
                seen_span_ids[span_id] = str(event["trace_id"])
    for trace_id, group in group_traces(events).items():
        nodes = {str(e["span_id"]): e for e in group if e.get("type") in _NODE_TYPES}
        requests = [e for e in group if e.get("type") == "request"]
        if len(requests) > 1:
            problems.append(
                f"trace {trace_id}: {len(requests)} wide events (want <= 1)"
            )
        root_id = str(requests[0]["span_id"]) if requests else None
        for event in group:
            parent_id = event.get("parent_id")
            if parent_id is None:
                continue
            if str(parent_id) not in nodes:
                kind = event.get("type")
                # A request's parent is the *client's* span, which lives
                # in the client run table, not this log.
                if kind != "request":
                    problems.append(
                        f"trace {trace_id}: {kind} "
                        f"{event.get('name', event.get('endpoint'))!r} has "
                        f"unresolvable parent_id {parent_id}"
                    )
        if root_id is not None:
            child_map: Dict[str, List[str]] = {}
            for span_id, node in nodes.items():
                parent_id = node.get("parent_id")
                if parent_id is not None:
                    child_map.setdefault(str(parent_id), []).append(span_id)
            reachable = {root_id}
            frontier = [root_id]
            while frontier:
                for child in child_map.get(frontier.pop(), []):
                    if child not in reachable:
                        reachable.add(child)
                        frontier.append(child)
            for event in group:
                if event.get("type") != "span":
                    continue
                if str(event["span_id"]) not in reachable:
                    problems.append(
                        f"trace {trace_id}: span {event.get('name')!r} does "
                        f"not chain to the request wide event"
                    )
    return problems


def slowest_requests(
    events: List[Dict[str, Any]], limit: int = 5
) -> List[Dict[str, Any]]:
    """The ``request`` wide events, slowest first, capped at ``limit``."""
    requests = [e for e in _traced(events) if e.get("type") == "request"]
    requests.sort(key=lambda e: -float(e.get("elapsed_ms", 0.0)))
    return requests[: max(0, limit)]


def _node_label(event: Dict[str, Any]) -> str:
    """One tree line for a request, span or mark event."""
    kind = event.get("type")
    if kind == "request":
        extra = ""
        if event.get("session"):
            extra = f" session={event['session']}"
        if event.get("actions"):
            acts = ",".join(
                f"{name}:{count}"
                for name, count in sorted(event["actions"].items())
            )
            extra += f" actions={acts}"
        return (
            f"{event.get('method')} {event.get('path')} -> "
            f"{event.get('status')} ({event.get('endpoint')}) "
            f"[{event.get('elapsed_ms', 0.0)}ms]{extra}"
        )
    if kind == "mark":
        return f"mark {event.get('name')}"
    return f"{event.get('name')} [{event.get('elapsed_ms', 0.0)}ms]"


def render_trace(events: List[Dict[str, Any]], trace_id: str) -> str:
    """Render one trace as an indented ASCII tree (roots first)."""
    group = group_traces(events).get(str(trace_id), [])
    if not group:
        return f"trace {trace_id}: no events"
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    node_ids = {str(e["span_id"]) for e in group if e.get("type") in _NODE_TYPES}
    for event in group:
        parent = event.get("parent_id")
        key = str(parent) if parent is not None and str(parent) in node_ids else None
        children.setdefault(key, []).append(event)
    lines = [f"trace {trace_id}"]

    def walk(parent_key: Optional[str], depth: int) -> None:
        for event in children.get(parent_key, []):
            lines.append("  " * (depth + 1) + "- " + _node_label(event))
            if event.get("type") in _NODE_TYPES:
                walk(str(event["span_id"]), depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def render_slowest(events: List[Dict[str, Any]], limit: int = 5) -> str:
    """Render the ``limit`` slowest requests as full span trees."""
    requests = slowest_requests(events, limit)
    if not requests:
        traces = group_traces(events)
        if not traces:
            return "no traced events"
        return "\n\n".join(render_trace(events, trace_id) for trace_id in traces)
    return "\n\n".join(render_trace(events, str(e["trace_id"])) for e in requests)

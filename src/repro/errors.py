"""Exception hierarchy for the ``repro`` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class CongestError(ReproError):
    """Raised for violations of the CONGEST simulation contract."""


class BandwidthExceededError(CongestError):
    """Raised (in strict mode) when a message exceeds the per-round budget."""

    def __init__(self, round_index: int, edge: tuple, bits: int, budget: int):
        self.round_index = round_index
        self.edge = edge
        self.bits = bits
        self.budget = budget
        super().__init__(
            f"round {round_index}: message on edge {edge} uses {bits} bits, "
            f"budget is {budget} bits"
        )


class ProtocolError(ReproError):
    """Raised when a node program violates the scheduler protocol."""


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied parameters (k, epsilon, ...)."""


class EngineUnavailableError(ConfigurationError):
    """Raised when a requested scheduler engine cannot run here.

    Carries a human-readable remedy (e.g. ``pip install repro-cycles[fast]``
    when the ``fast`` engine is requested without numpy installed); the CLI
    turns it into a clean one-line error instead of a traceback.
    """

"""The second §4 obstruction: *induced* cycles.

The conclusion also notes the technique does not extend to induced
subgraph detection: "our pruning mechanism is not adapted to detect an
induced cycle.  It may well discard a sequence corresponding to the
induced cycle, and keep a sequence with chords."

We realise this constructively, mirroring :mod:`repro.extensions.chorded`
but with the roles swapped: the construction plants chords on exactly the
candidates the pruning keeps, so an induced k-cycle through the probe
edge exists while every surviving witness is chorded.  Even an
*oracle-assisted* detector — one allowed to check the witnessed cycle for
chords with full knowledge of the graph — must answer "no induced cycle
seen", because the pruning already discarded the only induced witnesses.
This is a strictly stronger failure than the chorded case: no amount of
local post-processing of Algorithm 1's output can fix it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.algorithm1 import detect_cycle_through_edge
from ..errors import ConfigurationError
from ..graphs.cycles import cycles_through_edge
from ..graphs.graph import Graph
from .chorded import cycle_has_chord

__all__ = [
    "has_induced_cycle_through_edge",
    "witnessed_cycles",
    "oracle_assisted_induced_detect",
    "build_induced_obstruction_instance",
]


def has_induced_cycle_through_edge(g: Graph, edge: Tuple[int, int], k: int) -> bool:
    """Centralized oracle: some *chordless* k-cycle passes through edge."""
    if k < 4:
        raise ConfigurationError("induced-cycle questions need k >= 4")
    for path in cycles_through_edge(g, edge, k):
        if not cycle_has_chord(g, path):
            return True
    return False


def witnessed_cycles(g: Graph, edge: Tuple[int, int], k: int) -> List[Tuple[int, ...]]:
    """All cycle witnesses produced by Algorithm 1's rejecting nodes
    (vertex tuples under identity IDs)."""
    det = detect_cycle_through_edge(g, edge, k)
    out = []
    for v in sorted(det.rejecting_vertices):
        cyc = det.outcomes[v].cycle
        if cyc is not None:
            out.append(cyc)
    return out


def oracle_assisted_induced_detect(
    g: Graph, edge: Tuple[int, int], k: int
) -> Tuple[bool, Optional[Tuple[int, ...]]]:
    """The strongest detector Algorithm 1's output permits: collect every
    witnessed cycle and check each for chordlessness *with full graph
    knowledge*.  Returns ``(induced_cycle_certified, witness_or_None)``.

    On the obstruction instances this returns ``(False, None)`` although
    an induced k-cycle through the edge exists — the §4 point.
    """
    if k < 4:
        raise ConfigurationError("induced-cycle questions need k >= 4")
    for cyc in witnessed_cycles(g, edge, k):
        if not cycle_has_chord(g, cyc):
            return True, cyc
    return False, None


def build_induced_obstruction_instance(k: int) -> Tuple[Graph, Tuple[int, int]]:
    """A graph + probe edge where induced-Ck detection via Algorithm 1's
    witnesses is impossible.

    The skeleton matches
    :func:`repro.extensions.chorded.build_obstruction_instance` — probe
    edge {u, v}, ``k`` candidate second-vertices funnelling into a relay,
    then a tail to v — but here chords ``a_i — w_1`` are added for every
    candidate the relay's pruning *keeps* (the ``k − 2`` smallest), while
    the two discarded candidates stay chordless.  Hence: the only induced
    k-cycles through {u, v} run through discarded candidates; every
    surviving witness is chorded.  Works for k >= 6.
    """
    if k < 6:
        raise ConfigurationError("the obstruction construction needs k >= 6")
    num_candidates = k
    g = Graph(2 + num_candidates + 1 + (k - 4), [(0, 1)])
    cands = list(range(2, 2 + num_candidates))
    relay = 2 + num_candidates
    for a in cands:
        g.add_edge(0, a)
        g.add_edge(a, relay)
    prev = relay
    first_tail = None
    for i in range(k - 4):
        w = 2 + num_candidates + 1 + i
        if first_tail is None:
            first_tail = w
        g.add_edge(prev, w)
        prev = w
    g.add_edge(prev, 1)
    assert first_tail is not None  # k >= 6 implies a non-empty tail
    # Chord every candidate the relay keeps (the k-2 smallest IDs); the
    # two largest stay chordless and are exactly the ones pruned away.
    for a in cands[: num_candidates - 2]:
        g.add_edge(a, first_tail)
    return g, (0, 1)

"""Simultaneous testing of several cycle lengths (motif scanning).

Runs one :class:`MultiplexedCkProgram` per requested ``k`` inside a
single lock-step execution of ``1 + max⌊k/2⌋`` rounds, multiplexing the
per-k messages the same way :mod:`repro.extensions.parallel_reps`
multiplexes repetitions.  Message sizes grow by a factor ``|ks|`` — fine
in CONGEST for a constant number of lengths (each is O_k(log n) bits).

This is the natural protocol behind `examples/motif_scan.py`: a network
operator asking "which of C3..C8 do we contain?" pays the rounds of the
*largest* k only.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..congest.network import Network
from ..congest.node import Broadcast, NodeContext, NodeProgram, Outbox
from ..congest.scheduler import SynchronousScheduler
from ..core.algorithm1 import DetectionOutcome
from ..core.phase1 import MultiplexedCkProgram, protocol_rounds
from ..core.pruning import Pruner
from ..errors import ConfigurationError
from ..graphs.graph import Graph

__all__ = ["MultiKProgram", "MultiKResult", "scan_cycle_lengths"]


class MultiKProgram(NodeProgram):
    """One sub-program per cycle length, sharing the rounds.

    Sub-programs for small k finish early (their protocol has fewer
    rounds); their messages simply stop, which is safe because every
    per-k message stream is self-contained.
    """

    def __init__(
        self,
        ctx: NodeContext,
        ks: Sequence[int],
        master_seed: int,
        pruner: Optional[Pruner] = None,
    ) -> None:
        if not ks:
            raise ConfigurationError("need at least one cycle length")
        if len(set(ks)) != len(ks):
            raise ConfigurationError("cycle lengths must be distinct")
        self._ks = tuple(ks)
        self._subs: Dict[int, MultiplexedCkProgram] = {
            k: MultiplexedCkProgram(
                ctx, k, (master_seed * 1_000_003 + k) & 0x7FFFFFFF, pruner=pruner
            )
            for k in ks
        }
        self._rounds: Dict[int, int] = {k: protocol_rounds(k) for k in ks}
        self._verdicts: Dict[int, DetectionOutcome] = {}

    def _merge(self, ctx: NodeContext, per_k: Dict[int, Outbox]) -> Outbox:
        merged: Dict[int, Dict[int, object]] = {}
        for k, out in per_k.items():
            if out is None:
                continue
            if isinstance(out, Broadcast):
                targets = {nb: out.message for nb in ctx.neighbor_ids}
            elif isinstance(out, Mapping):
                targets = dict(out)
            else:  # pragma: no cover
                raise ConfigurationError(f"unexpected outbox {type(out)}")
            for nb, msg in targets.items():
                if msg is None:
                    continue
                merged.setdefault(nb, {})[k] = msg
        return merged if merged else None

    @staticmethod
    def _split(inbox: Dict, k: int) -> Dict[int, object]:
        view = {}
        for sender, payload in inbox.items():
            if isinstance(payload, dict) and k in payload:
                view[sender] = payload[k]
        return view

    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: rank rounds of every sub-protocol, multiplexed."""
        return self._merge(ctx, {k: p.on_start(ctx) for k, p in self._subs.items()})

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Advance each sub-protocol that is still within its rounds."""
        outs: Dict[int, Outbox] = {}
        for k, p in self._subs.items():
            view = self._split(inbox, k)
            if round_index <= self._rounds[k]:
                outs[k] = p.on_round(ctx, round_index, view)
            elif round_index == self._rounds[k] + 1 and k not in self._verdicts:
                # This k's final inbox arrived last round's end; settle it.
                self._verdicts[k] = p.on_finish(ctx, view)
        return self._merge(ctx, outs)

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> Dict[int, DetectionOutcome]:
        """Collect one DetectionOutcome per tested cycle length."""
        for k, p in self._subs.items():
            if k not in self._verdicts:
                self._verdicts[k] = p.on_finish(ctx, self._split(inbox, k))
        return dict(self._verdicts)


class MultiKResult:
    """Per-length verdicts of one scan execution."""

    __slots__ = ("detected", "evidence", "rounds", "trace")

    def __init__(self, detected, evidence, rounds, trace):
        #: {k: bool} — whether a k-cycle was witnessed.
        self.detected = detected
        #: {k: cycle IDs or None}
        self.evidence = evidence
        self.rounds = rounds
        self.trace = trace


def scan_cycle_lengths(
    graph: Graph,
    ks: Sequence[int],
    *,
    repetitions: int = 8,
    seed=None,
    network: Optional[Network] = None,
) -> MultiKResult:
    """Scan for every cycle length in ``ks`` with shared executions.

    Runs ``repetitions`` multi-k executions (fresh ranks each time);
    verdicts accumulate per k.  Soundness per k is inherited from the
    underlying programs; completeness is statistical as usual.
    """
    ks = tuple(sorted(set(ks)))
    if not ks or min(ks) < 3:
        raise ConfigurationError("cycle lengths must all be >= 3")
    net = network if network is not None else Network(graph)
    detected = {k: False for k in ks}
    evidence = {k: None for k in ks}
    rounds = 0
    trace = None
    if graph.m == 0:
        return MultiKResult(detected, evidence, 0, None)
    scheduler = SynchronousScheduler(net)
    ss = np.random.SeedSequence(seed)
    rep_seeds = ss.generate_state(repetitions)
    num_rounds = max(protocol_rounds(k) for k in ks)
    for i in range(repetitions):
        rep_seed = int(rep_seeds[i])
        run = scheduler.run(
            lambda ctx: MultiKProgram(ctx, ks, rep_seed),
            num_rounds=num_rounds,
        )
        rounds += run.trace.num_rounds
        trace = run.trace
        for out in run.outputs.values():
            if not isinstance(out, dict):
                continue
            for k, verdict in out.items():
                if isinstance(verdict, DetectionOutcome) and verdict.rejects:
                    if not detected[k]:
                        detected[k] = True
                        evidence[k] = verdict.cycle
        if all(detected.values()):
            break
    return MultiKResult(detected, evidence, rounds, trace)

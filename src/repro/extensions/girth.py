"""Distributed girth estimation built on the cycle tester.

A natural derived application: run the detection machinery for
``k = 3, 4, 5, ...`` and report the smallest cycle length witnessed.
Because every rejection is certified (1-sided error), the returned value
is always the length of a *real* cycle — an upper bound on the girth that
is exact whenever the randomized edge sampling lands on a shortest cycle
within the repetition budget.

For graphs where every edge lies on a shortest cycle (e.g. cycle graphs,
tori) a handful of repetitions suffice; adversarially hidden short cycles
need Θ(m/#{shortest-cycle edges}) repetitions, mirroring the ε-dependence
of the tester proper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..congest.network import Network
from ..congest.scheduler import SynchronousScheduler
from ..core.algorithm1 import DetectionOutcome
from ..core.phase1 import MultiplexedCkProgram, protocol_rounds
from ..errors import ConfigurationError
from ..graphs.graph import Graph

__all__ = ["estimate_girth", "GirthEstimate"]


class GirthEstimate:
    """Result of :func:`estimate_girth`."""

    __slots__ = ("girth_upper_bound", "witness", "rounds_used", "ks_probed")

    def __init__(self, girth_upper_bound, witness, rounds_used, ks_probed):
        #: Smallest witnessed cycle length (None if nothing was found).
        self.girth_upper_bound = girth_upper_bound
        #: The witnessed cycle (node IDs, cyclic order) or None.
        self.witness = witness
        self.rounds_used = rounds_used
        self.ks_probed = ks_probed

    def __repr__(self) -> str:
        return (
            f"GirthEstimate(upper_bound={self.girth_upper_bound}, "
            f"rounds={self.rounds_used})"
        )


def estimate_girth(
    graph: Graph,
    *,
    k_max: int,
    repetitions_per_k: int = 8,
    seed=None,
    network: Optional[Network] = None,
) -> GirthEstimate:
    """Probe ``k = 3..k_max`` in increasing order; stop at the first
    witnessed cycle length.

    Returns a :class:`GirthEstimate`; ``girth_upper_bound`` is ``None``
    when no cycle of length <= k_max was witnessed (the graph may still
    contain one — completeness is statistical, soundness is absolute).
    """
    if k_max < 3:
        raise ConfigurationError(f"k_max must be >= 3, got {k_max}")
    net = network if network is not None else Network(graph)
    scheduler = SynchronousScheduler(net)
    ss = np.random.SeedSequence(seed)
    rounds_used = 0
    ks_probed = []
    if graph.m == 0:
        return GirthEstimate(None, None, 0, ())
    for k in range(3, k_max + 1):
        ks_probed.append(k)
        rep_seeds = ss.spawn(1)[0].generate_state(repetitions_per_k)
        for i in range(repetitions_per_k):
            rep_seed = int(rep_seeds[i])
            run = scheduler.run(
                lambda ctx: MultiplexedCkProgram(ctx, k, rep_seed),
                num_rounds=protocol_rounds(k),
            )
            rounds_used += run.trace.num_rounds
            for out in run.outputs.values():
                if isinstance(out, DetectionOutcome) and out.rejects:
                    return GirthEstimate(k, out.cycle, rounds_used, tuple(ks_probed))
    return GirthEstimate(None, None, rounds_used, tuple(ks_probed))

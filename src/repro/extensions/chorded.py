"""Operationalising the paper's §4 obstruction: chorded cycles.

The conclusion of the paper explains why its technique does not extend to
detecting a *k-cycle with a chord*: the pruning rule is oblivious to the
neighbourhoods of the nodes inside the sequences, so it "may well discard
the sequence corresponding to the cycle in H, and keep a sequence without
a chord".

This module turns that paragraph into executable artefacts:

* :func:`has_chorded_cycle_through_edge` — the centralized oracle.
* :func:`oblivious_chorded_detect` — the natural (and provably
  insufficient) CONGEST extension: run Algorithm 1 unchanged, and let a
  rejecting node report "chorded" only when it can *locally* certify a
  chord on the witnessed cycle (i.e. one incident to itself or contained
  in the ID-sequences it holds).  Soundness survives; completeness does
  not.
* :func:`build_obstruction_instance` — a constructive counterexample: a
  graph where a chorded k-cycle passes through the probe edge, yet the
  pruning deterministically keeps only chordless witnesses, so the
  oblivious detector answers "no chorded cycle".  This is the §4
  obstruction reproduced end-to-end (see ``tests/test_chorded.py`` and
  the A3 ablation benchmark).
"""

from __future__ import annotations

from typing import Tuple

from .._types import canonical_edge
from ..core.algorithm1 import detect_cycle_through_edge
from ..errors import ConfigurationError
from ..graphs.cycles import cycles_through_edge
from ..graphs.graph import Graph

__all__ = [
    "has_chorded_cycle_through_edge",
    "cycle_has_chord",
    "oblivious_chorded_detect",
    "build_obstruction_instance",
    "ChordedDetectionResult",
]


def cycle_has_chord(g: Graph, cycle: Tuple[int, ...]) -> bool:
    """Whether the cycle (vertex tuple, closing edge implicit) has a chord
    in g — an edge between two non-consecutive cycle vertices."""
    k = len(cycle)
    on_cycle = {
        canonical_edge(cycle[i], cycle[(i + 1) % k]) for i in range(k)
    }
    for i in range(k):
        for j in range(i + 1, k):
            e = canonical_edge(cycle[i], cycle[j])
            if e in on_cycle:
                continue
            if g.has_edge(*e):
                return True
    return False


def has_chorded_cycle_through_edge(g: Graph, edge: Tuple[int, int], k: int) -> bool:
    """Centralized oracle: some k-cycle through ``edge`` has a chord."""
    if k < 4:
        raise ConfigurationError("a chorded cycle needs k >= 4")
    for path in cycles_through_edge(g, edge, k):
        if cycle_has_chord(g, path):
            return True
    return False


class ChordedDetectionResult:
    """Outcome of the oblivious chorded detector."""

    __slots__ = ("cycle_detected", "chord_certified", "evidence")

    def __init__(self, cycle_detected: bool, chord_certified: bool, evidence):
        self.cycle_detected = cycle_detected
        #: True only when some rejecting node could locally certify a chord.
        self.chord_certified = chord_certified
        self.evidence = evidence


def oblivious_chorded_detect(
    g: Graph, edge: Tuple[int, int], k: int
) -> ChordedDetectionResult:
    """Algorithm 1 + local chord certification (the oblivious extension).

    A rejecting node w holds the witnessed cycle's IDs; within CONGEST it
    can check, without extra rounds, only the chords *incident to
    itself*.  (Under identity IDs the check below uses the graph directly
    for chords incident to the detecting node — the information a real
    node would have.)
    """
    if k < 4:
        raise ConfigurationError("a chorded cycle needs k >= 4")
    det = detect_cycle_through_edge(g, edge, k)
    if not det.detected:
        return ChordedDetectionResult(False, False, None)
    for v in det.rejecting_vertices:
        cycle = det.outcomes[v].cycle
        if cycle is None:
            continue
        pos = cycle.index(v) if v in cycle else None
        if pos is None:
            continue
        kk = len(cycle)
        for j in range(kk):
            if j == pos or (j - pos) % kk == 1 or (pos - j) % kk == 1:
                continue  # self or cycle-adjacent: not a chord endpoint
            if g.has_edge(v, cycle[j]):
                return ChordedDetectionResult(True, True, cycle)
    return ChordedDetectionResult(True, False, det.any_cycle_ids())


def build_obstruction_instance(k: int) -> Tuple[Graph, Tuple[int, int]]:
    """A graph + probe edge realising the §4 obstruction.

    Construction: probe edge {u, v} = {0, 1}; ``k`` parallel candidate
    second-vertices ``a_1 .. a_k`` adjacent to u, funnelling into one
    relay b, then a fixed tail to v.  Exactly one candidate — chosen to
    be the one the pruning provably discards at the relay (the largest
    ID, since the pruner keeps at most ``k - t + 1`` of the length-2
    sequences in sorted order) — carries a chord.  Every k-cycle through
    {u, v} uses one candidate; only the discarded one is chorded.

    Works for k >= 6 (the relay prunes at round 3, which exists only for
    ``⌊k/2⌋ >= 3``).  Returns ``(graph, probe_edge)``.
    """
    if k < 6:
        raise ConfigurationError("the obstruction construction needs k >= 6")
    # Vertices: 0=u, 1=v, 2..k+1 = candidates a_1..a_k, k+2 = relay b,
    # then a tail of (k - 4) vertices from b to v.
    num_candidates = k
    g = Graph(2 + num_candidates + 1 + (k - 4), [(0, 1)])
    cands = list(range(2, 2 + num_candidates))
    relay = 2 + num_candidates
    for a in cands:
        g.add_edge(0, a)
        g.add_edge(a, relay)
    prev = relay
    for i in range(k - 4):
        w = 2 + num_candidates + 1 + i
        g.add_edge(prev, w)
        prev = w
    g.add_edge(prev, 1)
    # Chord: connect the LAST candidate (largest ID => pruned last, and
    # discarded once the keep-budget k-3+1 = k-2 of the relay is full)
    # to the first tail vertex — a chord of its k-cycle.
    chorded_candidate = cands[-1]
    first_tail = 2 + num_candidates + 1 if k > 4 else 1
    g.add_edge(chorded_candidate, first_tail)
    return g, (0, 1)

"""Batched repetitions: trading bandwidth for rounds.

The paper boosts its per-repetition success probability ``>= ε/e²`` by
*sequentially* repeating the whole protocol ``⌈(e²/ε)·ln 3⌉`` times —
O(1/ε) rounds total.  Nothing in the analysis requires sequentiality:
the repetitions are independent, so ``r`` of them can run *in the same
rounds*, with every message carrying one bundle per repetition.  Round
complexity drops to ``1 + ⌊k/2⌋`` (independent of ε!) while per-edge
bandwidth grows by the factor ``r`` — messages become Θ(r·log n) bits,
leaving the strict CONGEST regime for r = ω(1).

This is exactly the classical rounds-vs-bandwidth tradeoff, and the A2
ablation benchmark quantifies it.  Soundness is per-repetition and hence
preserved verbatim (tests exercise it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..congest.network import Network
from ..congest.node import Broadcast, NodeContext, NodeProgram, Outbox
from ..congest.scheduler import SynchronousScheduler
from ..core.algorithm1 import DetectionOutcome
from ..core.bounds import repetitions_needed
from ..core.phase1 import MultiplexedCkProgram, protocol_rounds
from ..core.pruning import Pruner
from ..errors import ConfigurationError
from ..graphs.graph import Graph

__all__ = ["BatchedCkProgram", "BatchedCkTester", "BatchedResult"]


class BatchedCkProgram(NodeProgram):
    """Runs ``r`` independent :class:`MultiplexedCkProgram` instances in
    lock-step, multiplexing their messages into one per-edge payload
    (a ``{repetition_index: message}`` mapping)."""

    def __init__(
        self,
        ctx: NodeContext,
        k: int,
        rep_seeds: Tuple[int, ...],
        pruner: Optional[Pruner] = None,
    ) -> None:
        if not rep_seeds:
            raise ConfigurationError("need at least one repetition seed")
        self._subs: List[MultiplexedCkProgram] = [
            MultiplexedCkProgram(ctx, k, seed, pruner=pruner)
            for seed in rep_seeds
        ]

    # ------------------------------------------------------------------
    def _merge(self, ctx: NodeContext, per_rep: List[Outbox]) -> Outbox:
        """Combine sub-program outboxes into one {neighbor: {rep: msg}}."""
        merged: Dict[int, Dict[int, Any]] = {}
        for rep, out in enumerate(per_rep):
            if out is None:
                continue
            if isinstance(out, Broadcast):
                targets = {nb: out.message for nb in ctx.neighbor_ids}
            elif isinstance(out, Mapping):
                targets = dict(out)
            else:  # pragma: no cover - sub-programs only use these forms
                raise ConfigurationError(f"unexpected outbox {type(out)}")
            for nb, msg in targets.items():
                if msg is None:
                    continue
                merged.setdefault(nb, {})[rep] = msg
        return merged if merged else None

    @staticmethod
    def _split(inbox: Dict[int, Any], rep: int) -> Dict[int, Any]:
        """Extract repetition ``rep``'s view of a merged inbox."""
        view: Dict[int, Any] = {}
        for sender, payload in inbox.items():
            if isinstance(payload, dict) and rep in payload:
                view[sender] = payload[rep]
        return view

    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> Outbox:
        """Round 1: rank rounds of all batched repetitions at once."""
        return self._merge(ctx, [p.on_start(ctx) for p in self._subs])

    def on_round(self, ctx: NodeContext, round_index: int, inbox: Dict) -> Outbox:
        """Advance every repetition's Phase 2 in lock-step."""
        outs = [
            p.on_round(ctx, round_index, self._split(inbox, rep))
            for rep, p in enumerate(self._subs)
        ]
        return self._merge(ctx, outs)

    def on_finish(self, ctx: NodeContext, inbox: Dict) -> DetectionOutcome:
        """Evaluate each repetition's final decision."""
        for rep, p in enumerate(self._subs):
            out = p.on_finish(ctx, self._split(inbox, rep))
            if isinstance(out, DetectionOutcome) and out.rejects:
                return out
        return DetectionOutcome(rejects=False)


class BatchedResult:
    """Verdict + telemetry of one batched run."""

    __slots__ = ("accepted", "evidence", "rounds", "repetitions", "trace")

    def __init__(self, accepted, evidence, rounds, repetitions, trace):
        self.accepted = accepted
        self.evidence = evidence
        self.rounds = rounds
        self.repetitions = repetitions
        self.trace = trace

    @property
    def rejected(self) -> bool:
        """Whether any repetition rejected."""
        return not self.accepted


class BatchedCkTester:
    """ε-tester with all repetitions folded into one ``1 + ⌊k/2⌋``-round
    execution (bandwidth pays for the parallelism)."""

    def __init__(
        self,
        k: int,
        epsilon: float,
        *,
        repetitions: Optional[int] = None,
        pruner: Optional[Pruner] = None,
    ) -> None:
        if k < 3:
            raise ConfigurationError(f"k must be >= 3, got {k}")
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0,1), got {epsilon}")
        self.k = k
        self.epsilon = epsilon
        self.repetitions = (
            repetitions if repetitions is not None else repetitions_needed(epsilon)
        )
        self._pruner = pruner

    def run(
        self, graph: Graph, *, seed=None, network: Optional[Network] = None
    ) -> BatchedResult:
        """Run all repetitions inside one widened execution."""
        if graph.m == 0:
            return BatchedResult(True, None, 0, 0, None)
        net = network if network is not None else Network(graph)
        ss = np.random.SeedSequence(seed)
        rep_seeds = tuple(int(s) for s in ss.generate_state(self.repetitions))
        run = SynchronousScheduler(net).run(
            lambda ctx: BatchedCkProgram(ctx, self.k, rep_seeds, pruner=self._pruner),
            num_rounds=protocol_rounds(self.k),
        )
        evidence = None
        for out in run.outputs.values():
            if isinstance(out, DetectionOutcome) and out.rejects:
                evidence = out.cycle
                break
        return BatchedResult(
            accepted=evidence is None,
            evidence=evidence,
            rounds=run.trace.num_rounds,
            repetitions=self.repetitions,
            trace=run.trace,
        )

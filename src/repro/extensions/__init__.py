"""Extensions beyond the paper's core results.

* :mod:`repro.extensions.chorded` — the §4 obstruction (chorded-cycle
  detection), reproduced constructively.
* :mod:`repro.extensions.parallel_reps` — batched repetitions: the
  rounds-vs-bandwidth tradeoff variant of the tester.
"""

from .chorded import (
    ChordedDetectionResult,
    build_obstruction_instance,
    cycle_has_chord,
    has_chorded_cycle_through_edge,
    oblivious_chorded_detect,
)
from .girth import GirthEstimate, estimate_girth
from .induced import (
    build_induced_obstruction_instance,
    has_induced_cycle_through_edge,
    oracle_assisted_induced_detect,
    witnessed_cycles,
)
from .multi_k import MultiKProgram, MultiKResult, scan_cycle_lengths
from .parallel_reps import BatchedCkProgram, BatchedCkTester, BatchedResult

__all__ = [
    "BatchedCkProgram",
    "BatchedCkTester",
    "BatchedResult",
    "ChordedDetectionResult",
    "GirthEstimate",
    "MultiKProgram",
    "MultiKResult",
    "build_induced_obstruction_instance",
    "build_obstruction_instance",
    "cycle_has_chord",
    "has_chorded_cycle_through_edge",
    "has_induced_cycle_through_edge",
    "oblivious_chorded_detect",
    "estimate_girth",
    "oracle_assisted_induced_detect",
    "scan_cycle_lengths",
    "witnessed_cycles",
]

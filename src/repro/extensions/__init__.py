"""Extensions beyond the paper's core results.

Everything here *builds on* the core protocol stack (engines, Phase 1,
Algorithm 1) without changing it — each module is a worked answer to a
"what if" the paper raises:

* :mod:`repro.extensions.chorded` — the §4 obstruction (chorded-cycle
  detection), reproduced constructively: why the pruning rule is
  oblivious to chords, plus the instance family that witnesses it.
* :mod:`repro.extensions.induced` — the second §4 obstruction
  (*induced* cycles), with an oracle-assisted detector for contrast.
* :mod:`repro.extensions.girth` — distributed girth estimation by
  scanning ``k = 3, 4, ...`` through the detection machinery.
* :mod:`repro.extensions.multi_k` — motif scanning: several cycle
  lengths multiplexed into one lock-step execution.
* :mod:`repro.extensions.parallel_reps` — batched repetitions: the
  rounds-vs-bandwidth tradeoff variant of the tester.

Extensions run on the reference scheduler (they define their own node
programs); only the core tester/Algorithm 1 paths participate in the
pluggable engine layer (:mod:`repro.congest.engine`) for now — porting
an extension to the fast engine means teaching it the extension's
message shape, which is exactly the seam a future PR would fill.
"""

from .chorded import (
    ChordedDetectionResult,
    build_obstruction_instance,
    cycle_has_chord,
    has_chorded_cycle_through_edge,
    oblivious_chorded_detect,
)
from .girth import GirthEstimate, estimate_girth
from .induced import (
    build_induced_obstruction_instance,
    has_induced_cycle_through_edge,
    oracle_assisted_induced_detect,
    witnessed_cycles,
)
from .multi_k import MultiKProgram, MultiKResult, scan_cycle_lengths
from .parallel_reps import BatchedCkProgram, BatchedCkTester, BatchedResult

__all__ = [
    "BatchedCkProgram",
    "BatchedCkTester",
    "BatchedResult",
    "ChordedDetectionResult",
    "GirthEstimate",
    "MultiKProgram",
    "MultiKResult",
    "build_induced_obstruction_instance",
    "build_obstruction_instance",
    "cycle_has_chord",
    "has_chorded_cycle_through_edge",
    "has_induced_cycle_through_edge",
    "oblivious_chorded_detect",
    "estimate_girth",
    "oracle_assisted_induced_detect",
    "scan_cycle_lengths",
    "witnessed_cycles",
]

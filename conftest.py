"""Repo-level pytest configuration: opt-in gate for slow campaign tests.

Tests marked ``@pytest.mark.slow`` (full campaigns, large grids) are
skipped by default so the tier-1 suite stays fast; run them with
``pytest --runslow`` (CI runs the default fast set).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (full experiment campaigns)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

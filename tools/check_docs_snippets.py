#!/usr/bin/env python
"""Execute every Python code block in docs/ (and the README).

Documentation that cannot run is documentation that has drifted.  This
script extracts fenced ```python blocks from the repo's markdown, runs
each block in a fresh namespace inside a scratch working directory, and
fails on the first exception — CI runs it as the docs job, and
``python tools/check_docs_snippets.py`` reproduces it locally.

Blocks are independent (no state carries over between them), so every
snippet must be self-contained — which is exactly the property that
makes it copy-pasteable for a reader.  A block whose first line is
``# doc-snippet: no-run`` is syntax-checked only (for illustrative
fragments that need external state).
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.M | re.S)
NO_RUN_MARK = "# doc-snippet: no-run"


def iter_snippets():
    for path in DOC_FILES:
        text = path.read_text(encoding="utf-8")
        for i, match in enumerate(_FENCE.finditer(text), start=1):
            line = text[: match.start()].count("\n") + 2  # first code line
            yield path, i, line, match.group(1)


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    checked = executed = 0
    failures = []
    for path, index, line, code in iter_snippets():
        checked += 1
        rel = path.relative_to(REPO)
        label = f"{rel}:{line} (snippet {index})"
        try:
            compiled = compile(code, f"{rel}#snippet{index}", "exec")
        except SyntaxError as exc:
            failures.append((label, f"syntax error: {exc}"))
            continue
        if code.lstrip().startswith(NO_RUN_MARK):
            print(f"  syntax-ok  {label}")
            continue
        with tempfile.TemporaryDirectory() as scratch:
            import os

            cwd = os.getcwd()
            os.chdir(scratch)  # snippets may write files (stores, specs)
            try:
                exec(compiled, {"__name__": "__docs__"})
                executed += 1
                print(f"  ran        {label}")
            except Exception as exc:  # noqa: BLE001 - report and continue
                failures.append((label, f"{type(exc).__name__}: {exc}"))
            finally:
                os.chdir(cwd)
    print(f"docs snippets: {checked} found, {executed} executed, "
          f"{len(failures)} failed")
    for label, detail in failures:
        print(f"FAILED {label}: {detail}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

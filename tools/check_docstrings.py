#!/usr/bin/env python
"""Docstring-coverage gate for ``src/repro`` (no external dependencies).

Counts docstrings on modules, public classes and public
functions/methods across the package using ``ast`` (nothing is
imported), prints a per-module table, and fails when total coverage
drops below the threshold — the same contract as
``interrogate --fail-under``, kept dependency-free so the CI docs job
runs on the bare test environment.

Private names (leading underscore) are not counted, and neither is
``__init__`` — this codebase documents construction parameters in the
class docstring (the equivalent of interrogate's
``--ignore-init-method``).  Usage::

    python tools/check_docstrings.py [--fail-under PCT]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PACKAGE = REPO / "src" / "repro"

DEFAULT_FAIL_UNDER = 90.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _count_node(node, counts) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(child.name):
                counts.append((child.name, ast.get_docstring(child) is not None))
            # nested defs are implementation detail: skip recursion
        elif isinstance(child, ast.ClassDef):
            if _is_public(child.name):
                counts.append((child.name, ast.get_docstring(child) is not None))
                _count_node(child, counts)


def audit(package: Path):
    rows = []
    for path in sorted(package.rglob("*.py")):
        rel = path.relative_to(REPO)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        counts = [("<module>", ast.get_docstring(tree) is not None)]
        _count_node(tree, counts)
        have = sum(1 for _, ok in counts if ok)
        rows.append((str(rel), have, len(counts)))
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fail-under", type=float, default=DEFAULT_FAIL_UNDER,
                        help="minimum coverage percentage (default: "
                        f"{DEFAULT_FAIL_UNDER})")
    parser.add_argument("--verbose", action="store_true",
                        help="print every module, not just incomplete ones")
    args = parser.parse_args()

    rows = audit(PACKAGE)
    total_have = sum(have for _, have, _ in rows)
    total_all = sum(n for _, _, n in rows)
    pct = 100.0 * total_have / total_all if total_all else 100.0

    width = max(len(name) for name, _, _ in rows)
    for name, have, n in rows:
        if args.verbose or have < n:
            mark = "ok " if have == n else "GAP"
            print(f"{mark} {name:<{width}}  {have}/{n}")
    print(f"docstring coverage: {total_have}/{total_all} = {pct:.1f}% "
          f"(gate: {args.fail_under:.1f}%)")
    if pct < args.fail_under:
        print("FAILED: coverage below the gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

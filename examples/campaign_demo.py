#!/usr/bin/env python
"""Campaign workflow demo: declare a factor grid, run it, resume, report.

Run:  python examples/campaign_demo.py

Shows the full life cycle of an experiment campaign:

1. declare a generator x n x k x algorithm grid as a ``CampaignSpec``;
2. expand it into a run table with deterministic per-run seeds;
3. execute it (parallel-safe; here serial for portability) into a JSONL
   store;
4. invoke it again and watch resume skip every completed row;
5. roll the store up into a Wilson-interval summary table.
"""

import tempfile
from pathlib import Path

from repro.runner import (
    CampaignSpec,
    CampaignStore,
    run_campaign,
    summarize_store,
)


def main() -> None:
    spec = CampaignSpec(
        name="demo",
        generators=[
            # sweep G(n, p) over two sizes
            {"family": "gnp", "params": {"n": [24, 40], "p": 0.08}},
            # scale-free and small-world instances from the new families
            {"family": "ba", "params": {"n": 32, "attach": 2}},
            {"family": "ws", "params": {"n": 32, "d": 4, "beta": 0.2}},
            # a certified eps-far control
            {"family": "eps-far", "params": {"n": 40}},
        ],
        ks=[4, 5],
        epsilons=[0.15],
        algorithms=["tester", "detect"],
        repetitions=2,
        seed=0,
    )
    table = spec.expand()
    print(f"campaign {spec.name!r}: {len(table)} run rows "
          f"({len(spec.generators)} generator entries x {len(spec.ks)} ks x "
          f"{len(spec.algorithms)} algorithms x {spec.repetitions} reps)")
    print(f"first row id={table.rows[0].run_id} seed={table.rows[0].seed}")

    with tempfile.TemporaryDirectory() as tmp:
        store = CampaignStore(Path(tmp) / "demo.jsonl")

        report = run_campaign(table, store, workers=1)
        print(f"\nfirst invocation:  {report.render()}")
        assert report.executed == len(table)

        # Re-running the same campaign is a cheap resume: every row's
        # run_id is already in the store, so nothing re-executes.
        report = run_campaign(table, store, workers=1)
        print(f"second invocation: {report.render()}")
        assert report.executed == 0 and report.skipped == len(table)

        print()
        print(summarize_store(store).render())


if __name__ == "__main__":
    main()

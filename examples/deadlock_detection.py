#!/usr/bin/env python
"""Deadlock detection in a distributed lock manager.

The paper's related-work section points at the classic motivation for
distributed cycle detection: *deadlock detection in routing or databases*
(§1.3.4).  This example builds a waits-for graph of database transactions
— transaction A waits for a lock held by B — and uses the distributed
tester to look for k-party circular waits without any central coordinator:
the lock manager nodes themselves exchange O(log n)-bit messages.

A circular wait among k transactions is a k-cycle in the (symmetrised)
waits-for graph; the tester's 1-sided error means an alarm is always a
real deadlock (evidence in hand), while deadlock-free workloads are never
disturbed by false alarms.

Run:  python examples/deadlock_detection.py
"""

import numpy as np

from repro import test_ck_freeness
from repro.congest import Network
from repro.graphs import Graph


def build_waits_for_graph(
    n_txn: int, n_locks: int, holds_per_txn: int, waits_per_txn: int,
    rng: np.random.Generator,
) -> Graph:
    """A random waits-for graph: transactions hold and request locks.

    Undirected symmetrisation is the standard conservative reduction:
    any k-party circular wait induces a k-cycle here.
    """
    holder = {}
    holds = {t: set() for t in range(n_txn)}
    for t in range(n_txn):
        for _ in range(holds_per_txn):
            lock = int(rng.integers(n_locks))
            if lock not in holder:
                holder[lock] = t
                holds[t].add(lock)
    g = Graph(n_txn)
    for t in range(n_txn):
        for _ in range(waits_per_txn):
            lock = int(rng.integers(n_locks))
            owner = holder.get(lock)
            if owner is not None and owner != t and not g.has_edge(t, owner):
                g.add_edge(t, owner)
    return g


def plant_circular_wait(g: Graph, txns, rng: np.random.Generator) -> None:
    """Force a circular wait among the given transactions."""
    k = len(txns)
    for i in range(k):
        a, b = txns[i], txns[(i + 1) % k]
        if not g.has_edge(a, b):
            g.add_edge(a, b)


def main() -> None:
    rng = np.random.default_rng(2024)
    n_txn = 120
    g = build_waits_for_graph(
        n_txn, n_locks=900, holds_per_txn=2, waits_per_txn=1, rng=rng
    )
    print(f"waits-for graph: {g.n} transactions, {g.m} wait edges")

    k = 4  # look for 4-party circular waits
    eps = 0.15

    baseline = test_ck_freeness(g, k, eps, seed=1)
    print(f"\nbefore planting: verdict = "
          f"{'no deadlock alarm' if baseline.accepted else 'DEADLOCK'}")
    if baseline.rejected:
        print(f"  (random workload already had one: {baseline.evidence})")

    # A rogue workload produces a 4-party circular wait.
    victims = [int(t) for t in rng.choice(n_txn, size=k, replace=False)]
    plant_circular_wait(g, victims, rng)
    print(f"\nplanted circular wait among transactions {victims}")

    # Sweep repetitions to show how confidence builds with O(1/eps) rounds.
    print(f"\n{'reps':>5}  {'rounds':>7}  verdict")
    for reps in (1, 4, 16, 64):
        res = test_ck_freeness(g, k, eps, seed=5, repetitions=reps)
        verdict = "DEADLOCK" if res.rejected else "no alarm"
        print(f"{reps:>5}  {res.total_rounds:>7}  {verdict}")
        if res.rejected:
            net = Network(g)
            cycle_txns = [net.vertex_of(i) for i in res.evidence]
            print(f"       evidence: circular wait {cycle_txns}")
            break


if __name__ == "__main__":
    main()

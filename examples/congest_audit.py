#!/usr/bin/env python
"""Bandwidth audit: why pruning is the whole point.

Reproduces the discussion around the paper's Figure 1 on a live
simulation.  Three algorithms hunt the same k-cycle through the same edge
on a high-multiplicity instance:

1. Algorithm 1 (pruned append-and-forward)          — fits in CONGEST;
2. naive append-and-forward (no pruning)            — message blow-up;
3. ball gathering (collect the ⌊k/2⌋-neighbourhood) — worst of all.

The per-message bit audit of the simulator shows exactly who violates the
O(log n) budget, and the Lemma-3 sequence bound is checked live.

Run:  python examples/congest_audit.py
"""

from repro.analysis.tables import Table
from repro.baselines import (
    gather_detect_cycle_through_edge,
    naive_detect_cycle_through_edge,
)
from repro.core import detect_cycle_through_edge, lemma3_bound, phase2_rounds
from repro.graphs import blowup_graph


def main() -> None:
    k = 8
    table = Table(
        ["width", "m", "algorithm", "detected", "max seqs/msg",
         "max bits/msg", "budget (64 log n)"],
        title=f"CONGEST bandwidth audit, k={k}, probe edge {{u, v}}",
    )
    for width in (4, 8, 12):
        g = blowup_graph(width, k)
        import math

        budget = 64 * math.ceil(math.log2(g.n))
        pruned = detect_cycle_through_edge(g, (0, 1), k)
        naive = naive_detect_cycle_through_edge(g, (0, 1), k,
                                                max_sequences_cap=20_000)
        gather = gather_detect_cycle_through_edge(g, (0, 1), k)
        for name, detected, seqs, bits in (
            ("algorithm 1", pruned.detected,
             pruned.run.trace.max_sequences_per_message,
             pruned.run.trace.max_message_bits),
            ("naive fwd", naive.detected,
             naive.max_sequences_per_message,
             naive.run.trace.max_message_bits),
            ("ball gather", gather.detected, "-",
             gather.max_message_bits),
        ):
            table.add_row(width, g.m, name, detected, seqs, bits, budget)
    print(table.render())

    print("\nLemma 3 bound by round (k=8):",
          [lemma3_bound(k, t) for t in range(1, phase2_rounds(k) + 1)])
    print(
        "\nReading: algorithm 1's messages stay a small constant number of\n"
        "sequences (O_k(log n) bits) while both baselines grow with the\n"
        "instance — the naive forwarder with the number of parallel paths,\n"
        "the gatherer with the whole ball it ships home."
    )


if __name__ == "__main__":
    main()

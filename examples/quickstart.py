#!/usr/bin/env python
"""Quickstart: test a network for C5-freeness in a few lines.

Run:  python examples/quickstart.py
"""

from repro import detect_cycle_through_edge, test_ck_freeness
from repro.graphs import ck_free_graph, planted_epsilon_far_graph


def main() -> None:
    k, eps = 5, 0.1

    # ---------------------------------------------------------------
    # 1. A graph that is certifiably eps-far from C5-free.
    # ---------------------------------------------------------------
    g, certified = planted_epsilon_far_graph(n=150, k=k, eps=eps, seed=7)
    print(f"instance: n={g.n}, m={g.m}, certified farness {certified:.3f}")

    result = test_ck_freeness(g, k, eps, seed=42)
    print(f"tester verdict: {'ACCEPT' if result.accepted else 'REJECT'}")
    print(f"  repetitions used: {result.repetitions_run} of "
          f"{result.repetitions_planned} planned")
    print(f"  rounds per repetition: {result.rounds_per_repetition} "
          f"(1 rank round + floor(k/2) Phase-2 rounds)")
    if result.rejected:
        print(f"  witnessed {k}-cycle (node IDs): {result.evidence}")

    # ---------------------------------------------------------------
    # 2. A C5-free control: the tester must accept (1-sided error).
    # ---------------------------------------------------------------
    h = ck_free_graph(n=150, k=k, seed=3)
    control = test_ck_freeness(h, k, eps, seed=43)
    print(f"\ncontrol (C5-free): "
          f"{'ACCEPT' if control.accepted else 'REJECT'} "
          f"after all {control.repetitions_run} repetitions")
    assert control.accepted, "1-sided error violated?!"

    # ---------------------------------------------------------------
    # 3. The deterministic inner routine: is there a C5 through edge e?
    # ---------------------------------------------------------------
    edge = next(iter(g.edges()))
    det = detect_cycle_through_edge(g, edge, k)
    print(f"\nAlgorithm 1 on edge {edge}: detected={det.detected} "
          f"in {det.run.trace.num_rounds} rounds, "
          f"max {det.run.trace.max_sequences_per_message} sequences/message")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Distributed girth probing and multi-length motif scans.

Two derived protocols built on the paper's machinery:

* `estimate_girth` — probe k = 3, 4, 5, ... until a cycle is witnessed;
  soundness of the tester makes the answer a *certified* upper bound.
* `scan_cycle_lengths` — test several k in the *same* rounds by
  multiplexing per-k messages (paying bandwidth instead of rounds).

Run:  python examples/girth_probe.py
"""

from repro.analysis.tables import Table
from repro.congest import render_trace
from repro.extensions import estimate_girth, scan_cycle_lengths
from repro.graphs import girth, hypercube_graph, torus_graph


def main() -> None:
    table = Table(
        ["topology", "n", "m", "true girth", "estimated", "rounds"],
        title="distributed girth probing (certified upper bounds)",
    )
    for name, g in (
        ("torus 4x4", torus_graph(4, 4)),
        ("torus 3x5", torus_graph(3, 5)),
        ("hypercube Q4", hypercube_graph(4)),
    ):
        est = estimate_girth(g, k_max=8, seed=11)
        table.add_row(name, g.n, g.m, girth(g), est.girth_upper_bound,
                      est.rounds_used)
    print(table.render())

    print("\nmulti-k scan of the 3x5 torus (one execution, shared rounds):")
    g = torus_graph(3, 5)
    res = scan_cycle_lengths(g, [3, 4, 5, 6, 7], seed=5, repetitions=10)
    for k in sorted(res.detected):
        mark = "found " + str(res.evidence[k]) if res.detected[k] else "not seen"
        print(f"  C{k}: {mark}")
    print(f"  total rounds: {res.rounds}")

    print("\nbandwidth timeline of the last scan execution:")
    print(render_trace(res.trace, title=""))


if __name__ == "__main__":
    main()

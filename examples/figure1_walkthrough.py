#!/usr/bin/env python
"""Round-by-round walkthrough of the paper's Figure 1.

The 5-vertex graph of Fig. 1: hubs u, v joined by an edge, two parallel
u-v paths through x and y, and an apex z adjacent to x and y.  The
5-cycle (u, x, z, y, v) passes through {u, v}.

The figure's caption warns: if x forwards only its u-sequence and y also
forwards only its u-sequence, z sees (u, x) and (u, y) — never a
{u}-{v} pair — and the cycle escapes.  Algorithm 1's pruning keeps both
the u- and the v-rooted sequence at x and y (they are witnesses for
different completions), so z always closes the cycle.

This script runs the real node programs and prints every message.

Run:  python examples/figure1_walkthrough.py
"""

from repro.congest import Network, SequenceBundle, SynchronousScheduler
from repro.core import DetectCkProgram, phase2_rounds
from repro.graphs import figure1_graph

NAMES = {0: "u", 1: "v", 2: "x", 3: "y", 4: "z"}


class ChattyProgram(DetectCkProgram):
    """DetectCkProgram that narrates its sends."""

    def on_start(self, ctx):
        out = super().on_start(ctx)
        if out is not None:
            print(f"  round 1: {NAMES[ctx.my_id]} broadcasts "
                  f"{_fmt(out.message)}")
        return out

    def on_round(self, ctx, round_index, inbox):
        out = super().on_round(ctx, round_index, inbox)
        if inbox:
            received = sorted(
                seq for bundle in inbox.values() for seq in bundle.sequences
            )
            print(f"  round {round_index}: {NAMES[ctx.my_id]} received "
                  f"{[_seq(s) for s in received]}")
        if out is not None:
            print(f"  round {round_index}: {NAMES[ctx.my_id]} broadcasts "
                  f"{_fmt(out.message)}")
        return out


def _seq(seq):
    return "(" + ",".join(NAMES[i] for i in seq) + ")"


def _fmt(bundle: SequenceBundle) -> str:
    return "{" + ", ".join(sorted(_seq(s) for s in bundle.sequences)) + "}"


def main() -> None:
    g = figure1_graph()
    k = 5
    print(f"Figure 1 graph: n={g.n}, m={g.m}; detecting C{k} through "
          f"{{u, v}} in {phase2_rounds(k)} rounds\n")
    net = Network(g)
    result = SynchronousScheduler(net).run(
        lambda ctx: ChattyProgram(ctx, k, net.edge_ids(0, 1)),
        num_rounds=phase2_rounds(k),
    )
    print()
    for v, outcome in sorted(result.outputs.items()):
        verdict = "REJECT" if outcome.rejects else "accept"
        extra = ""
        if outcome.cycle is not None:
            extra = "  cycle: " + "-".join(NAMES[i] for i in outcome.cycle)
        print(f"  {NAMES[v]}: {verdict}{extra}")
    assert result.outputs[4].rejects, "z must detect the C5!"
    print("\nz paired a u-rooted sequence with a v-rooted sequence — the "
          "pruning rule kept one of each, exactly as Lemma 2 promises.")


if __name__ == "__main__":
    main()

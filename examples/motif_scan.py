#!/usr/bin/env python
"""Scanning a communication topology for cycle motifs of every length.

Network operators care whether their topology contains short cycles
(routing loops, redundancy rings).  This example scans one topology for
every cycle length k = 3..8 with the distributed tester, and cross-checks
each verdict against the exact centralized oracle and the sequential
comparators (Monien representative-family DP and color coding) — three
independent implementations agreeing on the motif spectrum.

Run:  python examples/motif_scan.py
"""

import time

from repro import test_ck_freeness
from repro.analysis.tables import Table
from repro.graphs import erdos_renyi_gnm, has_k_cycle
from repro.sequential import color_coding_has_k_cycle, monien_has_k_cycle


def main() -> None:
    g = erdos_renyi_gnm(80, 120, seed=9)
    print(f"topology: n={g.n}, m={g.m} (sparse ISP-like random graph)\n")

    table = Table(
        ["k", "distributed tester", "exact oracle", "monien DP",
         "color coding", "tester rounds"],
        title="cycle-motif spectrum",
    )
    for k in range(3, 9):
        t0 = time.perf_counter()
        # The tester's promise covers eps-far instances; for motif *presence*
        # scanning we run it in exhaustive mode: repetitions high enough
        # that every edge is likely probed.  Its rejections are always
        # sound, so "cycle found" rows are certificates.
        res = test_ck_freeness(g, k, 0.05, seed=k)
        dt = time.perf_counter() - t0
        truth = has_k_cycle(g, k)
        monien = monien_has_k_cycle(g, k)
        cc = color_coding_has_k_cycle(g, k, seed=k)
        table.add_row(
            k,
            "cycle found" if res.rejected else "none seen",
            "cycle" if truth else "none",
            "cycle" if monien else "none",
            "cycle" if cc else "none (maybe)",
            res.total_rounds,
        )
        # Soundness invariant: a distributed rejection implies a real cycle.
        if res.rejected:
            assert truth, "soundness violated!"
    print(table.render())
    print(
        "\nnote: 'none seen' from the tester is a statistical claim (it is\n"
        "guaranteed only to catch graphs eps-FAR from Ck-free); 'cycle\n"
        "found' verdicts are certificates with explicit cycle evidence."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Dynamic monitoring demo: keep a C5 verdict current under edge churn.

A static tester answers one frozen question; production graphs change.
This demo builds a small network, attaches an incremental
:class:`~repro.dynamic.monitor.CkMonitor`, replays a churn scenario, and
shows the three decision modes in action (cache hit / locality-limited
recheck through the touched edge / full re-test), ending with the
mandatory parity check: at every step the monitor's verdict equals
from-scratch re-detection.

Run:  python examples/dynamic_demo.py
"""

from repro.dynamic import CkMonitor, build_stream, full_redetect
from repro.graphs import dumps_stream, erdos_renyi_gnp, has_k_cycle


def main() -> None:
    k = 5

    # ---------------------------------------------------------------
    # 1. A base network and a replayable churn scenario.
    # ---------------------------------------------------------------
    base = erdos_renyi_gnp(24, 0.09, seed=11)
    stream = build_stream("uniform-churn:steps=20,p=0.55", base, seed=4, k=k)
    print(f"base: n={base.n}, m={base.m}")
    print(f"scenario: {stream.scenario}, {len(stream.mutations)} mutations")
    print("first lines of the edge-stream serialisation:")
    for line in dumps_stream(stream.mutations[:4]).splitlines():
        print(f"  {line}")

    # ---------------------------------------------------------------
    # 2. Replay through the incremental monitor.
    # ---------------------------------------------------------------
    monitor = CkMonitor(stream.base, k, seed=0)
    print(f"\ninitial verdict: "
          f"{'ACCEPT (C5-free)' if monitor.accepted else 'REJECT'}")
    for mutation in stream.mutations:
        record = monitor.apply(mutation)
        flag = "  <- verdict flip" if record.flipped else ""
        print(f"  step {record.version:>2}  {mutation.to_line():<9} "
              f"{record.action:<13} "
              f"{'ACCEPT' if record.accepted else 'REJECT'}{flag}")

    stats = monitor.stats
    print(f"\ndecisions: {stats.cache_hits} cache hits, "
          f"{stats.local_rechecks} local rechecks, "
          f"{stats.full_retests} full re-tests "
          f"({stats.cache_hit_rate:.0%} served from cache)")

    # ---------------------------------------------------------------
    # 3. The equivalence gate: incremental == from-scratch, every step.
    # ---------------------------------------------------------------
    replay = CkMonitor(stream.base, k, seed=0)
    for step, mutation in enumerate(stream.mutations, start=1):
        replay.apply(mutation)
        scratch_accepted, _ = full_redetect(
            replay.graph, k, seed=replay.step_seed(step)
        )
        assert replay.accepted == scratch_accepted, f"divergence at {step}"
        assert replay.accepted == (not has_k_cycle(replay.graph, k))
    print(f"parity: monitor == from-scratch re-detection at all "
          f"{len(stream.mutations)} steps")

    # The cached witness, when rejecting, is genuine evidence.
    if not monitor.accepted:
        cycle = monitor.witness
        print(f"cached witness {k}-cycle: {cycle}")
        for i in range(k):
            assert monitor.graph.has_edge(cycle[i], cycle[(i + 1) % k])


if __name__ == "__main__":
    main()

"""Tests for the sequential comparators (Monien k-path, color coding)."""

import pytest

from helpers import assert_is_cycle, random_graphs
from repro.errors import ConfigurationError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    has_cycle_through_edge,
    has_k_cycle,
    path_graph,
    star_graph,
)
from repro.sequential import (
    PathFamily,
    color_coding_find_k_cycle,
    color_coding_has_k_cycle,
    has_k_path,
    k_path_from_source,
    monien_cycle_through_edge,
    monien_find_k_cycle,
    monien_has_cycle_through_edge,
    monien_has_k_cycle,
    trials_needed,
)


class TestPathFamily:
    def test_offer_keeps_first(self):
        fam = PathFamily(q=2)
        assert fam.offer(frozenset({1}), (1,))
        assert len(fam) == 1

    def test_subset_blocks(self):
        fam = PathFamily(q=2)
        fam.offer(frozenset({1}), (1,))
        assert not fam.offer(frozenset({1, 2}), (1, 2))

    def test_budget_limits(self):
        fam = PathFamily(q=1)
        assert fam.offer(frozenset({1}), (1,))
        assert fam.offer(frozenset({2}), (2,))
        assert not fam.offer(frozenset({3}), (3,))  # q+1 = 2 cap


class TestKPath:
    def test_path_graph_exact(self):
        g = path_graph(6)
        assert has_k_path(g, 6)
        assert not has_k_path(g, 7)
        assert has_k_path(g, 1)

    def test_star_max_path(self):
        g = star_graph(5)
        assert has_k_path(g, 3)
        assert not has_k_path(g, 4)

    def test_from_source_witness_is_path(self):
        g = grid_graph(3, 3)
        paths = k_path_from_source(g, 0, 5)
        assert paths
        for v, p in paths.items():
            assert p[0] == 0 and p[-1] == v and len(p) == 5
            assert len(set(p)) == 5
            for a, b in zip(p, p[1:]):
                assert g.has_edge(a, b)

    def test_forbidden_edge_respected(self):
        g = cycle_graph(5)
        paths = k_path_from_source(g, 0, 5, forbidden_edge=(0, 1), targets=[1])
        assert 1 in paths
        p = paths[1]
        for a, b in zip(p, p[1:]):
            assert (min(a, b), max(a, b)) != (0, 1)

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            has_k_path(path_graph(3), 0)


class TestMonienCycles:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7, 8])
    def test_matches_oracle_through_edge(self, k):
        for g in random_graphs(8, seed=500 + k):
            if g.m == 0:
                continue
            for e in list(g.edges())[:4]:
                assert monien_has_cycle_through_edge(g, e, k) == \
                    has_cycle_through_edge(g, e, k)

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_matches_oracle_whole_graph(self, k):
        for g in random_graphs(6, seed=600 + k):
            assert monien_has_k_cycle(g, k) == has_k_cycle(g, k)

    def test_witness_is_valid(self):
        g = complete_graph(7)
        for k in (3, 5, 7):
            cyc = monien_find_k_cycle(g, k)
            assert cyc is not None
            assert_is_cycle(g, cyc, k)

    def test_witness_through_edge_uses_edge(self):
        g = complete_graph(6)
        cyc = monien_cycle_through_edge(g, (0, 1), 5)
        assert cyc is not None
        assert cyc[0] == 0 and cyc[-1] == 1
        assert_is_cycle(g, cyc, 5)

    def test_none_when_absent(self):
        assert monien_cycle_through_edge(path_graph(5), (0, 1), 4) is None
        assert monien_find_k_cycle(cycle_graph(6), 5) is None

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            monien_has_k_cycle(cycle_graph(4), 2)


class TestColorCoding:
    def test_trials_formula(self):
        assert trials_needed(3) >= 20  # e^3 * ln 3 ≈ 22
        with pytest.raises(ConfigurationError):
            trials_needed(3, delta=0)

    def test_one_sided_never_false_positive(self):
        """A returned witness is always a real cycle."""
        for g in random_graphs(6, seed=700):
            for k in (3, 4, 5):
                cyc = color_coding_find_k_cycle(g, k, seed=1, trials=8)
                if cyc is not None:
                    assert_is_cycle(g, cyc, k)

    def test_free_graph_never_detected(self):
        g = path_graph(10)
        assert not color_coding_has_k_cycle(g, 4, seed=0, trials=30)

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_finds_planted_cycle(self, k):
        """With the default trial count the failure rate is <= 1/3; over a
        pure k-cycle instance we allow one retry to keep flakiness ~0."""
        g = cycle_graph(k)
        found = color_coding_has_k_cycle(g, k, seed=5) or \
            color_coding_has_k_cycle(g, k, seed=6)
        assert found

    def test_small_graph_short_circuit(self):
        assert color_coding_find_k_cycle(path_graph(3), 4, seed=0) is None

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            color_coding_has_k_cycle(cycle_graph(4), 2, seed=0)

"""Tests for the batched-repetitions extension (rounds vs bandwidth)."""

import pytest

from helpers import assert_is_cycle
from repro.congest import Network
from repro.core import CkFreenessTester, protocol_rounds
from repro.errors import ConfigurationError
from repro.extensions import BatchedCkProgram, BatchedCkTester
from repro.graphs import (
    Graph,
    ck_free_graph,
    cycle_graph,
    disjoint_cycles_graph,
    path_graph,
    planted_epsilon_far_graph,
)


class TestConfiguration:
    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            BatchedCkTester(2, 0.1)
        with pytest.raises(ConfigurationError):
            BatchedCkTester(5, 0.0)

    def test_empty_seed_list(self):
        with pytest.raises(ConfigurationError):
            BatchedCkProgram(None, 5, ())  # type: ignore[arg-type]


class TestRoundsVsBandwidth:
    def test_constant_rounds_regardless_of_eps(self):
        """The headline: batched rounds = 1 + floor(k/2), independent of
        the repetition count (eps only scales bandwidth)."""
        g, _ = planted_epsilon_far_graph(60, 5, 0.1, seed=0)
        for eps in (0.4, 0.1):
            res = BatchedCkTester(5, eps).run(g, seed=1)
            assert res.rounds == protocol_rounds(5)

    def test_bandwidth_scales_with_repetitions(self):
        g = disjoint_cycles_graph(4, 5, connect=True)
        small = BatchedCkTester(5, 0.5, repetitions=2).run(g, seed=2)
        large = BatchedCkTester(5, 0.5, repetitions=32).run(g, seed=2)
        assert large.trace.max_message_bits > 4 * small.trace.max_message_bits

    def test_sequential_uses_more_rounds_same_verdict(self):
        g, _ = planted_epsilon_far_graph(60, 4, 0.15, seed=4)
        seq = CkFreenessTester(4, 0.15).run(g, seed=5, stop_on_reject=False)
        bat = BatchedCkTester(4, 0.15).run(g, seed=5)
        assert seq.rejected and bat.rejected
        assert seq.total_rounds > bat.rounds


class TestCorrectness:
    def test_one_sided_on_free_graphs(self):
        for seed in range(5):
            g = ck_free_graph(40, 5, seed=seed)
            res = BatchedCkTester(5, 0.2, repetitions=16).run(g, seed=seed)
            assert res.accepted, "batched tester broke 1-sidedness"

    def test_detects_single_cycle(self):
        for k in (3, 4, 5, 6):
            g = cycle_graph(k)
            res = BatchedCkTester(k, 0.3, repetitions=4).run(g, seed=1)
            assert res.rejected
            assert_is_cycle(g, res.evidence, k)  # identity IDs

    def test_evidence_is_genuine(self):
        g, _ = planted_epsilon_far_graph(70, 6, 0.1, seed=7)
        net = Network(g)
        res = BatchedCkTester(6, 0.1).run(g, seed=8, network=net)
        assert res.rejected
        verts = [net.vertex_of(i) for i in res.evidence]
        assert_is_cycle(g, verts, 6)

    def test_empty_graph(self):
        res = BatchedCkTester(5, 0.1).run(Graph(4), seed=0)
        assert res.accepted
        assert res.rounds == 0

    def test_agrees_with_sequential_on_frees(self):
        g = path_graph(20)
        seq = CkFreenessTester(5, 0.2).run(g, seed=3)
        bat = BatchedCkTester(5, 0.2).run(g, seed=3)
        assert seq.accepted and bat.accepted

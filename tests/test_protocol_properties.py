"""Protocol-level property tests (hypothesis) tying everything together.

These are the "executable lemmas": soundness, completeness, the Lemma 3
message bound and Lemma 1 path validity, checked over randomly generated
graphs and executions rather than hand-picked cases.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import assert_is_cycle
from repro.congest import Network, RandomPermutationIds, SynchronousScheduler
from repro.core import (
    DetectCkProgram,
    DetectionOutcome,
    MultiplexedCkProgram,
    detect_cycle_through_edge,
    lemma3_bound,
    phase2_rounds,
    protocol_rounds,
)
from repro.graphs import Graph, has_cycle_through_edge
from repro.graphs.cycles import is_ck_free


@st.composite
def small_graph(draw, n_lo=4, n_hi=10):
    n = draw(st.integers(n_lo, n_hi))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=1, max_size=18)
    )
    return Graph(n, edges)


class TestSoundnessProperty:
    """1-sidedness of the inner algorithm: a rejection is always backed by
    a real k-cycle through the probe edge — on arbitrary graphs."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(g=small_graph(), k=st.integers(3, 8), data=st.data())
    def test_evidence_always_real(self, g, k, data):
        edges = list(g.edges())
        e = data.draw(st.sampled_from(edges))
        det = detect_cycle_through_edge(g, e, k)
        expected = has_cycle_through_edge(g, e, k)
        assert det.detected == expected
        if det.detected:
            ids = det.any_cycle_ids()
            assert_is_cycle(g, ids, k)
            on_cycle = {
                tuple(sorted((ids[i], ids[(i + 1) % k]))) for i in range(k)
            }
            assert tuple(sorted(e)) in on_cycle


class TestLemma1Property:
    """Every sequence in every sent bundle is a simple path from u or v
    ending at the sender (Lemma 1) — checked by instrumenting a run."""

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(g=small_graph(), k=st.integers(4, 8), data=st.data())
    def test_sent_sequences_are_paths(self, g, k, data):
        e = data.draw(st.sampled_from(list(g.edges())))
        net = Network(g)
        edge_ids = net.edge_ids(*e)
        sent_log = []

        class Spy(DetectCkProgram):
            def on_round(self, ctx, round_index, inbox):
                out = super().on_round(ctx, round_index, inbox)
                for seq in self._last_sent:
                    sent_log.append((ctx.my_id, seq))
                return out

        SynchronousScheduler(net).run(
            lambda ctx: Spy(ctx, k, edge_ids), num_rounds=phase2_rounds(k)
        )
        for sender, seq in sent_log:
            assert len(set(seq)) == len(seq), "repeated ID in sequence"
            assert seq[0] in edge_ids, "sequence does not start at u or v"
            assert seq[-1] == sender, "sequence does not end at sender"
            verts = [net.vertex_of(i) for i in seq]
            for a, b in zip(verts, verts[1:]):
                assert g.has_edge(a, b), "sequence is not a path"


class TestLemma3Property:
    """Per-message sequence counts never exceed (k-t+1)^(t-1)."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(g=small_graph(n_lo=5, n_hi=11), k=st.integers(4, 9), data=st.data())
    def test_bound_by_round(self, g, k, data):
        e = data.draw(st.sampled_from(list(g.edges())))
        det = detect_cycle_through_edge(g, e, k)
        by_round = det.run.trace.max_sequences_by_round()
        for t, measured in enumerate(by_round, start=1):
            assert measured <= lemma3_bound(k, t), (
                f"round {t}: {measured} sequences > bound {lemma3_bound(k, t)}"
            )


class TestFullProtocolProperties:
    """End-to-end multiplexed protocol on random graphs + random IDs."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        g=small_graph(n_lo=5, n_hi=11),
        k=st.integers(3, 7),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_multiplexed_soundness(self, g, k, seed):
        """No false rejection, for any graph / seed / ID permutation, and
        all evidence verifies — even under execution collisions."""
        net = Network(g, RandomPermutationIds(seed=seed % 1000))
        run = SynchronousScheduler(net).run(
            lambda ctx: MultiplexedCkProgram(ctx, k, seed),
            num_rounds=protocol_rounds(k),
        )
        rejected = False
        for v, out in run.outputs.items():
            if isinstance(out, DetectionOutcome) and out.rejects:
                rejected = True
                verts = [net.vertex_of(i) for i in out.cycle]
                assert_is_cycle(g, verts, k)
        if rejected:
            assert not is_ck_free(g, k), "rejection on a Ck-free graph!"

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        g=small_graph(n_lo=5, n_hi=10),
        k=st.integers(3, 7),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_multiplexed_lemma3(self, g, k, seed):
        """The per-message bound also holds under multiplexing (only one
        execution's sequences occupy any message)."""
        net = Network(g)
        run = SynchronousScheduler(net).run(
            lambda ctx: MultiplexedCkProgram(ctx, k, seed),
            num_rounds=protocol_rounds(k),
        )
        by_round = run.trace.max_sequences_by_round()
        # Global round 1 is rank exchange (0 sequences); Phase-2 round t is
        # global round t + 1.
        for g_round, measured in enumerate(by_round, start=1):
            if g_round == 1:
                assert measured == 0
            else:
                assert measured <= lemma3_bound(k, g_round - 1)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_test_command_parses(self):
        args = build_parser().parse_args(
            ["test", "--generator", "cycle", "--n", "8", "--k", "5"]
        )
        assert args.k == 5
        assert args.generator == "cycle"


class TestTestCommand:
    def test_reject_exit_code(self, capsys):
        # C6 tested for C6-freeness: must reject -> exit code 1
        rc = main(["test", "--generator", "cycle", "--n", "6", "--k", "6",
                   "--eps", "0.3", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "reject" in out
        assert "evidence" in out

    def test_accept_exit_code(self, capsys):
        rc = main(["test", "--generator", "ck-free", "--n", "30", "--k", "5",
                   "--eps", "0.2", "--repetitions", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "accept" in out

    def test_eps_far_generator_reports_certificate(self, capsys):
        rc = main(["test", "--generator", "eps-far", "--n", "60", "--k", "4",
                   "--eps", "0.1", "--seed", "2"])
        out = capsys.readouterr().out
        assert "certified_farness=" in out
        assert rc == 1

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["test", "--generator", "nope", "--k", "3"])


class TestDetectCommand:
    def test_figure1(self, capsys):
        rc = main(["detect", "--generator", "figure1", "--k", "5",
                   "--edge", "0", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "detected=True" in out
        assert "max_seqs/msg=" in out

    def test_no_cycle(self, capsys):
        rc = main(["detect", "--generator", "cycle", "--n", "9", "--k", "5",
                   "--edge", "0", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "detected=False" in out

    def test_theta_generator(self, capsys):
        rc = main(["detect", "--generator", "theta", "--paths", "3",
                   "--path-length", "3", "--k", "6", "--edge", "0", "2"])
        assert rc == 0
        assert "detected=True" in capsys.readouterr().out


class TestExperimentCommand:
    def test_single_experiment(self, capsys):
        rc = main(["experiment", "T4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Lemma 5" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "T99"])


class TestTimelineFlag:
    def test_detect_with_timeline(self, capsys):
        rc = main(["detect", "--generator", "figure1", "--k", "5",
                   "--edge", "0", "1", "--timeline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "busiest edge" in out
        assert "total:" in out


class TestFuzzCommand:
    def test_clean_campaign(self, capsys):
        rc = main(["fuzz", "--trials", "12", "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ok" in out


class TestRegistryDrivenGraphArgs:
    def test_generator_accepts_every_registered_family(self):
        from repro.runner import registry

        choices = build_parser().parse_args(
            ["detect", "--generator", "ba", "--k", "4"]
        )
        assert choices.generator == "ba"
        for name in registry.names():
            args = build_parser().parse_args(
                ["detect", "--generator", name, "--k", "4"]
            )
            assert args.generator == name

    def test_new_family_flags_parse(self):
        args = build_parser().parse_args(
            ["test", "--generator", "ws", "--n", "30", "--d", "4",
             "--beta", "0.3", "--k", "4"]
        )
        assert (args.d, args.beta) == (4, 0.3)

    def test_detect_on_new_families(self, capsys):
        rc = main(["detect", "--generator", "ws", "--n", "20", "--d", "4",
                   "--beta", "0.0", "--k", "3", "--edge", "0", "1"])
        assert rc == 0
        assert "detected=True" in capsys.readouterr().out

    def test_test_on_ba_family(self, capsys):
        rc = main(["test", "--generator", "ba", "--n", "30", "--attach", "2",
                   "--k", "4", "--eps", "0.2", "--repetitions", "4",
                   "--seed", "1"])
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "TesterResult" in out


class TestCampaignCommand:
    def test_define_run_resume_report(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        store = tmp_path / "results.jsonl"

        rc = main(["campaign", "define", "--preset", "smoke",
                   "--out", str(spec)])
        assert rc == 0
        assert "24 run rows" in capsys.readouterr().out

        rc = main(["campaign", "run", "--spec", str(spec),
                   "--store", str(store), "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "24 executed, 0 skipped" in out
        assert store.exists()
        assert len(store.read_text().splitlines()) == 24

        rc = main(["campaign", "resume", "--spec", str(spec),
                   "--store", str(store), "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 executed, 24 skipped" in out

        rc = main(["campaign", "report", "--store", str(store)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign summary" in out
        assert "95% CI" in out

    def test_inline_factors_without_spec_file(self, tmp_path, capsys):
        store = tmp_path / "inline.jsonl"
        rc = main(["campaign", "run", "--name", "inline",
                   "--generators", "cycle,gnp", "--ns", "12,16",
                   "--ks", "4", "--eps-grid", "0.2",
                   "--algorithms", "detect", "--repetitions", "1",
                   "--seed", "3", "--store", str(store), "--workers", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        # cycle (no n sweep... cycle has n param: 2 sizes) + gnp (2 sizes)
        assert "4 executed" in out

    def test_ns_overrides_preset_sizes(self, tmp_path, capsys):
        # --ns without --generators must re-size the preset's families,
        # not be silently ignored.
        store = tmp_path / "sized.jsonl"
        rc = main(["campaign", "run", "--preset", "smoke", "--ns", "16",
                   "--ks", "4", "--algorithms", "detect",
                   "--repetitions", "1", "--store", str(store),
                   "--workers", "1"])
        assert rc == 0
        capsys.readouterr()
        import json

        sizes = {json.loads(line)["params"]["n"]
                 for line in store.read_text().splitlines()}
        assert sizes == {16}

    def test_report_missing_store(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "report", "--store",
                  str(tmp_path / "absent.jsonl")])

    def test_report_rejects_unknown_group_by(self, tmp_path, capsys):
        store = tmp_path / "g.jsonl"
        main(["campaign", "run", "--generators", "cycle", "--ns", "10",
              "--ks", "4", "--algorithms", "detect", "--repetitions", "1",
              "--store", str(store), "--workers", "1"])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="unknown group-by column"):
            main(["campaign", "report", "--store", str(store),
                  "--group-by", "generater,k"])

    def test_missing_or_invalid_spec_file_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no campaign spec"):
            main(["campaign", "run", "--spec", str(tmp_path / "nope.json"),
                  "--store", str(tmp_path / "s.jsonl")])
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="invalid JSON"):
            main(["campaign", "run", "--spec", str(bad),
                  "--store", str(tmp_path / "s.jsonl")])

    def test_error_rows_give_nonzero_exit(self, tmp_path, capsys):
        # eps-far cannot certify eps=0.9: the row becomes a persisted
        # error record and the command must signal it to automation.
        store = tmp_path / "err.jsonl"
        rc = main(["campaign", "run", "--generators", "eps-far",
                   "--ns", "20", "--ks", "5", "--eps-grid", "0.9",
                   "--algorithms", "tester", "--repetitions", "1",
                   "--store", str(store), "--workers", "1"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 errors" in out

    def test_inline_grid_not_named_after_preset(self, tmp_path, capsys):
        store = tmp_path / "c.jsonl"
        main(["campaign", "run", "--generators", "cycle", "--ns", "10",
              "--ks", "4", "--algorithms", "detect", "--repetitions", "1",
              "--store", str(store), "--workers", "1"])
        out = capsys.readouterr().out
        assert "campaign 'custom'" in out

    def test_define_rejects_bad_factors(self, tmp_path):
        with pytest.raises(SystemExit, match="k must be >= 3"):
            main(["campaign", "define", "--preset", "smoke",
                  "--ks", "2", "--out", str(tmp_path / "bad.json")])

    def test_explicit_zero_repetitions_rejected_not_ignored(self, tmp_path):
        with pytest.raises(SystemExit, match="repetitions must be >= 1"):
            main(["campaign", "define", "--preset", "smoke",
                  "--repetitions", "0", "--out", str(tmp_path / "bad.json")])

    def test_new_master_seed_reexecutes(self, tmp_path, capsys):
        store = tmp_path / "seeds.jsonl"
        base = ["campaign", "run", "--generators", "cycle", "--ns", "10",
                "--ks", "4", "--algorithms", "detect", "--repetitions", "1",
                "--store", str(store), "--workers", "1"]
        assert main(base + ["--seed", "1"]) == 0
        assert "1 executed" in capsys.readouterr().out
        assert main(base + ["--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out, "new seed must not be served stale rows"
        assert len(store.read_text().splitlines()) == 2

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_test_command_parses(self):
        args = build_parser().parse_args(
            ["test", "--generator", "cycle", "--n", "8", "--k", "5"]
        )
        assert args.k == 5
        assert args.generator == "cycle"


class TestTestCommand:
    def test_reject_exit_code(self, capsys):
        # C6 tested for C6-freeness: must reject -> exit code 1
        rc = main(["test", "--generator", "cycle", "--n", "6", "--k", "6",
                   "--eps", "0.3", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "reject" in out
        assert "evidence" in out

    def test_accept_exit_code(self, capsys):
        rc = main(["test", "--generator", "ck-free", "--n", "30", "--k", "5",
                   "--eps", "0.2", "--repetitions", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "accept" in out

    def test_eps_far_generator_reports_certificate(self, capsys):
        rc = main(["test", "--generator", "eps-far", "--n", "60", "--k", "4",
                   "--eps", "0.1", "--seed", "2"])
        out = capsys.readouterr().out
        assert "certified farness" in out
        assert rc == 1

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["test", "--generator", "nope", "--k", "3"])


class TestDetectCommand:
    def test_figure1(self, capsys):
        rc = main(["detect", "--generator", "figure1", "--k", "5",
                   "--edge", "0", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "detected=True" in out
        assert "max_seqs/msg=" in out

    def test_no_cycle(self, capsys):
        rc = main(["detect", "--generator", "cycle", "--n", "9", "--k", "5",
                   "--edge", "0", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "detected=False" in out

    def test_theta_generator(self, capsys):
        rc = main(["detect", "--generator", "theta", "--paths", "3",
                   "--path-length", "3", "--k", "6", "--edge", "0", "2"])
        assert rc == 0
        assert "detected=True" in capsys.readouterr().out


class TestExperimentCommand:
    def test_single_experiment(self, capsys):
        rc = main(["experiment", "T4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Lemma 5" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "T99"])


class TestTimelineFlag:
    def test_detect_with_timeline(self, capsys):
        rc = main(["detect", "--generator", "figure1", "--k", "5",
                   "--edge", "0", "1", "--timeline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "busiest edge" in out
        assert "total:" in out


class TestFuzzCommand:
    def test_clean_campaign(self, capsys):
        rc = main(["fuzz", "--trials", "12", "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ok" in out

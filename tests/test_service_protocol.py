"""Protocol-level service tests: error envelopes and a fuzzed boundary.

Every failure mode the protocol documents gets an explicit test of its
envelope (``{"error": {"code", "message", "status", ...}}``) over real
HTTP, and a hypothesis property drives random mutation batches through
the wire against a shadow :class:`~repro.dynamic.DynamicGraph` model:
whatever the bytes, a batch is either applied in order, rejected with a
line number, or rejected with the applied prefix count — never a crash,
never divergence from the shadow.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dynamic import DynamicGraph
from repro.graphs.graph import Graph
from repro.service import ServerHarness
from repro.service.protocol import ServiceError, parse_stream_batch


@pytest.fixture(scope="module")
def harness():
    with ServerHarness(max_sessions=16, debug=True) as h:
        yield h


@pytest.fixture()
def client(harness):
    c = harness.client()
    for name in list(c.list_sessions()["sessions"]):
        c.delete(name)
    return c


def assert_envelope(payload, status, code):
    """The uniform error envelope: code, message, status — and nothing
    leaking outside the ``error`` object."""
    assert set(payload) == {"error"}
    err = payload["error"]
    assert err["status"] == status
    assert err["code"] == code
    assert isinstance(err["message"], str) and err["message"]
    return err


class TestErrorEnvelopes:
    def test_unknown_session(self, client):
        for method, path in [
            ("GET", "/v1/sessions/ghost"),
            ("GET", "/v1/sessions/ghost/verdict"),
            ("GET", "/v1/sessions/ghost/snapshot"),
            ("DELETE", "/v1/sessions/ghost"),
            ("POST", "/v1/sessions/ghost/mutations"),
        ]:
            status, payload = client.request(method, path, body=b"")
            err = assert_envelope(payload, 404, "unknown_session")
            assert "ghost" in err["message"]

    def test_malformed_stream_has_line_number(self, client):
        client.create_session(name="mal", k=3, n=4)
        status, payload = client.request(
            "POST", "/v1/sessions/mal/mutations",
            body=b"+ 0 1\n# fine\nwat 9\n", content_type="text/plain",
        )
        err = assert_envelope(payload, 400, "malformed_stream")
        assert err["line"] == 3
        # Parse errors reject the whole batch: nothing was applied.
        assert client.verdict("mal")["version"] == 0

    def test_invalid_mutation_reports_applied_prefix(self, client):
        client.create_session(name="dup", k=3, n=4)
        status, payload = client.request(
            "POST", "/v1/sessions/dup/mutations",
            body=b"+ 0 1\n+ 1 2\n+ 0 1\n+ 2 3\n", content_type="text/plain",
        )
        err = assert_envelope(payload, 409, "invalid_mutation")
        assert err["line"] == 3
        assert err["applied"] == 2
        assert err["version"] == 2
        # The valid prefix stays applied.
        assert client.verdict("dup")["version"] == 2

    def test_oversized_body(self, client):
        with ServerHarness(max_sessions=2, max_body_bytes=256) as small:
            c = small.client()
            c.create_session(name="big", k=3, n=4)
            status, payload = c.request(
                "POST", "/v1/sessions/big/mutations",
                body=b"# pad\n" * 100, content_type="text/plain",
            )
            assert status == 413
            assert_envelope(payload, 413, "payload_too_large")

    def test_request_timeout(self):
        with ServerHarness(
            max_sessions=2, debug=True, request_timeout=0.05
        ) as slow:
            status, payload = slow.client().request(
                "GET", "/debug/sleep?seconds=1"
            )
            assert status == 504
            assert_envelope(payload, 504, "timeout")

    def test_bad_json_body(self, client):
        status, payload = client.request(
            "POST", "/v1/sessions", body=b"{not json",
        )
        assert_envelope(payload, 400, "bad_request")

    def test_missing_k(self, client):
        status, payload = client.request(
            "POST", "/v1/sessions", body=json.dumps({"n": 4}).encode(),
        )
        err = assert_envelope(payload, 400, "bad_request")
        assert "'k'" in err["message"]

    def test_unknown_engine(self, client):
        status, payload = client.request(
            "POST", "/v1/sessions",
            body=json.dumps({"k": 3, "n": 4, "engine": "warp"}).encode(),
        )
        err = assert_envelope(payload, 400, "bad_request")
        assert "warp" in err["message"]

    def test_unknown_spec_field(self, client):
        status, payload = client.request(
            "POST", "/v1/sessions",
            body=json.dumps({"k": 3, "n": 4, "colour": "red"}).encode(),
        )
        err = assert_envelope(payload, 400, "bad_request")
        assert "colour" in err["message"]

    def test_base_and_n_mutually_exclusive(self, client):
        for spec in ({"k": 3}, {"k": 3, "n": 4, "base": "2 0\n"}):
            status, payload = client.request(
                "POST", "/v1/sessions", body=json.dumps(spec).encode(),
            )
            assert_envelope(payload, 400, "bad_request")

    def test_invalid_session_name(self, client):
        status, payload = client.request(
            "POST", "/v1/sessions",
            body=json.dumps({"k": 3, "n": 4, "name": "no spaces!"}).encode(),
        )
        assert_envelope(payload, 400, "bad_request")

    def test_duplicate_session_name(self, client):
        client.create_session(name="twin", k=3, n=4)
        status, payload = client.request(
            "POST", "/v1/sessions",
            body=json.dumps({"k": 3, "n": 4, "name": "twin"}).encode(),
        )
        assert_envelope(payload, 409, "session_exists")

    def test_unknown_route(self, client):
        status, payload = client.request("GET", "/v1/nonsense")
        assert_envelope(payload, 404, "not_found")

    def test_method_not_allowed(self, client):
        client.create_session(name="ro", k=3, n=4)
        for method, path in [
            ("DELETE", "/healthz"),
            ("POST", "/v1/sessions/ro/verdict"),
            ("GET", "/v1/sessions/ro/mutations"),
        ]:
            status, payload = client.request(method, path, body=b"")
            assert_envelope(payload, 405, "method_not_allowed")

    def test_debug_disabled_by_default(self):
        with ServerHarness(max_sessions=2) as plain:
            status, payload = plain.client().request(
                "GET", "/debug/sleep?seconds=0"
            )
            assert_envelope(payload, 404, "not_found")


# ---------------------------------------------------------------------------
# Fuzzing the edge-stream parser through the HTTP boundary
# ---------------------------------------------------------------------------
_small = st.integers(min_value=-2, max_value=7)
_line = st.one_of(
    st.tuples(st.sampled_from(["+", "-"]), _small, _small).map(
        lambda t: f"{t[0]} {t[1]} {t[2]}"
    ),
    st.just("+v"),
    st.just(""),
    st.just("# comment"),
    st.text(
        alphabet="+-v 0123456789#x", min_size=0, max_size=12
    ).map(lambda s: s.replace("\n", " ")),
)
_batches = st.lists(
    st.lists(_line, min_size=0, max_size=6), min_size=1, max_size=5
)

_fuzz_counter = iter(range(10 ** 6))


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(batches=_batches)
def test_fuzz_mutation_batches_match_shadow(harness, batches):
    """Random batches: applied-in-order or rejected with a line number,
    never a crash, and the session never diverges from a shadow model."""
    client = harness.client()
    name = f"fuzz-{next(_fuzz_counter):06d}"
    n = 6
    client.create_session(name=name, k=3, n=n, tester_repetitions=1)
    shadow = DynamicGraph(Graph(n))
    try:
        for lines in batches:
            text = "\n".join(lines) + "\n"
            status, payload = client.request(
                "POST", f"/v1/sessions/{name}/mutations",
                body=text.encode("utf-8"), content_type="text/plain",
            )
            assert status in (200, 400, 409), payload
            try:
                batch = parse_stream_batch(text)
            except ServiceError as exc:
                # Server must agree: same verdict, same offending line.
                assert status == 400
                assert payload["error"]["code"] == "malformed_stream"
                assert payload["error"]["line"] == exc.extras["line"]
                continue
            assert status != 400
            if status == 200:
                for _lineno, mutation in batch:
                    shadow.apply(mutation)
                assert payload["applied"] == len(batch)
                assert payload["version"] == shadow.version
            else:
                err = payload["error"]
                assert err["code"] == "invalid_mutation"
                applied = err["applied"]
                for _lineno, mutation in batch[:applied]:
                    shadow.apply(mutation)
                # The reported line is exactly the first invalid one.
                assert err["line"] == batch[applied][0]
                with pytest.raises(Exception):
                    shadow.apply(batch[applied][1])
                assert err["version"] == shadow.version
        snap = client.snapshot(name)
        assert snap["version"] == shadow.version
        assert snap["content_hash"] == shadow.content_hash()
    finally:
        client.delete(name)

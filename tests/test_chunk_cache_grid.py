"""Bit-identity of the tester across the performance axes.

The batched-repetition kernels (``chunk=C`` engine-spec option) and the
compiled-instance cache (:class:`~repro.congest.engine.cache.EngineCache`)
are *transparent* optimisations: under a fixed seed, every cell of the

    ``rep_chunk in {1, 3, R}  x  cache in {off, on}  x  engine family``

grid must produce the same verdict, the same per-repetition reports and
evidence, the same trace aggregates, and the same protocol-level
telemetry counters.  This module pins that contract down to byte
equality of the full result fingerprint.

One deliberate carve-out: ``repro_shard_*`` metrics are the sharded
backend's *dispatch* diagnostics — a chunked run sends one command per
chunk where a serial run sends one per repetition, so dispatch counts
legitimately differ.  Everything protocol-determined
(``repro_congest_*``, ``repro_tester_*``) must still match exactly.
"""

import pytest

from repro.congest.engine.cache import EngineCache
from repro.core.tester import CkFreenessTester
from repro.graphs.generators import ck_free_graph, planted_epsilon_far_graph
from repro.obs import Telemetry

K = 5
EPS = 0.1
REPS = 6
SEED = 1234

FAMILIES = ("reference", "fast", "sharded")
CHUNKS = (1, 3, REPS)


def _graph(name):
    if name == "far":
        g, _ = planted_epsilon_far_graph(60, K, EPS, seed=3)
        return g
    return ck_free_graph(60, K, seed=4)


def _specs(family):
    """Every spec spelling of ``family`` on the chunk axis.

    ``reference`` takes no options (its repetitions are inherently
    serial), so its chunk axis collapses to the bare name.
    """
    if family == "reference":
        return ("reference",)
    if family == "fast":
        return tuple(f"fast:chunk={c}" for c in CHUNKS)
    return tuple(f"sharded:2,chunk={c}" for c in CHUNKS)


def _run(spec, graph, cache):
    tel = Telemetry()
    tester = CkFreenessTester(
        K, EPS, repetitions=REPS, engine=spec, telemetry=tel, cache=cache
    )
    res = tester.run(graph, seed=SEED, stop_on_reject=False, keep_traces=True)
    return res, tel.summary()


def _fingerprint(res):
    """Everything observable about a TesterResult, as one comparable value."""
    return (
        res.accepted,
        res.repetitions_run,
        res.repetitions_planned,
        res.rounds_per_repetition,
        tuple(
            (
                r.index,
                r.rejected,
                r.cycle_ids,
                tuple(r.rejecting_vertices),
                r.rounds,
            )
            for r in res.reports
        ),
        tuple(tuple(sorted(t.summary().items())) for t in res.traces),
    )


def _normalise(summary, spec, family):
    """Summary keys with engine labels folded to a placeholder.

    Tester counters are labelled with the full spec string
    (``engine=fast:chunk=3``) and trace exports with the backend name
    (``engine=fast``); both are presentation, not protocol.  Shard
    dispatch internals are dropped (see module docstring).
    """
    out = {}
    for key, value in summary.items():
        if key.startswith("repro_shard_"):
            continue
        out[key.replace(spec, "<engine>").replace(family, "<engine>")] = value
    return out


@pytest.mark.parametrize("name", ["far", "free"])
def test_grid_bit_identity(name):
    graph = _graph(name)
    cache = EngineCache()
    fingerprints = {}
    summaries = {}
    for family in FAMILIES:
        for spec in _specs(family):
            for cached in (False, True):
                res, summary = _run(spec, graph, cache if cached else None)
                cell = (family, spec, cached)
                fingerprints[cell] = _fingerprint(res)
                summaries[cell] = _normalise(summary, spec, family)

    cells = list(fingerprints)
    base = cells[0]
    for cell in cells[1:]:
        assert fingerprints[cell] == fingerprints[base], (
            f"result fingerprint diverged: {cell} vs {base}"
        )
        assert summaries[cell] == summaries[base], (
            f"telemetry summary diverged: {cell} vs {base}"
        )

    # The verdict matches the instance by construction.
    assert fingerprints[base][0] is (name == "free")

    # The shared cache actually carried the load: one compile per
    # (spec, strictness) pair, every later cached run a hit.
    assert cache.misses == sum(len(_specs(f)) for f in FAMILIES)
    assert cache.hits == 0


@pytest.mark.parametrize("family", ["fast", "sharded"])
def test_warm_cache_hits_are_identical(family):
    """A second cached run is served from cache and still bit-identical.

    Compile-time diagnostics (shard count, pool spawns) land in the
    registry of the run that compiled the engine — another reason the
    ``repro_shard_*`` family sits outside the identity contract.
    """
    graph = _graph("far")
    cache = EngineCache()
    spec = _specs(family)[1]  # chunk=3
    first, tel_first = _run(spec, graph, cache)
    second, tel_second = _run(spec, graph, cache)
    assert cache.misses == 1 and cache.hits == 1
    assert _fingerprint(first) == _fingerprint(second)
    assert _normalise(tel_first, spec, family) == _normalise(
        tel_second, spec, family
    )

"""End-to-end service tests: every endpoint's happy path over real HTTP.

A module-scoped :class:`~repro.service.ServerHarness` boots one server
on an ephemeral port; every test talks to it through the sync client,
so each assertion exercises the full wire protocol (request framing,
routing, JSON envelopes) rather than handler internals.
"""

import json

import pytest

from repro.dynamic import CkMonitor, build_stream
from repro.graphs import io as graph_io
from repro.graphs.generators import cycle_graph, erdos_renyi_gnp
from repro.obs import parse_textfile
from repro.service import ServerHarness, ServiceClient
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.protocol import PROTOCOL_VERSION


@pytest.fixture(scope="module")
def harness():
    with ServerHarness(max_sessions=16, debug=True) as h:
        yield h


@pytest.fixture()
def client(harness):
    c = harness.client()
    # Each test starts from an empty session table.
    for name in list(c.list_sessions()["sessions"]):
        c.delete(name)
    return c


class TestLifecycle:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["protocol"] == PROTOCOL_VERSION
        assert payload["max_sessions"] == 16

    def test_create_from_n(self, client):
        created = client.create_session(name="empty", k=5, n=8)
        assert created["name"] == "empty"
        assert created["version"] == 0
        assert created["accepted"] is True  # edgeless graph is C5-free
        assert created["witness"] is None

    def test_create_from_base_text(self, client):
        g = cycle_graph(5)
        created = client.create_session(
            name="c5", k=5, base=graph_io.dumps(g)
        )
        assert created["accepted"] is False
        assert sorted(created["witness"]) == [0, 1, 2, 3, 4]

    def test_auto_named(self, client):
        created = client.create_session(k=5, n=4)
        assert created["name"].startswith("s")
        assert created["name"] in client.list_sessions()["sessions"]

    def test_list_info_delete(self, client):
        client.create_session(name="a", k=5, n=4)
        client.create_session(name="b", k=4, n=4)
        listing = client.list_sessions()
        assert listing["sessions"] == ["a", "b"]
        assert listing["open"] == 2
        info = client.info("a")
        assert info["k"] == 5
        assert info["n"] == 4
        assert info["m"] == 0
        assert info["engine"] == "reference"
        assert info["stats"]["steps"] == 0
        assert "cache_hit_rate" in info["stats"]
        deleted = client.delete("a")
        assert deleted["deleted"] == "a"
        assert client.list_sessions()["sessions"] == ["b"]

    def test_mutate_and_verdict(self, client):
        client.create_session(name="w", k=3, n=3)
        result = client.mutate("w", "+ 0 1\n+ 1 2\n")
        assert result["applied"] == 2
        assert result["version"] == 2
        assert result["accepted"] is True
        result = client.mutate("w", "# close the triangle\n+ 0 2\n")
        assert result["applied"] == 1
        assert result["accepted"] is False
        verdict = client.verdict("w")
        assert verdict["version"] == 3
        assert verdict["accepted"] is False
        assert len(verdict["witness"]) == 3
        result = client.mutate("w", "- 0 2\n")
        assert client.verdict("w")["accepted"] is True

    def test_snapshot_round_trips(self, client):
        client.create_session(name="snap", k=4, n=6)
        client.mutate("snap", "+ 0 1\n+ 2 3\n+v\n")
        snap = client.snapshot("snap")
        assert snap["version"] == 3
        assert snap["n"] == 7
        assert snap["m"] == 2
        g = graph_io.loads(snap["graph"])
        assert (g.n, g.m) == (7, 2)
        assert g.content_hash() == snap["content_hash"]
        log = graph_io.loads_stream(snap["log"])
        assert [m.to_line() for m in log] == ["+ 0 1", "+ 2 3", "+v"]

    def test_metrics_exposition(self, client):
        client.create_session(name="m", k=5, n=4)
        client.mutate("m", "+ 0 1\n")
        client.verdict("m")
        families = parse_textfile(client.metrics())
        requests = families["repro_service_requests_total"]
        assert requests.kind == "counter"
        endpoints = {
            dict(labels).get("endpoint")
            for labels, _value in requests.series()
        }
        # The scrape itself is counted after rendering, so "metrics"
        # only shows up in the *next* scrape.
        assert {"create", "mutate", "verdict"} <= endpoints
        # The session monitors share the server registry, so monitor
        # cache counters (the cache-hit rate inputs) are exposed too.
        assert "repro_monitor_steps_total" in families
        assert "repro_service_request_seconds" in families


class TestParity:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_service_matches_offline_monitor(self, client, engine):
        """Replaying a scenario through HTTP equals the offline monitor."""
        seed = 20260808
        base = erdos_renyi_gnp(30, 0.1, seed=seed)
        stream = build_stream(
            "uniform-churn:steps=40,p=0.5", base, seed=seed, k=5
        )
        client.create_session(
            name=f"par-{engine}", k=5, engine=engine, seed=seed,
            base=graph_io.dumps(stream.base),
        )
        for mutation in stream.mutations:
            client.mutate(f"par-{engine}", mutation.to_line() + "\n")
        snap = client.snapshot(f"par-{engine}")

        monitor = CkMonitor(stream.base, 5, engine=engine, seed=seed)
        monitor.run_stream(stream.mutations)
        assert snap["version"] == monitor.version
        assert snap["accepted"] == monitor.accepted
        assert snap["content_hash"] == monitor.dynamic.content_hash()

    def test_engines_agree_through_service(self, client):
        seed = 7
        base = erdos_renyi_gnp(24, 0.12, seed=seed)
        stream = build_stream("burst:steps=20", base, seed=seed, k=5)
        finals = {}
        for engine in ("reference", "fast"):
            name = f"agree-{engine}"
            client.create_session(
                name=name, k=5, engine=engine, seed=seed,
                base=graph_io.dumps(stream.base),
            )
            text = "".join(m.to_line() + "\n" for m in stream.mutations)
            client.mutate(name, text)
            finals[engine] = client.snapshot(name)
        assert (
            finals["reference"]["accepted"] == finals["fast"]["accepted"]
        )
        assert (
            finals["reference"]["content_hash"]
            == finals["fast"]["content_hash"]
        )


class TestLoadgen:
    def test_smoke_profile_summary(self, tmp_path):
        out = tmp_path / "lg.jsonl"
        prom = tmp_path / "lg.prom"
        summary = run_loadgen(
            LoadgenConfig(clients=3), out=out, metrics_out=prom
        )
        assert summary["errors"] == 0
        assert summary["parity_ok"] is True
        assert summary["clients"] == 3
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        client_rows = [r for r in rows if r.get("row") == "client"]
        assert len(client_rows) == 3
        assert all(r["parity_ok"] for r in client_rows)
        assert rows[-1]["summary"]["requests"] == summary["requests"]
        families = parse_textfile(prom.read_text())
        assert "repro_service_requests_total" in families

    def test_against_running_server(self, harness):
        summary = run_loadgen(
            LoadgenConfig(clients=2),
            host=harness.host, port=harness.port,
        )
        assert summary["errors"] == 0
        assert summary["parity_ok"] is True

    def test_cli_loadgen(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "cli.jsonl"
        rc = main([
            "loadgen", "--clients", "2", "--out", str(out),
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["parity_ok"] is True
        assert out.exists()

    def test_cli_loadgen_rejects_bad_params(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="bad --params"):
            main(["loadgen", "--params", "nonsense"])


class TestHarness:
    def test_context_manager_drains(self):
        with ServerHarness(max_sessions=2) as h:
            port = h.port
            h.client().create_session(name="x", k=5, n=4)
        # After exit the port no longer accepts requests.
        refused = ServiceClient("127.0.0.1", port, timeout=0.5)
        with pytest.raises(OSError):
            refused.healthz()

    def test_double_start_rejected(self):
        h = ServerHarness(max_sessions=2)
        try:
            h.start()
            with pytest.raises(Exception, match="already started"):
                h.start()
        finally:
            h.stop()

"""Tests for the closed-form bounds module."""

import math

import pytest

from repro.core import (
    exact_distinct_rank_probability,
    lemma3_bound,
    lemma5_bound,
    max_sequences_any_round,
    message_bits_bound,
    per_repetition_detection_bound,
    repetitions_needed,
    rounds_per_repetition,
    total_rounds,
)
from repro.errors import ConfigurationError


class TestLemma3:
    def test_values(self):
        # round 1 always a single sequence
        for k in range(3, 12):
            assert lemma3_bound(k, 1) == 1
        assert lemma3_bound(8, 2) == 7
        assert lemma3_bound(8, 3) == 36
        assert lemma3_bound(8, 4) == 125

    def test_max_any_round(self):
        assert max_sequences_any_round(3) == 1
        assert max_sequences_any_round(8) == 125
        # monotone in k
        vals = [max_sequences_any_round(k) for k in range(3, 12)]
        assert vals == sorted(vals)

    def test_constant_in_nothing_else(self):
        with pytest.raises(ConfigurationError):
            lemma3_bound(6, 4)


class TestLemma5:
    def test_bound_value(self):
        assert lemma5_bound() == pytest.approx(math.exp(-2))

    def test_exact_probability_monotone_to_limit(self):
        """(1 - i/m²) products approach a limit > 1/e² as m grows."""
        vals = [exact_distinct_rank_probability(m) for m in (2, 4, 16, 64, 256)]
        for v in vals:
            assert v >= lemma5_bound()
        # limit is exp(-1/2) ≈ 0.6065
        assert vals[-1] == pytest.approx(math.exp(-0.5), abs=5e-3)

    def test_m1(self):
        assert exact_distinct_rank_probability(1) == 1.0

    def test_bad_m(self):
        with pytest.raises(ConfigurationError):
            exact_distinct_rank_probability(0)


class TestRepetitions:
    def test_formula(self):
        assert repetitions_needed(0.1) == math.ceil(math.e**2 * 10 * math.log(3))

    def test_monotone_in_eps(self):
        assert repetitions_needed(0.05) > repetitions_needed(0.1) > repetitions_needed(0.4)

    def test_per_rep_bound(self):
        assert per_repetition_detection_bound(0.1) == pytest.approx(
            0.1 * math.exp(-2)
        )

    def test_bad_eps(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                repetitions_needed(bad)

    def test_boosting_arithmetic(self):
        """The paper's boosting claim: with p >= eps/e² per repetition and
        r = ceil(e²/eps * ln3) repetitions, failure prob <= 1/3."""
        for eps in (0.05, 0.1, 0.2, 0.4):
            p = per_repetition_detection_bound(eps)
            r = repetitions_needed(eps)
            assert (1 - p) ** r <= 1 / 3 + 1e-12


class TestRounds:
    def test_rounds_per_repetition(self):
        assert rounds_per_repetition(3) == 2
        assert rounds_per_repetition(8) == 5
        with pytest.raises(ConfigurationError):
            rounds_per_repetition(2)

    def test_total_rounds(self):
        assert total_rounds(5, 0.1) == repetitions_needed(0.1) * 3
        assert total_rounds(5, 0.1, repetitions=7) == 21

    def test_total_rounds_o_one_over_eps(self):
        """O(1/ε): eps -> eps/2 at most ~doubles the rounds (+1 ceil)."""
        for eps in (0.4, 0.2, 0.1):
            a = total_rounds(6, eps)
            b = total_rounds(6, eps / 2)
            assert b <= 2 * a + rounds_per_repetition(6)


class TestMessageBits:
    def test_formula(self):
        # k=5, t=2: 4 sequences * (2*10 + 8) + 8
        assert message_bits_bound(5, 2, id_bits=10) == 4 * 28 + 8

    def test_log_n_scaling(self):
        """For fixed k the bound is linear in id_bits = Θ(log n)."""
        k, t = 7, 3
        b1 = message_bits_bound(k, t, id_bits=10)
        b2 = message_bits_bound(k, t, id_bits=20)
        assert b2 < 2 * b1

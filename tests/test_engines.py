"""Cross-engine equivalence: the ``fast`` backend must be observationally
identical to the ``reference`` scheduler under fixed seeds.

Layers covered here:

* bit-exactness of the vectorized RNG pipeline (``fastrng``) against
  per-node numpy Generators — the foundation of verdict equivalence;
* engine-level equivalence on the registry's stress instances (seeded
  grid over theta / flower / figure1 / eps-far, tester + detect);
* tester-level equality of full :class:`TesterResult` objects;
* the campaign runner's ``engines`` factor (same seeds, same outcomes,
  resumable stores, backward-compatible run ids);
* CLI ``--engine`` selection and the clean no-numpy error path.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.congest.engine import (
    ENGINE_NAMES,
    available_engines,
    create_engine,
    ensure_engine_available,
)
from repro.congest.engine.fastrng import RankStreams
from repro.congest.ids import RandomPermutationIds, ReverseIds
from repro.congest.network import Network
from repro.core.algorithm1 import detect_cycle_through_edge
from repro.core.tester import CkFreenessTester
from repro.errors import (
    BandwidthExceededError,
    ConfigurationError,
    EngineUnavailableError,
)
from repro.graphs.generators import erdos_renyi_gnp, star_graph
from repro.runner import CampaignSpec, CampaignStore, run_campaign
from repro.runner import registry
from repro.testing import (
    DEFAULT_EQUIVALENCE_INSTANCES,
    compare_engines_once,
    engine_equivalence_report,
)


class TestFastRngExactness:
    """fastrng replicates numpy's per-node Generator streams bit for bit."""

    IDS = list(range(12)) + [999, 2**31, 2**32 - 1]

    def _numpy_streams(self, seed_word):
        return [
            np.random.default_rng(np.random.SeedSequence((seed_word, i)))
            for i in self.IDS
        ]

    @pytest.mark.parametrize(
        "low, high",
        [
            (1, 4019 ** 2 + 1),   # the tester's rank range (Lemire-32)
            (1, 0xF0000001),      # ~6% rejection probability
            (1, 2),               # zero-width range: no draw consumed
            (0, 2 ** 32),         # full 32-bit range: raw next32
            (1, 2 ** 40),         # Lemire-64
        ],
    )
    def test_bounded_draws_match_numpy(self, low, high):
        seed_word = 123456789
        rs = RankStreams(seed_word, np.array(self.IDS, dtype=np.uint64))
        gens = self._numpy_streams(seed_word)
        for round_ in range(6):
            # A varying subset exercises per-stream masking and buffering.
            sub = [i for i in range(len(self.IDS)) if (i + round_) % 3]
            mine = rs.integers(np.array(sub), low, high)
            theirs = [int(gens[i].integers(low, high)) for i in sub]
            assert mine.tolist() == theirs

    def test_interleaved_ranges_share_the_buffered_half(self):
        rs = RankStreams(11, np.arange(8, dtype=np.uint64))
        gens = [
            np.random.default_rng(np.random.SeedSequence((11, i)))
            for i in range(8)
        ]
        idx = np.arange(8)
        for low, high in [(1, 101), (1, 2 ** 34), (0, 2 ** 32), (5, 6)]:
            assert rs.integers(idx, low, high).tolist() == [
                int(g.integers(low, high)) for g in gens
            ]

    def test_rejects_ids_above_32_bits(self):
        with pytest.raises(ValueError):
            RankStreams(0, np.array([2 ** 32], dtype=np.uint64))


class TestEngineRegistry:
    def test_names_and_availability(self):
        assert ENGINE_NAMES == ("reference", "fast", "sharded")
        # numpy is installed in the test environment: all must be usable
        # (sharded additionally needs multiprocessing.shared_memory,
        # present on every supported CPython).
        assert available_engines() == ("reference", "fast", "sharded")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            ensure_engine_available("warp")
        with pytest.raises(ConfigurationError):
            CkFreenessTester(5, 0.1, engine="warp")

    def test_missing_numpy_raises_clean_engine_error(self, monkeypatch):
        import repro.congest.engine as engine_mod

        monkeypatch.setattr(
            engine_mod, "_numpy_missing", lambda: "No module named 'numpy'"
        )
        with pytest.raises(EngineUnavailableError, match=r"pip install"):
            engine_mod.ensure_engine_available("fast")
        # The reference engine is unaffected.
        engine_mod.ensure_engine_available("reference")


class TestCrossEngineEquivalence:
    """The seeded stress-instance grid of the acceptance criteria."""

    def test_stress_instance_grid(self):
        report = engine_equivalence_report(
            instances=DEFAULT_EQUIVALENCE_INSTANCES,
            ks=(3, 4, 5, 6, 7),
            seeds=(0, 1),
        )
        # 4 instances x 5 ks x (2 tester seeds + 1 deterministic detect)
        assert report.comparisons == 60
        assert report.ok, report.mismatches

    @pytest.mark.parametrize("assigner", [None, ReverseIds(),
                                          RandomPermutationIds(seed=3)])
    def test_id_assignment_does_not_break_equivalence(self, assigner):
        g = erdos_renyi_gnp(24, 0.2, seed=5)
        net = Network(g, assigner)
        for k in (4, 5):
            for seed in (0, 9):
                assert compare_engines_once(
                    g, k, seed, network=net, what="tester"
                ) == []
                assert compare_engines_once(
                    g, k, seed, network=net, what="detect"
                ) == []

    def test_tester_results_identical_end_to_end(self):
        g = registry.build_graph("eps-far", n=40, k=5, eps=0.1, seed=2)
        results = {}
        for engine in ENGINE_NAMES:
            t = CkFreenessTester(5, 0.1, repetitions=6, engine=engine)
            results[engine] = t.run(g, seed=123, stop_on_reject=False)
        a, b = results["reference"], results["fast"]
        assert a.accepted == b.accepted
        assert a.repetitions_run == b.repetitions_run
        assert [
            (r.rejected, r.cycle_ids, r.rejecting_vertices, r.rounds)
            for r in a.reports
        ] == [
            (r.rejected, r.cycle_ids, r.rejecting_vertices, r.rounds)
            for r in b.reports
        ]

    def test_detect_results_identical(self):
        g = registry.build_graph("flower", paths=4, k=6)
        for k in (4, 5, 6):
            ref = detect_cycle_through_edge(g, (0, 1), k, engine="reference")
            fast = detect_cycle_through_edge(g, (0, 1), k, engine="fast")
            assert ref.detected == fast.detected
            assert ref.rejecting_vertices == fast.rejecting_vertices
            assert ref.any_cycle_ids() == fast.any_cycle_ids()
            assert (ref.run.trace.summary() == fast.run.trace.summary())

    def test_edgeless_network_accepts_in_both_engines(self):
        from repro.graphs.graph import Graph

        net = Network(Graph(5))
        for engine in ENGINE_NAMES:
            run = create_engine(engine, net).run_tester_repetition(5, 0)
            assert all(not o.rejects for o in run.outputs.values())
            assert run.trace.num_rounds == 3

    def test_star_graph_and_isolated_vertices(self):
        g = star_graph(6)          # C_k-free, plus add isolated vertices
        g.add_vertex()
        g.add_vertex()
        for seed in (0, 1):
            assert compare_engines_once(g, 4, seed, what="tester") == []

    def test_custom_pruner_skips_the_seed_shortcut(self):
        from repro.core.pruning import ExplicitPruner

        g = registry.build_graph("theta", paths=4, path_length=2)
        net = Network(g)
        for k in (4, 5, 6):
            a = create_engine("reference", net).run_tester_repetition(
                k, 7, pruner=ExplicitPruner()
            )
            b = create_engine("fast", net).run_tester_repetition(
                k, 7, pruner=ExplicitPruner()
            )
            assert {v for v, o in a.outputs.items() if o.rejects} == {
                v for v, o in b.outputs.items() if o.rejects
            }

    def test_strict_bandwidth_raises_in_both_engines(self):
        # A tiny budget makes every Phase-2 bundle oversized.
        g = registry.build_graph("flower", paths=5, k=6)
        net = Network(g)
        model = net.default_size_model()
        tight = type(model)(id_bits=model.id_bits, rank_bits=model.rank_bits,
                            budget_factor=0)
        for engine in ENGINE_NAMES:
            eng = create_engine(engine, net, size_model=tight,
                                strict_bandwidth=True)
            with pytest.raises(BandwidthExceededError):
                eng.run_tester_repetition(6, 0)

    def test_fast_engine_rejects_oversized_ids(self):
        from repro.congest.ids import IdAssigner
        from repro.errors import CongestError

        class HugeIds(IdAssigner):
            def assign(self, n):
                return [2 ** 32 + i for i in range(n)]

            def id_space(self, n):
                return 2 ** 33

        net = Network(erdos_renyi_gnp(6, 0.5, seed=0), HugeIds())
        with pytest.raises(CongestError, match="2\\*\\*32"):
            create_engine("fast", net)


class TestEngineCampaignFactor:
    def _spec(self, tmp_name="engines-unit", engines=("reference", "fast")):
        return CampaignSpec(
            name=tmp_name,
            generators=[
                {"family": "gnp", "params": {"n": 20, "p": 0.15}},
                {"family": "eps-far", "params": {"n": 40}},
            ],
            ks=[4, 5],
            epsilons=[0.15],
            algorithms=["tester", "detect"],
            engines=list(engines),
            repetitions=2,
            seed=13,
        )

    def test_engine_twins_share_seeds_and_outcomes(self, tmp_path):
        store = CampaignStore(tmp_path / "e.jsonl")
        run_campaign(self._spec().expand(), store, workers=1)
        by_factors = {}
        for rec in store.records():
            key = (rec["generator"], rec["k"], rec["algorithm"],
                   rec["repetition"])
            by_factors.setdefault(key, {})[rec["engine"]] = rec
        assert by_factors
        for key, pair in by_factors.items():
            assert set(pair) == {"reference", "fast"}
            ref, fast = pair["reference"], pair["fast"]
            assert ref["status"] == fast["status"] == "ok", key
            assert ref["seed"] == fast["seed"], key
            assert ref["outcome"] == fast["outcome"], key

    def test_reference_rows_keep_pre_engine_run_ids(self):
        # Backward compatibility: a reference-only grid must expand to the
        # same ids/seeds as before the engine factor existed, so old
        # campaign stores stay resumable.
        ref_only = self._spec(engines=("reference",)).expand()
        both = self._spec().expand()
        ref_rows_of_both = [r for r in both if r.engine == "reference"]
        assert [r.run_id for r in ref_only] == [
            r.run_id for r in ref_rows_of_both
        ]
        assert [r.seed for r in ref_only] == [r.seed for r in ref_rows_of_both]

    def test_engine_rows_are_distinct_but_seed_aligned(self):
        rows = self._spec().expand().rows
        ids = [r.run_id for r in rows]
        assert len(set(ids)) == len(ids)
        fast = {(r.generator, r.k, r.algorithm, r.repetition): r
                for r in rows if r.engine == "fast"}
        for r in rows:
            if r.engine != "reference":
                continue
            twin = fast[(r.generator, r.k, r.algorithm, r.repetition)]
            assert twin.seed == r.seed

    def test_baselines_do_not_cross_with_the_engine_factor(self):
        # naive/gather ignore the engine, so expanding them per engine
        # would duplicate work and mislabel report rows; the expansion
        # pins them to the reference scheduler instead.
        spec = self._spec(engines=("reference", "fast"))
        spec.algorithms = ["tester", "naive"]
        rows = spec.expand().rows
        naive = [r for r in rows if r.algorithm == "naive"]
        assert naive and all(r.engine == "reference" for r in naive)
        tester = [r for r in rows if r.algorithm == "tester"]
        assert {r.engine for r in tester} == {"reference", "fast"}
        # exactly one naive row per factor cell, not one per engine
        assert len(naive) * 2 == len(tester)

    def test_validation_rejects_unknown_engines(self):
        with pytest.raises(ConfigurationError):
            self._spec(engines=("warp",)).expand()
        with pytest.raises(ConfigurationError):
            self._spec(engines=()).expand()

    def test_spec_json_round_trips_engines(self):
        spec = self._spec()
        clone = CampaignSpec.from_json(spec.to_json())
        assert tuple(clone.engines) == ("reference", "fast")
        assert clone.expand().row_ids() == spec.expand().row_ids()


class TestEngineCli:
    def test_test_command_accepts_engine_flag(self, capsys):
        rc_ref = cli_main(["test", "--generator", "eps-far", "--n", "40",
                           "--k", "4", "--eps", "0.15", "--seed", "5"])
        out_ref = capsys.readouterr().out
        rc_fast = cli_main(["test", "--generator", "eps-far", "--n", "40",
                            "--k", "4", "--eps", "0.15", "--seed", "5",
                            "--engine", "fast"])
        out_fast = capsys.readouterr().out
        assert rc_ref == rc_fast
        assert out_ref == out_fast  # identical verdict, evidence and rounds

    def test_detect_command_accepts_engine_flag(self, capsys):
        outputs = {}
        for engine in ENGINE_NAMES:
            assert cli_main(["detect", "--generator", "figure1",
                             "--k", "5", "--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["reference"] == outputs["fast"]

    def test_missing_numpy_is_a_clean_cli_error(self, capsys, monkeypatch):
        import repro.congest.engine as engine_mod

        monkeypatch.setattr(
            engine_mod, "_numpy_missing", lambda: "No module named 'numpy'"
        )
        with pytest.raises(SystemExit) as exc:
            cli_main(["test", "--generator", "gnp", "--n", "20",
                      "--k", "4", "--engine", "fast"])
        message = str(exc.value)
        assert message.startswith("error:")
        assert "pip install" in message and "reference" in message
